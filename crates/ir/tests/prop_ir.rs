//! Property-based tests for the IR value semantics and the concrete
//! interpreter.

use dataplane_ir::builder::{Block, ProgramBuilder};
use dataplane_ir::expr::dsl::*;
use dataplane_ir::interp::{eval_binop, execute_default, ElementState};
use dataplane_ir::program::Outcome;
use dataplane_ir::value::BitVec;
use dataplane_ir::BinOp;
use proptest::prelude::*;

proptest! {
    /// Addition over bit-vectors agrees with wrapping machine arithmetic at
    /// every width.
    #[test]
    fn add_matches_wrapping(width in 1u8..=64, a in any::<u64>(), b in any::<u64>()) {
        let x = BitVec::new(width, a);
        let y = BitVec::new(width, b);
        let expected = x.as_u64().wrapping_add(y.as_u64()) & BitVec::max_unsigned(width);
        prop_assert_eq!(x.add(y).as_u64(), expected);
    }

    /// Subtraction then addition round-trips.
    #[test]
    fn sub_add_roundtrip(width in 1u8..=64, a in any::<u64>(), b in any::<u64>()) {
        let x = BitVec::new(width, a);
        let y = BitVec::new(width, b);
        prop_assert_eq!(x.sub(y).add(y), x);
    }

    /// Unsigned comparison is a total order consistent with the raw values.
    #[test]
    fn comparison_consistent(width in 1u8..=64, a in any::<u64>(), b in any::<u64>()) {
        let x = BitVec::new(width, a);
        let y = BitVec::new(width, b);
        prop_assert_eq!(x.ult(y).is_true(), x.as_u64() < y.as_u64());
        prop_assert_eq!(x.ule(y).is_true(), x.as_u64() <= y.as_u64());
        prop_assert_eq!(x.eq_bv(y).is_true(), x.as_u64() == y.as_u64());
        prop_assert_eq!(x.slt(y).is_true(), x.as_i64() < y.as_i64());
    }

    /// Zero/sign extension preserves the numeric value (unsigned/signed
    /// respectively) and truncation keeps the low bits.
    #[test]
    fn extension_preserves_value(width in 1u8..=32, extra in 0u8..=32, v in any::<u64>()) {
        let x = BitVec::new(width, v);
        let wide = width + extra;
        prop_assert_eq!(x.zext(wide).as_u64(), x.as_u64());
        prop_assert_eq!(x.sext(wide).as_i64(), x.as_i64());
        prop_assert_eq!(x.zext(wide).trunc(width), x);
    }

    /// De Morgan's law holds for bitwise operations.
    #[test]
    fn de_morgan(width in 1u8..=64, a in any::<u64>(), b in any::<u64>()) {
        let x = BitVec::new(width, a);
        let y = BitVec::new(width, b);
        prop_assert_eq!(x.and(y).not(), x.not().or(y.not()));
        prop_assert_eq!(x.or(y).not(), x.not().and(y.not()));
    }

    /// `eval_binop` never panics on arbitrary operands of equal width and
    /// returns a value of the correct width.
    #[test]
    fn eval_binop_total(width in 1u8..=64, a in any::<u64>(), b in any::<u64>(), op_idx in 0usize..21) {
        use BinOp::*;
        let ops = [Add, Sub, Mul, UDiv, URem, And, Or, Xor, Shl, LShr, AShr,
                   Eq, Ne, ULt, ULe, UGt, UGe, SLt, SLe, BoolAnd, BoolOr];
        let op = ops[op_idx];
        let (x, y) = if op.is_boolean() {
            (BitVec::new(1, a), BitVec::new(1, b))
        } else {
            (BitVec::new(width, a), BitVec::new(width, b))
        };
        if let Some(r) = eval_binop(op, x, y) {
            let expected_width = if op.is_comparison() || op.is_boolean() { 1 } else { x.width() };
            prop_assert_eq!(r.width(), expected_width);
        } else {
            prop_assert!(matches!(op, UDiv | URem));
            prop_assert!(y.is_zero());
        }
    }

    /// The interpreter is deterministic: running the same program on the same
    /// packet twice gives identical outcomes, instruction counts, and packet
    /// contents.
    #[test]
    fn interpreter_deterministic(bytes in proptest::collection::vec(any::<u8>(), 4..64)) {
        let mut pb = ProgramBuilder::new("Det", 2);
        let x = pb.local("x", 16);
        let mut b = Block::new();
        b.assign(x, pkt(0, 2));
        b.if_else(
            ult(l(x), c(16, 0x8000)),
            Block::with(|bb| { bb.pkt_store(2, 2, add(l(x), c(16, 1))); bb.emit(0); }),
            Block::with(|bb| { bb.emit(1); }),
        );
        let prog = pb.finish(b).unwrap();

        let mut p1 = bytes.clone();
        let mut p2 = bytes.clone();
        let mut s1 = ElementState::for_program(&prog);
        let mut s2 = ElementState::for_program(&prog);
        let r1 = execute_default(&prog, &mut p1, &mut s1).unwrap();
        let r2 = execute_default(&prog, &mut p2, &mut s2).unwrap();
        prop_assert_eq!(r1.outcome.clone(), r2.outcome);
        prop_assert_eq!(r1.instructions, r2.instructions);
        prop_assert_eq!(p1, p2);
    }

    /// A program with no assertion, loop, division, or out-of-bounds access
    /// never crashes, whatever the packet contents.
    #[test]
    fn straightline_program_never_crashes(bytes in proptest::collection::vec(any::<u8>(), 8..64)) {
        let mut pb = ProgramBuilder::new("Safe", 1);
        let x = pb.local("x", 32);
        let mut b = Block::new();
        b.assign(x, pkt(0, 4));
        b.if_else(
            eq(and(l(x), c(32, 1)), c(32, 1)),
            Block::with(|bb| { bb.pkt_store(4, 4, xor(l(x), c(32, 0xffff_ffff))); bb.emit(0); }),
            Block::with(|bb| { bb.drop_packet(); }),
        );
        let prog = pb.finish(b).unwrap();
        let mut p = bytes.clone();
        let mut s = ElementState::for_program(&prog);
        let r = execute_default(&prog, &mut p, &mut s).unwrap();
        prop_assert!(!r.outcome.is_crash());
        prop_assert!(matches!(r.outcome, Outcome::Emitted(0) | Outcome::Dropped));
    }
}

//! Expression AST of the element IR.
//!
//! Expressions are side-effect free: they read locals, packet bytes, and
//! data-structure entries, and combine them with bit-vector operators. All
//! side effects (packet writes, table writes, control flow) live in
//! [`crate::program::Stmt`].

use crate::value::BitVec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a local variable, indexing [`crate::program::Program::locals`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LocalId(pub u32);

/// Identifier of a data structure, indexing
/// [`crate::program::Program::data_structures`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DsId(pub u32);

impl fmt::Debug for LocalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Debug for DsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ds{}", self.0)
    }
}

/// Unary bit-vector operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
    /// Boolean negation: 1-bit input, yields 1 when the input is 0.
    LogicalNot,
}

/// Binary bit-vector operators. Comparison operators yield 1-bit results;
/// every other operator requires and yields operands of equal width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division; division by zero is a crash.
    UDiv,
    /// Unsigned remainder; division by zero is a crash.
    URem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic (sign-extending) shift right.
    AShr,
    /// Equality (1-bit result).
    Eq,
    /// Inequality (1-bit result).
    Ne,
    /// Unsigned less-than (1-bit result).
    ULt,
    /// Unsigned less-or-equal (1-bit result).
    ULe,
    /// Unsigned greater-than (1-bit result).
    UGt,
    /// Unsigned greater-or-equal (1-bit result).
    UGe,
    /// Signed less-than (1-bit result).
    SLt,
    /// Signed less-or-equal (1-bit result).
    SLe,
    /// 1-bit logical AND (both operands must be 1-bit).
    BoolAnd,
    /// 1-bit logical OR (both operands must be 1-bit).
    BoolOr,
}

impl BinOp {
    /// True if this operator produces a 1-bit (boolean) result regardless of
    /// its operand width.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::ULt
                | BinOp::ULe
                | BinOp::UGt
                | BinOp::UGe
                | BinOp::SLt
                | BinOp::SLe
        )
    }

    /// True if this operator requires 1-bit operands.
    pub fn is_boolean(self) -> bool {
        matches!(self, BinOp::BoolAnd | BinOp::BoolOr)
    }
}

/// Width-changing casts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CastKind {
    /// Zero-extend to the target width (target must be >= source).
    ZExt,
    /// Sign-extend to the target width (target must be >= source).
    SExt,
    /// Truncate to the target width (target must be <= source).
    Trunc,
    /// Zero-extend or truncate, whichever applies.
    Resize,
}

/// An expression tree.
#[allow(missing_docs)] // variant fields are described in the variant docs
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A constant bit-vector.
    Const(BitVec),
    /// The current value of a local variable.
    Local(LocalId),
    /// Load `width_bytes` bytes (big-endian, network order) from the packet at
    /// the byte offset given by `offset`. Reading past the end of the packet
    /// is a crash (the analog of a segmentation fault).
    PacketLoad {
        /// Byte offset into the packet; evaluated as a 32-bit value.
        offset: Box<Expr>,
        /// Number of bytes to read, 1..=8.
        width_bytes: u8,
    },
    /// The packet length in bytes, as a 32-bit value.
    PacketLen,
    /// Read the value stored under `key` in data structure `ds`. The result
    /// width is the declared value width of the data structure. Reading a key
    /// outside an array's bounds is a crash.
    DsRead { ds: DsId, key: Box<Expr> },
    /// A unary operation.
    Unary { op: UnOp, arg: Box<Expr> },
    /// A binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `if cond { then_e } else { else_e }` as an expression; `cond` must be
    /// 1-bit and both arms must have equal width.
    Select {
        cond: Box<Expr>,
        then_e: Box<Expr>,
        else_e: Box<Expr>,
    },
    /// A width-changing cast to `width` bits.
    Cast {
        kind: CastKind,
        width: u8,
        arg: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a constant.
    pub fn constant(v: BitVec) -> Expr {
        Expr::Const(v)
    }

    /// Convenience constructor for an 8-bit constant.
    pub fn c8(v: u8) -> Expr {
        Expr::Const(BitVec::u8(v))
    }

    /// Convenience constructor for a 16-bit constant.
    pub fn c16(v: u16) -> Expr {
        Expr::Const(BitVec::u16(v))
    }

    /// Convenience constructor for a 32-bit constant.
    pub fn c32(v: u32) -> Expr {
        Expr::Const(BitVec::u32(v))
    }

    /// Convenience constructor for a 1-bit constant.
    pub fn cbool(v: bool) -> Expr {
        Expr::Const(BitVec::bool(v))
    }

    /// Read a local.
    pub fn local(id: LocalId) -> Expr {
        Expr::Local(id)
    }

    /// Count the number of nodes in this expression tree (used by the
    /// instruction-count metric and by engine statistics).
    pub fn node_count(&self) -> u64 {
        match self {
            Expr::Const(_) | Expr::Local(_) | Expr::PacketLen => 1,
            Expr::PacketLoad { offset, .. } => 1 + offset.node_count(),
            Expr::DsRead { key, .. } => 1 + key.node_count(),
            Expr::Unary { arg, .. } => 1 + arg.node_count(),
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.node_count() + rhs.node_count(),
            Expr::Select {
                cond,
                then_e,
                else_e,
            } => 1 + cond.node_count() + then_e.node_count() + else_e.node_count(),
            Expr::Cast { arg, .. } => 1 + arg.node_count(),
        }
    }

    /// Collect every local referenced by this expression into `out`.
    pub fn collect_locals(&self, out: &mut Vec<LocalId>) {
        match self {
            Expr::Const(_) | Expr::PacketLen => {}
            Expr::Local(id) => out.push(*id),
            Expr::PacketLoad { offset, .. } => offset.collect_locals(out),
            Expr::DsRead { key, .. } => key.collect_locals(out),
            Expr::Unary { arg, .. } => arg.collect_locals(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_locals(out);
                rhs.collect_locals(out);
            }
            Expr::Select {
                cond,
                then_e,
                else_e,
            } => {
                cond.collect_locals(out);
                then_e.collect_locals(out);
                else_e.collect_locals(out);
            }
            Expr::Cast { arg, .. } => arg.collect_locals(out),
        }
    }

    /// True if this expression (transitively) reads the packet.
    pub fn reads_packet(&self) -> bool {
        match self {
            Expr::PacketLoad { .. } | Expr::PacketLen => true,
            Expr::Const(_) | Expr::Local(_) => false,
            Expr::DsRead { key, .. } => key.reads_packet(),
            Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => arg.reads_packet(),
            Expr::Binary { lhs, rhs, .. } => lhs.reads_packet() || rhs.reads_packet(),
            Expr::Select {
                cond,
                then_e,
                else_e,
            } => cond.reads_packet() || then_e.reads_packet() || else_e.reads_packet(),
        }
    }

    /// True if this expression (transitively) reads a data structure.
    pub fn reads_ds(&self) -> bool {
        match self {
            Expr::DsRead { .. } => true,
            Expr::Const(_) | Expr::Local(_) | Expr::PacketLen => false,
            Expr::PacketLoad { offset, .. } => offset.reads_ds(),
            Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => arg.reads_ds(),
            Expr::Binary { lhs, rhs, .. } => lhs.reads_ds() || rhs.reads_ds(),
            Expr::Select {
                cond,
                then_e,
                else_e,
            } => cond.reads_ds() || then_e.reads_ds() || else_e.reads_ds(),
        }
    }
}

/// Helper constructors for building expressions fluently. These are free
/// functions (rather than methods) so builder code reads close to the
/// pseudo-code in the paper's figures.
pub mod dsl {
    use super::*;

    /// `lhs + rhs`
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Add, lhs, rhs)
    }
    /// `lhs - rhs`
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Sub, lhs, rhs)
    }
    /// `lhs * rhs`
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Mul, lhs, rhs)
    }
    /// `lhs / rhs` (unsigned; division by zero crashes)
    pub fn udiv(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::UDiv, lhs, rhs)
    }
    /// `lhs % rhs` (unsigned; division by zero crashes)
    pub fn urem(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::URem, lhs, rhs)
    }
    /// `lhs & rhs`
    pub fn and(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::And, lhs, rhs)
    }
    /// `lhs | rhs`
    pub fn or(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Or, lhs, rhs)
    }
    /// `lhs ^ rhs`
    pub fn xor(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Xor, lhs, rhs)
    }
    /// `lhs << rhs`
    pub fn shl(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Shl, lhs, rhs)
    }
    /// `lhs >> rhs` (logical)
    pub fn lshr(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::LShr, lhs, rhs)
    }
    /// `lhs >> rhs` (arithmetic)
    pub fn ashr(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::AShr, lhs, rhs)
    }
    /// `lhs == rhs`
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Eq, lhs, rhs)
    }
    /// `lhs != rhs`
    pub fn ne(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Ne, lhs, rhs)
    }
    /// `lhs < rhs` (unsigned)
    pub fn ult(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::ULt, lhs, rhs)
    }
    /// `lhs <= rhs` (unsigned)
    pub fn ule(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::ULe, lhs, rhs)
    }
    /// `lhs > rhs` (unsigned)
    pub fn ugt(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::UGt, lhs, rhs)
    }
    /// `lhs >= rhs` (unsigned)
    pub fn uge(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::UGe, lhs, rhs)
    }
    /// `lhs < rhs` (signed)
    pub fn slt(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::SLt, lhs, rhs)
    }
    /// `lhs <= rhs` (signed)
    pub fn sle(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::SLe, lhs, rhs)
    }
    /// Logical AND of two 1-bit expressions.
    pub fn band(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::BoolAnd, lhs, rhs)
    }
    /// Logical OR of two 1-bit expressions.
    pub fn bor(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::BoolOr, lhs, rhs)
    }
    /// Logical NOT of a 1-bit expression.
    pub fn bnot(arg: Expr) -> Expr {
        Expr::Unary {
            op: UnOp::LogicalNot,
            arg: Box::new(arg),
        }
    }
    /// Bitwise complement.
    pub fn not(arg: Expr) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            arg: Box::new(arg),
        }
    }
    /// Two's-complement negation.
    pub fn neg(arg: Expr) -> Expr {
        Expr::Unary {
            op: UnOp::Neg,
            arg: Box::new(arg),
        }
    }
    /// Conditional expression.
    pub fn select(cond: Expr, then_e: Expr, else_e: Expr) -> Expr {
        Expr::Select {
            cond: Box::new(cond),
            then_e: Box::new(then_e),
            else_e: Box::new(else_e),
        }
    }
    /// Zero-extend to `width`.
    pub fn zext(arg: Expr, width: u8) -> Expr {
        Expr::Cast {
            kind: CastKind::ZExt,
            width,
            arg: Box::new(arg),
        }
    }
    /// Sign-extend to `width`.
    pub fn sext(arg: Expr, width: u8) -> Expr {
        Expr::Cast {
            kind: CastKind::SExt,
            width,
            arg: Box::new(arg),
        }
    }
    /// Truncate to `width`.
    pub fn trunc(arg: Expr, width: u8) -> Expr {
        Expr::Cast {
            kind: CastKind::Trunc,
            width,
            arg: Box::new(arg),
        }
    }
    /// Zero-extend or truncate to `width`.
    pub fn resize(arg: Expr, width: u8) -> Expr {
        Expr::Cast {
            kind: CastKind::Resize,
            width,
            arg: Box::new(arg),
        }
    }
    /// Load `width_bytes` bytes of the packet at constant byte offset `offset`.
    pub fn pkt(offset: u32, width_bytes: u8) -> Expr {
        Expr::PacketLoad {
            offset: Box::new(Expr::c32(offset)),
            width_bytes,
        }
    }
    /// Load `width_bytes` bytes of the packet at a computed byte offset.
    pub fn pkt_at(offset: Expr, width_bytes: u8) -> Expr {
        Expr::PacketLoad {
            offset: Box::new(offset),
            width_bytes,
        }
    }
    /// The packet length in bytes (32-bit).
    pub fn pkt_len() -> Expr {
        Expr::PacketLen
    }
    /// Read data structure `ds` at `key`.
    pub fn ds_read(ds: DsId, key: Expr) -> Expr {
        Expr::DsRead {
            ds,
            key: Box::new(key),
        }
    }
    /// Read a local variable.
    pub fn l(id: LocalId) -> Expr {
        Expr::Local(id)
    }
    /// A constant of explicit width.
    pub fn c(width: u8, value: u64) -> Expr {
        Expr::Const(BitVec::new(width, value))
    }
    /// A 1-bit boolean constant.
    pub fn cbool(value: bool) -> Expr {
        Expr::Const(BitVec::bool(value))
    }

    fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::dsl::*;
    use super::*;

    #[test]
    fn node_count_counts_all_nodes() {
        let e = add(c(8, 1), c(8, 2));
        assert_eq!(e.node_count(), 3);
        let e = select(eq(pkt(0, 1), c(8, 4)), c(8, 1), c(8, 0));
        // select + eq + pktload + offset-const + c4 + c1 + c0 = 7
        assert_eq!(e.node_count(), 7);
    }

    #[test]
    fn collect_locals_finds_all() {
        let e = add(l(LocalId(3)), mul(l(LocalId(1)), l(LocalId(3))));
        let mut out = Vec::new();
        e.collect_locals(&mut out);
        assert_eq!(out, vec![LocalId(3), LocalId(1), LocalId(3)]);
    }

    #[test]
    fn reads_packet_and_ds() {
        assert!(pkt(0, 2).reads_packet());
        assert!(pkt_len().reads_packet());
        assert!(!c(8, 0).reads_packet());
        assert!(ds_read(DsId(0), c(16, 1)).reads_ds());
        assert!(!l(LocalId(0)).reads_ds());
        assert!(add(c(8, 1), ds_read(DsId(0), c(16, 1))).reads_ds());
        assert!(ds_read(DsId(0), pkt(0, 2)).reads_packet());
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::SLe.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::BoolAnd.is_boolean());
        assert!(!BinOp::Eq.is_boolean());
    }

    #[test]
    fn debug_ids() {
        assert_eq!(format!("{:?}", LocalId(4)), "l4");
        assert_eq!(format!("{:?}", DsId(2)), "ds2");
    }
}

//! # dataplane-ir — the element IR of the verifiable software dataplane
//!
//! This crate defines the small imperative language in which every
//! packet-processing element expresses its *verification model*: the exact
//! per-packet behaviour that the compositional verifier reasons about.
//!
//! The design follows the pipeline structure of Dobrescu & Argyraki,
//! *Toward a Verifiable Software Dataplane* (HotNets 2013):
//!
//! * an element receives **packet state** (the packet bytes plus metadata) it
//!   exclusively owns while processing,
//! * it may read/write **private state** and read **static state** through a
//!   narrow key/value interface ([`program::DsDecl`]),
//! * it finishes by emitting the packet on an output port, dropping it, or
//!   crashing ([`program::Outcome`]).
//!
//! The IR is deliberately loop-bounded and free of pointers, recursion, and
//! shared mutable state, which is what makes exhaustive per-element symbolic
//! execution (crate `dataplane-symbex`) and compositional pipeline proofs
//! (crate `dataplane-verifier`) tractable — the central claim of the paper.
//!
//! ## Modules
//!
//! * [`value`] — fixed-width bit-vector values.
//! * [`expr`] — side-effect-free expressions and the [`expr::dsl`] helpers.
//! * [`program`] — statements, declarations, programs, outcomes.
//! * [`builder`] — ergonomic program construction.
//! * [`mod@validate`] — static width/type checking.
//! * [`interp`] — the concrete interpreter with instruction counting.
//! * [`pretty`] — human-readable rendering for reports.
//!
//! ## Example
//!
//! ```
//! use dataplane_ir::builder::{Block, ProgramBuilder};
//! use dataplane_ir::expr::dsl::*;
//! use dataplane_ir::interp::{execute_default, ElementState};
//! use dataplane_ir::program::Outcome;
//!
//! // An element that decrements the first packet byte and drops the packet
//! // when the byte reaches zero (a toy TTL check).
//! let mut pb = ProgramBuilder::new("ToyDecTTL", 1);
//! let ttl = pb.local("ttl", 8);
//! let mut body = Block::new();
//! body.assign(ttl, pkt(0, 1));
//! body.if_then(ule(l(ttl), c(8, 1)), Block::with(|b| { b.drop_packet(); }));
//! body.pkt_store(0, 1, sub(l(ttl), c(8, 1)));
//! body.emit(0);
//! let program = pb.finish(body).unwrap();
//!
//! let mut packet = vec![5u8, 0, 0, 0];
//! let mut state = ElementState::for_program(&program);
//! let result = execute_default(&program, &mut packet, &mut state).unwrap();
//! assert_eq!(result.outcome, Outcome::Emitted(0));
//! assert_eq!(packet[0], 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod expr;
pub mod interp;
pub mod pretty;
pub mod program;
pub mod validate;
pub mod value;

pub use builder::{Block, ProgramBuilder};
pub use expr::{BinOp, CastKind, DsId, Expr, LocalId, UnOp};
pub use interp::{execute, execute_default, ElementState, ExecError, ExecLimits, ExecResult};
pub use program::{CrashReason, DsClass, DsDecl, DsKind, LocalDecl, Outcome, Program, Stmt};
pub use validate::{expr_width, validate, ValidationError};
pub use value::BitVec;

//! Statements, declarations, and whole element programs.

use crate::expr::{DsId, Expr, LocalId};
use crate::value::BitVec;
use serde::{Deserialize, Serialize};

/// Declaration of a local variable.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalDecl {
    /// Human-readable name, used by the pretty printer and in reports.
    pub name: String,
    /// Width in bits (1..=64).
    pub width: u8,
}

/// The kind of a data structure owned or referenced by an element.
///
/// Following the paper, elements access state through a narrow key/value
/// interface. Arrays are bounds-checked (an out-of-range key is a crash);
/// maps accept any key of the declared width and return the default value for
/// keys never written.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DsKind {
    /// A pre-allocated array with `size` slots, indexed by key in `0..size`.
    Array {
        /// Number of slots.
        size: u64,
    },
    /// An open key/value map over the full key domain.
    Map,
}

/// The mutability class of a data structure, mirroring the paper's state
/// taxonomy (§3 "Pipeline Structure").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DsClass {
    /// Private state: owned by one element, read/write, persists across
    /// packets (e.g. a NAT map or NetFlow table).
    Private,
    /// Static state: shared, read-only configuration (e.g. a forwarding
    /// table). Writes to static state are rejected by validation.
    Static,
}

/// Declaration of a data structure.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DsDecl {
    /// Human-readable name.
    pub name: String,
    /// Kind (bounded array or open map).
    pub kind: DsKind,
    /// Mutability class (private read/write vs. static read-only).
    pub class: DsClass,
    /// Key width in bits.
    pub key_width: u8,
    /// Value width in bits.
    pub value_width: u8,
    /// Value returned for keys that have never been written.
    pub default: u64,
}

impl DsDecl {
    /// The default value as a bit-vector of the declared value width.
    pub fn default_value(&self) -> BitVec {
        BitVec::new(self.value_width, self.default)
    }
}

/// A statement of the element IR.
#[allow(missing_docs)] // variant fields are described in the variant docs
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// `local := value`
    Assign { local: LocalId, value: Expr },
    /// Store `value` (low `width_bytes * 8` bits, big-endian) into the packet
    /// at byte offset `offset`. Writing past the end of the packet is a crash.
    PacketStore {
        offset: Expr,
        width_bytes: u8,
        value: Expr,
    },
    /// Write `value` under `key` in data structure `ds`. Writing an
    /// out-of-range array key is a crash; writing static state is rejected at
    /// validation time.
    DsWrite { ds: DsId, key: Expr, value: Expr },
    /// Two-armed conditional; `cond` must be 1-bit.
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// A bounded loop: repeat `body` while `cond` holds, at most `max_iters`
    /// times. Exceeding the bound is a crash ("runaway loop"), which keeps
    /// every program's path set finite — the property the paper's loop
    /// decomposition relies on.
    Loop {
        max_iters: u32,
        cond: Expr,
        body: Vec<Stmt>,
    },
    /// Remove `n` bytes from the front of the packet (de-encapsulation, e.g.
    /// stripping the Ethernet header). If the packet is shorter than `n`, the
    /// element crashes — real code would read past the buffer.
    StripFront { n: u32 },
    /// Prepend `n` zero bytes to the front of the packet (encapsulation).
    /// Subsequent `PacketStore`s fill in the new header.
    PushFront { n: u32 },
    /// Crash unless `cond` (1-bit) holds. Models C `assert`, null checks,
    /// and implicit machine checks the paper cares about.
    Assert { cond: Expr, message: String },
    /// Unconditional crash (e.g. unreachable-code marker).
    Abort { message: String },
    /// Push the packet to output port `port` and stop processing.
    Emit { port: u8 },
    /// Drop the packet and stop processing.
    Drop,
    /// No operation (still counted as one instruction).
    Nop,
}

impl Stmt {
    /// Number of statement nodes in this statement (including nested bodies).
    pub fn stmt_count(&self) -> u64 {
        match self {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                1 + then_body.iter().map(Stmt::stmt_count).sum::<u64>()
                    + else_body.iter().map(Stmt::stmt_count).sum::<u64>()
            }
            Stmt::Loop { body, .. } => 1 + body.iter().map(Stmt::stmt_count).sum::<u64>(),
            _ => 1,
        }
    }

    /// True if this statement terminates the program (no fall-through).
    pub fn is_terminator(&self) -> bool {
        matches!(self, Stmt::Emit { .. } | Stmt::Drop | Stmt::Abort { .. })
    }
}

/// A complete element program: the verification model of one packet-processing
/// element.
///
/// A program takes one packet on its (implicit, single) input port, reads and
/// writes its declared data structures, and finishes by either emitting the
/// packet on one of `num_output_ports` output ports, dropping it, or crashing.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// Element type name (e.g. `"CheckIPHeader"`).
    pub name: String,
    /// Local variable declarations. Locals are zero-initialised when
    /// processing of each packet begins.
    pub locals: Vec<LocalDecl>,
    /// Data structures the element may access.
    pub data_structures: Vec<DsDecl>,
    /// Number of output ports (≥ 1 for anything that can emit).
    pub num_output_ports: u8,
    /// The statement sequence executed per packet. Falling off the end is an
    /// implicit [`Stmt::Drop`].
    pub body: Vec<Stmt>,
}

impl Program {
    /// Create an empty program with no locals, no data structures, and one
    /// output port.
    pub fn new(name: impl Into<String>, num_output_ports: u8) -> Self {
        Program {
            name: name.into(),
            locals: Vec::new(),
            data_structures: Vec::new(),
            num_output_ports,
            body: Vec::new(),
        }
    }

    /// Look up a local's declaration.
    pub fn local(&self, id: LocalId) -> Option<&LocalDecl> {
        self.locals.get(id.0 as usize)
    }

    /// Look up a data structure's declaration.
    pub fn ds(&self, id: DsId) -> Option<&DsDecl> {
        self.data_structures.get(id.0 as usize)
    }

    /// Total number of statement nodes in the program body.
    pub fn stmt_count(&self) -> u64 {
        self.body.iter().map(Stmt::stmt_count).sum()
    }

    /// Count of branching statements (`If` and `Loop`), a rough proxy for the
    /// `n` in the paper's `2^n` path-count argument.
    pub fn branch_count(&self) -> u64 {
        fn count(stmts: &[Stmt]) -> u64 {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => 1 + count(then_body) + count(else_body),
                    Stmt::Loop { body, .. } => 1 + count(body),
                    _ => 0,
                })
                .sum()
        }
        count(&self.body)
    }

    /// True if any statement reads or writes a data structure.
    pub fn uses_data_structures(&self) -> bool {
        fn expr_uses(e: &Expr) -> bool {
            e.reads_ds()
        }
        fn stmt_uses(s: &Stmt) -> bool {
            match s {
                Stmt::Assign { value, .. } => expr_uses(value),
                Stmt::PacketStore { offset, value, .. } => expr_uses(offset) || expr_uses(value),
                Stmt::DsWrite { .. } => true,
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    expr_uses(cond)
                        || then_body.iter().any(stmt_uses)
                        || else_body.iter().any(stmt_uses)
                }
                Stmt::Loop { cond, body, .. } => expr_uses(cond) || body.iter().any(stmt_uses),
                Stmt::Assert { cond, .. } => expr_uses(cond),
                Stmt::StripFront { .. }
                | Stmt::PushFront { .. }
                | Stmt::Abort { .. }
                | Stmt::Emit { .. }
                | Stmt::Drop
                | Stmt::Nop => false,
            }
        }
        self.body.iter().any(stmt_uses)
    }

    /// True if the program contains any loops.
    pub fn has_loops(&self) -> bool {
        fn any_loop(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::Loop { .. } => true,
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => any_loop(then_body) || any_loop(else_body),
                _ => false,
            })
        }
        any_loop(&self.body)
    }
}

/// The terminal outcome of processing one packet through one element program
/// (or, by concatenation, through a whole pipeline).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// The packet was pushed to the given output port.
    Emitted(u8),
    /// The packet was dropped.
    Dropped,
    /// The element crashed (failed assertion, out-of-bounds access, division
    /// by zero, runaway loop, or explicit abort).
    Crashed(CrashReason),
}

impl Outcome {
    /// True if the outcome is a crash.
    pub fn is_crash(&self) -> bool {
        matches!(self, Outcome::Crashed(_))
    }

    /// The output port, if the packet was emitted.
    pub fn port(&self) -> Option<u8> {
        match self {
            Outcome::Emitted(p) => Some(*p),
            _ => None,
        }
    }
}

/// Why an element crashed. Each variant corresponds to a class of defect the
/// paper's verifier is meant to find ("a segmentation fault, a kernel panic,
/// a division by 0, a failed assertion, a counter overflow").
#[allow(missing_docs)] // variant fields are self-describing
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashReason {
    /// A failed `Assert`.
    AssertionFailed { message: String },
    /// An explicit `Abort`.
    Aborted { message: String },
    /// A packet load or store outside the packet bounds (segfault analog).
    PacketOutOfBounds {
        offset: u64,
        width_bytes: u8,
        packet_len: u64,
    },
    /// An array data-structure access with an out-of-range key.
    DsKeyOutOfRange { ds: String, key: u64, size: u64 },
    /// Unsigned division or remainder by zero.
    DivisionByZero,
    /// A loop exceeded its declared iteration bound.
    LoopBoundExceeded { max_iters: u32 },
    /// A `StripFront` removed more bytes than the packet holds.
    StripUnderflow { strip: u32, packet_len: u64 },
}

impl std::fmt::Display for CrashReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashReason::AssertionFailed { message } => write!(f, "assertion failed: {message}"),
            CrashReason::Aborted { message } => write!(f, "aborted: {message}"),
            CrashReason::PacketOutOfBounds {
                offset,
                width_bytes,
                packet_len,
            } => write!(
                f,
                "packet access out of bounds: {width_bytes} bytes at offset {offset}, packet length {packet_len}"
            ),
            CrashReason::DsKeyOutOfRange { ds, key, size } => {
                write!(f, "data structure '{ds}' key {key} out of range (size {size})")
            }
            CrashReason::DivisionByZero => write!(f, "division by zero"),
            CrashReason::LoopBoundExceeded { max_iters } => {
                write!(f, "loop exceeded its bound of {max_iters} iterations")
            }
            CrashReason::StripUnderflow { strip, packet_len } => {
                write!(
                    f,
                    "cannot strip {strip} bytes from a {packet_len}-byte packet"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::dsl::*;

    fn sample_program() -> Program {
        Program {
            name: "Sample".into(),
            locals: vec![LocalDecl {
                name: "x".into(),
                width: 32,
            }],
            data_structures: vec![DsDecl {
                name: "table".into(),
                kind: DsKind::Array { size: 16 },
                class: DsClass::Private,
                key_width: 16,
                value_width: 32,
                default: 0,
            }],
            num_output_ports: 2,
            body: vec![
                Stmt::Assign {
                    local: LocalId(0),
                    value: pkt(0, 4),
                },
                Stmt::If {
                    cond: eq(l(LocalId(0)), c(32, 7)),
                    then_body: vec![Stmt::Emit { port: 0 }],
                    else_body: vec![Stmt::Loop {
                        max_iters: 4,
                        cond: ult(l(LocalId(0)), c(32, 100)),
                        body: vec![Stmt::Assign {
                            local: LocalId(0),
                            value: add(l(LocalId(0)), c(32, 1)),
                        }],
                    }],
                },
                Stmt::Drop,
            ],
        }
    }

    #[test]
    fn stmt_and_branch_counts() {
        let p = sample_program();
        // assign, if, emit, loop, assign-in-loop, drop = 6
        assert_eq!(p.stmt_count(), 6);
        assert_eq!(p.branch_count(), 2);
    }

    #[test]
    fn loop_and_ds_detection() {
        let p = sample_program();
        assert!(p.has_loops());
        assert!(!p.uses_data_structures());
        let mut p2 = p.clone();
        p2.body.push(Stmt::DsWrite {
            ds: DsId(0),
            key: c(16, 1),
            value: c(32, 5),
        });
        assert!(p2.uses_data_structures());
    }

    #[test]
    fn lookups() {
        let p = sample_program();
        assert_eq!(p.local(LocalId(0)).unwrap().name, "x");
        assert!(p.local(LocalId(9)).is_none());
        assert_eq!(p.ds(DsId(0)).unwrap().name, "table");
        assert!(p.ds(DsId(3)).is_none());
        assert_eq!(p.ds(DsId(0)).unwrap().default_value(), BitVec::u32(0));
    }

    #[test]
    fn outcome_helpers() {
        assert!(Outcome::Crashed(CrashReason::DivisionByZero).is_crash());
        assert!(!Outcome::Dropped.is_crash());
        assert_eq!(Outcome::Emitted(3).port(), Some(3));
        assert_eq!(Outcome::Dropped.port(), None);
    }

    #[test]
    fn terminators() {
        assert!(Stmt::Drop.is_terminator());
        assert!(Stmt::Emit { port: 0 }.is_terminator());
        assert!(Stmt::Abort {
            message: "x".into()
        }
        .is_terminator());
        assert!(!Stmt::Nop.is_terminator());
    }

    #[test]
    fn crash_reason_display() {
        let r = CrashReason::PacketOutOfBounds {
            offset: 20,
            width_bytes: 4,
            packet_len: 14,
        };
        assert!(r.to_string().contains("out of bounds"));
        assert!(CrashReason::DivisionByZero.to_string().contains("zero"));
        assert!(CrashReason::LoopBoundExceeded { max_iters: 8 }
            .to_string()
            .contains("8"));
        assert!(CrashReason::AssertionFailed {
            message: "ttl".into()
        }
        .to_string()
        .contains("ttl"));
        assert!(CrashReason::Aborted {
            message: "unreachable".into()
        }
        .to_string()
        .contains("unreachable"));
        assert!(CrashReason::DsKeyOutOfRange {
            ds: "t".into(),
            key: 99,
            size: 10
        }
        .to_string()
        .contains("99"));
    }
}

//! Pretty printer for element programs.
//!
//! The printed form mirrors the pseudo-code used in the paper's figures and is
//! what verification reports embed when they need to show which element or
//! statement a suspect segment came from.

use crate::expr::{BinOp, CastKind, Expr, UnOp};
use crate::program::{DsClass, DsKind, Program, Stmt};
use std::fmt::Write;

/// Render a whole program as readable pseudo-code.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {} (out_ports={})", p.name, p.num_output_ports);
    for (i, l) in p.locals.iter().enumerate() {
        let _ = writeln!(out, "  local l{}: {} : u{}", i, l.name, l.width);
    }
    for (i, d) in p.data_structures.iter().enumerate() {
        let kind = match d.kind {
            DsKind::Array { size } => format!("array[{size}]"),
            DsKind::Map => "map".to_string(),
        };
        let class = match d.class {
            DsClass::Private => "private",
            DsClass::Static => "static",
        };
        let _ = writeln!(
            out,
            "  {} ds{}: {} : {} key=u{} value=u{} default={}",
            class, i, d.name, kind, d.key_width, d.value_width, d.default
        );
    }
    let _ = writeln!(out, "begin");
    write_block(&mut out, &p.body, 1);
    let _ = writeln!(out, "end");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_block(out: &mut String, stmts: &[Stmt], depth: usize) {
    for s in stmts {
        write_stmt(out, s, depth);
    }
}

fn write_stmt(out: &mut String, s: &Stmt, depth: usize) {
    indent(out, depth);
    match s {
        Stmt::Assign { local, value } => {
            let _ = writeln!(out, "l{} := {}", local.0, expr_to_string(value));
        }
        Stmt::PacketStore {
            offset,
            width_bytes,
            value,
        } => {
            let _ = writeln!(
                out,
                "pkt[{} .. +{}] := {}",
                expr_to_string(offset),
                width_bytes,
                expr_to_string(value)
            );
        }
        Stmt::DsWrite { ds, key, value } => {
            let _ = writeln!(
                out,
                "ds{}[{}] := {}",
                ds.0,
                expr_to_string(key),
                expr_to_string(value)
            );
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "if {} {{", expr_to_string(cond));
            write_block(out, then_body, depth + 1);
            if !else_body.is_empty() {
                indent(out, depth);
                let _ = writeln!(out, "}} else {{");
                write_block(out, else_body, depth + 1);
            }
            indent(out, depth);
            let _ = writeln!(out, "}}");
        }
        Stmt::Loop {
            max_iters,
            cond,
            body,
        } => {
            let _ = writeln!(
                out,
                "loop(max={}) while {} {{",
                max_iters,
                expr_to_string(cond)
            );
            write_block(out, body, depth + 1);
            indent(out, depth);
            let _ = writeln!(out, "}}");
        }
        Stmt::StripFront { n } => {
            let _ = writeln!(out, "strip_front {}", n);
        }
        Stmt::PushFront { n } => {
            let _ = writeln!(out, "push_front {}", n);
        }
        Stmt::Assert { cond, message } => {
            let _ = writeln!(out, "assert {} \"{}\"", expr_to_string(cond), message);
        }
        Stmt::Abort { message } => {
            let _ = writeln!(out, "abort \"{}\"", message);
        }
        Stmt::Emit { port } => {
            let _ = writeln!(out, "emit port {}", port);
        }
        Stmt::Drop => {
            let _ = writeln!(out, "drop");
        }
        Stmt::Nop => {
            let _ = writeln!(out, "nop");
        }
    }
}

/// Render an expression as a compact infix string.
pub fn expr_to_string(e: &Expr) -> String {
    match e {
        Expr::Const(v) => v.to_string(),
        Expr::Local(id) => format!("l{}", id.0),
        Expr::PacketLoad {
            offset,
            width_bytes,
        } => format!("pkt[{} .. +{}]", expr_to_string(offset), width_bytes),
        Expr::PacketLen => "pkt.len".to_string(),
        Expr::DsRead { ds, key } => format!("ds{}[{}]", ds.0, expr_to_string(key)),
        Expr::Unary { op, arg } => {
            let sym = match op {
                UnOp::Not => "~",
                UnOp::Neg => "-",
                UnOp::LogicalNot => "!",
            };
            format!("{}({})", sym, expr_to_string(arg))
        }
        Expr::Binary { op, lhs, rhs } => {
            format!(
                "({} {} {})",
                expr_to_string(lhs),
                binop_symbol(*op),
                expr_to_string(rhs)
            )
        }
        Expr::Select {
            cond,
            then_e,
            else_e,
        } => format!(
            "({} ? {} : {})",
            expr_to_string(cond),
            expr_to_string(then_e),
            expr_to_string(else_e)
        ),
        Expr::Cast { kind, width, arg } => {
            let k = match kind {
                CastKind::ZExt => "zext",
                CastKind::SExt => "sext",
                CastKind::Trunc => "trunc",
                CastKind::Resize => "resize",
            };
            format!("{}{}({})", k, width, expr_to_string(arg))
        }
    }
}

/// The infix symbol used for a binary operator.
pub fn binop_symbol(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::UDiv => "/",
        BinOp::URem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::LShr => ">>",
        BinOp::AShr => ">>a",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::ULt => "<u",
        BinOp::ULe => "<=u",
        BinOp::UGt => ">u",
        BinOp::UGe => ">=u",
        BinOp::SLt => "<s",
        BinOp::SLe => "<=s",
        BinOp::BoolAnd => "&&",
        BinOp::BoolOr => "||",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Block, ProgramBuilder};
    use crate::expr::dsl::*;

    #[test]
    fn prints_program_structure() {
        let mut pb = ProgramBuilder::new("Demo", 2);
        let x = pb.local("x", 32);
        let fib = pb.static_array("fib", 16, 32, 8, 0);
        let mut b = Block::new();
        b.assign(x, pkt(0, 4));
        b.if_else(
            ult(l(x), c(32, 10)),
            Block::with(|bb| {
                bb.assert(eq(ds_read(fib, l(x)), c(8, 1)), "fib entry present");
                bb.emit(0);
            }),
            Block::with(|bb| {
                bb.loop_bounded(
                    4,
                    ult(l(x), c(32, 20)),
                    Block::with(|lb| {
                        lb.assign(x, add(l(x), c(32, 1)));
                    }),
                );
                bb.drop_packet();
            }),
        );
        b.abort("unreachable");
        let p = pb.finish(b).unwrap();
        let s = program_to_string(&p);
        assert!(s.contains("program Demo"));
        assert!(s.contains("local l0: x : u32"));
        assert!(s.contains("static ds0: fib : array[16]"));
        assert!(s.contains("if (l0 <u 10u32)"));
        assert!(s.contains("loop(max=4)"));
        assert!(s.contains("emit port 0"));
        assert!(s.contains("drop"));
        assert!(s.contains("abort"));
        assert!(s.contains("assert"));
    }

    #[test]
    fn expr_printer_covers_forms() {
        assert_eq!(expr_to_string(&c(8, 3)), "3u8");
        assert_eq!(expr_to_string(&pkt_len()), "pkt.len");
        assert_eq!(expr_to_string(&pkt(2, 2)), "pkt[2u32 .. +2]");
        assert_eq!(expr_to_string(&bnot(cbool(true))), "!(true)");
        assert_eq!(expr_to_string(&neg(c(8, 1))), "-(1u8)");
        assert_eq!(expr_to_string(&not(c(8, 1))), "~(1u8)");
        assert_eq!(
            expr_to_string(&select(cbool(true), c(8, 1), c(8, 2))),
            "(true ? 1u8 : 2u8)"
        );
        assert_eq!(expr_to_string(&zext(c(8, 1), 32)), "zext32(1u8)");
        assert_eq!(expr_to_string(&trunc(c(32, 1), 8)), "trunc8(1u32)");
        assert_eq!(expr_to_string(&sext(c(8, 1), 16)), "sext16(1u8)");
        assert_eq!(expr_to_string(&resize(c(8, 1), 16)), "resize16(1u8)");
        let s = expr_to_string(&add(c(8, 1), c(8, 2)));
        assert_eq!(s, "(1u8 + 2u8)");
    }

    #[test]
    fn all_binop_symbols_unique_enough() {
        use BinOp::*;
        let ops = [
            Add, Sub, Mul, UDiv, URem, And, Or, Xor, Shl, LShr, AShr, Eq, Ne, ULt, ULe, UGt, UGe,
            SLt, SLe, BoolAnd, BoolOr,
        ];
        for op in ops {
            assert!(!binop_symbol(op).is_empty());
        }
    }

    #[test]
    fn nop_and_pkt_store_printed() {
        let pb = ProgramBuilder::new("T", 1);
        let mut b = Block::new();
        b.nop();
        b.pkt_store(0, 2, c(16, 0xabcd));
        b.emit(0);
        let p = pb.finish(b).unwrap();
        let s = program_to_string(&p);
        assert!(s.contains("nop"));
        assert!(s.contains("pkt[0u32 .. +2] :="));
    }
}

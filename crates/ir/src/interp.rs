//! Concrete interpreter for element programs.
//!
//! The interpreter executes a program against a real packet and the element's
//! concrete state, producing an [`Outcome`] and an instruction count. The
//! instruction count is the metric behind the paper's "bounded number of
//! instructions" property: each executed statement and each evaluated
//! expression node counts as one instruction.

use crate::expr::{BinOp, CastKind, DsId, Expr, UnOp};
use crate::program::{CrashReason, DsClass, DsDecl, DsKind, Outcome, Program, Stmt};
use crate::value::BitVec;
use std::collections::HashMap;

/// Concrete contents of one data structure.
#[derive(Clone, Debug, PartialEq, Eq)]
enum StoreData {
    /// Dense pre-allocated array.
    Array(Vec<u64>),
    /// Sparse map; absent keys read as the declared default.
    Map(HashMap<u64, u64>),
}

/// A concrete key/value store backing one declared data structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConcreteStore {
    decl: DsDecl,
    data: StoreData,
}

impl ConcreteStore {
    /// Create an empty store for a declaration: arrays are filled with the
    /// default value, maps start empty.
    pub fn new(decl: DsDecl) -> Self {
        let data = match decl.kind {
            DsKind::Array { size } => StoreData::Array(vec![decl.default; size as usize]),
            DsKind::Map => StoreData::Map(HashMap::new()),
        };
        ConcreteStore { decl, data }
    }

    /// The declaration this store implements.
    pub fn decl(&self) -> &DsDecl {
        &self.decl
    }

    /// Read the value under `key`. Returns `None` when the key is outside an
    /// array's bounds (which the interpreter converts into a crash).
    pub fn read(&self, key: u64) -> Option<BitVec> {
        match &self.data {
            StoreData::Array(v) => v
                .get(key as usize)
                .map(|raw| BitVec::new(self.decl.value_width, *raw)),
            StoreData::Map(m) => Some(BitVec::new(
                self.decl.value_width,
                m.get(&key).copied().unwrap_or(self.decl.default),
            )),
        }
    }

    /// Write `value` under `key`. Returns `false` when the key is outside an
    /// array's bounds.
    pub fn write(&mut self, key: u64, value: BitVec) -> bool {
        let raw = value.resize(self.decl.value_width).as_u64();
        match &mut self.data {
            StoreData::Array(v) => match v.get_mut(key as usize) {
                Some(slot) => {
                    *slot = raw;
                    true
                }
                None => false,
            },
            StoreData::Map(m) => {
                m.insert(key, raw);
                true
            }
        }
    }

    /// Number of keys that currently hold a non-default value (arrays) or
    /// have ever been written (maps). Used by tests and by element statistics.
    pub fn populated_entries(&self) -> usize {
        match &self.data {
            StoreData::Array(v) => v.iter().filter(|&&x| x != self.decl.default).count(),
            StoreData::Map(m) => m.len(),
        }
    }

    /// Reset the store to its initial (all-default / empty) contents.
    pub fn clear(&mut self) {
        match &mut self.data {
            StoreData::Array(v) => v.iter_mut().for_each(|x| *x = self.decl.default),
            StoreData::Map(m) => m.clear(),
        }
    }

    /// Iterate over every populated `(key, value)` pair.
    pub fn iter_populated(&self) -> Vec<(u64, u64)> {
        match &self.data {
            StoreData::Array(v) => v
                .iter()
                .enumerate()
                .filter(|(_, &x)| x != self.decl.default)
                .map(|(k, &x)| (k as u64, x))
                .collect(),
            StoreData::Map(m) => {
                let mut out: Vec<_> = m.iter().map(|(&k, &v)| (k, v)).collect();
                out.sort_unstable();
                out
            }
        }
    }
}

/// The concrete state of one element instance: one store per declared data
/// structure, in declaration order.
#[derive(Clone, Debug, Default)]
pub struct ElementState {
    stores: Vec<ConcreteStore>,
}

impl ElementState {
    /// Build the initial state for a program (arrays filled with defaults,
    /// maps empty).
    pub fn for_program(program: &Program) -> Self {
        ElementState {
            stores: program
                .data_structures
                .iter()
                .cloned()
                .map(ConcreteStore::new)
                .collect(),
        }
    }

    /// Access a store immutably.
    pub fn store(&self, ds: DsId) -> Option<&ConcreteStore> {
        self.stores.get(ds.0 as usize)
    }

    /// Access a store mutably (e.g. to install a forwarding table into static
    /// state before running the pipeline).
    pub fn store_mut(&mut self, ds: DsId) -> Option<&mut ConcreteStore> {
        self.stores.get_mut(ds.0 as usize)
    }

    /// Number of stores.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// True if the element declares no data structures.
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }

    /// Reset all private state; static state is left untouched (it is
    /// configuration, not per-run state).
    pub fn reset_private(&mut self) {
        for s in &mut self.stores {
            if s.decl.class == DsClass::Private {
                s.clear();
            }
        }
    }
}

/// Execution limits, a safety net against genuinely unbounded programs (which
/// validation cannot fully exclude since loop bodies may be expensive).
#[derive(Clone, Copy, Debug)]
pub struct ExecLimits {
    /// Maximum number of instructions (statements + expression nodes) a single
    /// packet may consume before execution is aborted.
    pub max_instructions: u64,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_instructions: 1_000_000,
        }
    }
}

/// The result of concretely executing one packet through one program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecResult {
    /// How processing ended.
    pub outcome: Outcome,
    /// Number of instructions executed (statements plus expression nodes).
    pub instructions: u64,
}

/// An error that prevents execution from producing an outcome at all.
#[allow(missing_docs)] // variant fields are self-describing
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The per-packet instruction limit was exceeded.
    InstructionLimitExceeded { limit: u64 },
    /// The program references a local that does not exist (validation should
    /// have rejected this program).
    MalformedProgram { detail: String },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::InstructionLimitExceeded { limit } => {
                write!(f, "instruction limit of {limit} exceeded")
            }
            ExecError::MalformedProgram { detail } => write!(f, "malformed program: {detail}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Execute `program` on `packet` (which it may mutate) with the element state
/// `state` (which it may also mutate), under the given limits.
pub fn execute(
    program: &Program,
    packet: &mut Vec<u8>,
    state: &mut ElementState,
    limits: &ExecLimits,
) -> Result<ExecResult, ExecError> {
    let mut interp = Interp {
        packet,
        state,
        locals: program
            .locals
            .iter()
            .map(|d| BitVec::zero(d.width))
            .collect(),
        instructions: 0,
        limit: limits.max_instructions,
    };
    let flow = interp.run_block(&program.body)?;
    let outcome = match flow {
        Flow::Continue => Outcome::Dropped, // falling off the end drops
        Flow::Terminated(o) => o,
    };
    Ok(ExecResult {
        outcome,
        instructions: interp.instructions,
    })
}

/// Execute with default limits.
pub fn execute_default(
    program: &Program,
    packet: &mut Vec<u8>,
    state: &mut ElementState,
) -> Result<ExecResult, ExecError> {
    execute(program, packet, state, &ExecLimits::default())
}

enum Flow {
    Continue,
    Terminated(Outcome),
}

struct Interp<'a> {
    packet: &'a mut Vec<u8>,
    state: &'a mut ElementState,
    locals: Vec<BitVec>,
    instructions: u64,
    limit: u64,
}

impl<'a> Interp<'a> {
    fn charge(&mut self, n: u64) -> Result<(), ExecError> {
        self.instructions += n;
        if self.instructions > self.limit {
            Err(ExecError::InstructionLimitExceeded { limit: self.limit })
        } else {
            Ok(())
        }
    }

    fn run_block(&mut self, stmts: &[Stmt]) -> Result<Flow, ExecError> {
        for s in stmts {
            match self.run_stmt(s)? {
                Flow::Continue => continue,
                t @ Flow::Terminated(_) => return Ok(t),
            }
        }
        Ok(Flow::Continue)
    }

    fn run_stmt(&mut self, stmt: &Stmt) -> Result<Flow, ExecError> {
        self.charge(1)?;
        match stmt {
            Stmt::Assign { local, value } => {
                let v = match self.eval(value)? {
                    Ok(v) => v,
                    Err(c) => return Ok(Flow::Terminated(Outcome::Crashed(c))),
                };
                let slot = self.locals.get_mut(local.0 as usize).ok_or_else(|| {
                    ExecError::MalformedProgram {
                        detail: format!("assignment to unknown local l{}", local.0),
                    }
                })?;
                *slot = v.resize(slot.width());
                Ok(Flow::Continue)
            }
            Stmt::PacketStore {
                offset,
                width_bytes,
                value,
            } => {
                let off = match self.eval(offset)? {
                    Ok(v) => v.as_u64(),
                    Err(c) => return Ok(Flow::Terminated(Outcome::Crashed(c))),
                };
                let val = match self.eval(value)? {
                    Ok(v) => v,
                    Err(c) => return Ok(Flow::Terminated(Outcome::Crashed(c))),
                };
                let wb = *width_bytes as u64;
                if off + wb > self.packet.len() as u64 {
                    return Ok(Flow::Terminated(Outcome::Crashed(
                        CrashReason::PacketOutOfBounds {
                            offset: off,
                            width_bytes: *width_bytes,
                            packet_len: self.packet.len() as u64,
                        },
                    )));
                }
                let raw = val.as_u64();
                for i in 0..wb {
                    // big-endian (network order)
                    let shift = (wb - 1 - i) * 8;
                    self.packet[(off + i) as usize] = ((raw >> shift) & 0xff) as u8;
                }
                Ok(Flow::Continue)
            }
            Stmt::DsWrite { ds, key, value } => {
                let k = match self.eval(key)? {
                    Ok(v) => v.as_u64(),
                    Err(c) => return Ok(Flow::Terminated(Outcome::Crashed(c))),
                };
                let v = match self.eval(value)? {
                    Ok(v) => v,
                    Err(c) => return Ok(Flow::Terminated(Outcome::Crashed(c))),
                };
                let store =
                    self.state
                        .store_mut(*ds)
                        .ok_or_else(|| ExecError::MalformedProgram {
                            detail: format!("write to unknown data structure ds{}", ds.0),
                        })?;
                if store.write(k, v) {
                    Ok(Flow::Continue)
                } else {
                    let size = match store.decl().kind {
                        DsKind::Array { size } => size,
                        DsKind::Map => u64::MAX,
                    };
                    Ok(Flow::Terminated(Outcome::Crashed(
                        CrashReason::DsKeyOutOfRange {
                            ds: store.decl().name.clone(),
                            key: k,
                            size,
                        },
                    )))
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = match self.eval(cond)? {
                    Ok(v) => v,
                    Err(c) => return Ok(Flow::Terminated(Outcome::Crashed(c))),
                };
                if c.is_true() {
                    self.run_block(then_body)
                } else {
                    self.run_block(else_body)
                }
            }
            Stmt::Loop {
                max_iters,
                cond,
                body,
            } => {
                let mut iters = 0u32;
                loop {
                    let c = match self.eval(cond)? {
                        Ok(v) => v,
                        Err(c) => return Ok(Flow::Terminated(Outcome::Crashed(c))),
                    };
                    if !c.is_true() {
                        return Ok(Flow::Continue);
                    }
                    if iters >= *max_iters {
                        return Ok(Flow::Terminated(Outcome::Crashed(
                            CrashReason::LoopBoundExceeded {
                                max_iters: *max_iters,
                            },
                        )));
                    }
                    iters += 1;
                    match self.run_block(body)? {
                        Flow::Continue => continue,
                        t @ Flow::Terminated(_) => return Ok(t),
                    }
                }
            }
            Stmt::StripFront { n } => {
                if (self.packet.len() as u64) < *n as u64 {
                    return Ok(Flow::Terminated(Outcome::Crashed(
                        CrashReason::StripUnderflow {
                            strip: *n,
                            packet_len: self.packet.len() as u64,
                        },
                    )));
                }
                self.packet.drain(0..*n as usize);
                Ok(Flow::Continue)
            }
            Stmt::PushFront { n } => {
                let mut new = vec![0u8; *n as usize];
                new.extend_from_slice(self.packet);
                *self.packet = new;
                Ok(Flow::Continue)
            }
            Stmt::Assert { cond, message } => {
                let c = match self.eval(cond)? {
                    Ok(v) => v,
                    Err(c) => return Ok(Flow::Terminated(Outcome::Crashed(c))),
                };
                if c.is_true() {
                    Ok(Flow::Continue)
                } else {
                    Ok(Flow::Terminated(Outcome::Crashed(
                        CrashReason::AssertionFailed {
                            message: message.clone(),
                        },
                    )))
                }
            }
            Stmt::Abort { message } => {
                Ok(Flow::Terminated(Outcome::Crashed(CrashReason::Aborted {
                    message: message.clone(),
                })))
            }
            Stmt::Emit { port } => Ok(Flow::Terminated(Outcome::Emitted(*port))),
            Stmt::Drop => Ok(Flow::Terminated(Outcome::Dropped)),
            Stmt::Nop => Ok(Flow::Continue),
        }
    }

    /// Evaluate an expression. The outer `Result` is an execution error (limit
    /// or malformed program); the inner `Result` is a crash reason.
    fn eval(&mut self, e: &Expr) -> Result<Result<BitVec, CrashReason>, ExecError> {
        self.charge(1)?;
        let r: Result<BitVec, CrashReason> = match e {
            Expr::Const(v) => Ok(*v),
            Expr::Local(id) => {
                let v = self.locals.get(id.0 as usize).copied().ok_or_else(|| {
                    ExecError::MalformedProgram {
                        detail: format!("read of unknown local l{}", id.0),
                    }
                })?;
                Ok(v)
            }
            Expr::PacketLoad {
                offset,
                width_bytes,
            } => {
                let off = match self.eval(offset)? {
                    Ok(v) => v.as_u64(),
                    Err(c) => return Ok(Err(c)),
                };
                let wb = *width_bytes as u64;
                if off + wb > self.packet.len() as u64 {
                    Err(CrashReason::PacketOutOfBounds {
                        offset: off,
                        width_bytes: *width_bytes,
                        packet_len: self.packet.len() as u64,
                    })
                } else {
                    let mut raw: u64 = 0;
                    for i in 0..wb {
                        raw = (raw << 8) | self.packet[(off + i) as usize] as u64;
                    }
                    Ok(BitVec::new(width_bytes * 8, raw))
                }
            }
            Expr::PacketLen => Ok(BitVec::u32(self.packet.len() as u32)),
            Expr::DsRead { ds, key } => {
                let k = match self.eval(key)? {
                    Ok(v) => v.as_u64(),
                    Err(c) => return Ok(Err(c)),
                };
                let store = self
                    .state
                    .store(*ds)
                    .ok_or_else(|| ExecError::MalformedProgram {
                        detail: format!("read of unknown data structure ds{}", ds.0),
                    })?;
                match store.read(k) {
                    Some(v) => Ok(v),
                    None => {
                        let size = match store.decl().kind {
                            DsKind::Array { size } => size,
                            DsKind::Map => u64::MAX,
                        };
                        Err(CrashReason::DsKeyOutOfRange {
                            ds: store.decl().name.clone(),
                            key: k,
                            size,
                        })
                    }
                }
            }
            Expr::Unary { op, arg } => {
                let a = match self.eval(arg)? {
                    Ok(v) => v,
                    Err(c) => return Ok(Err(c)),
                };
                Ok(match op {
                    UnOp::Not => a.not(),
                    UnOp::Neg => a.neg(),
                    UnOp::LogicalNot => BitVec::bool(a.is_zero()),
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = match self.eval(lhs)? {
                    Ok(v) => v,
                    Err(c) => return Ok(Err(c)),
                };
                let b = match self.eval(rhs)? {
                    Ok(v) => v,
                    Err(c) => return Ok(Err(c)),
                };
                match eval_binop(*op, a, b) {
                    Some(v) => Ok(v),
                    None => Err(CrashReason::DivisionByZero),
                }
            }
            Expr::Select {
                cond,
                then_e,
                else_e,
            } => {
                let c = match self.eval(cond)? {
                    Ok(v) => v,
                    Err(c) => return Ok(Err(c)),
                };
                // Both arms are evaluated lazily: only the taken arm runs,
                // matching short-circuit semantics of the C ternary operator.
                if c.is_true() {
                    match self.eval(then_e)? {
                        Ok(v) => Ok(v),
                        Err(c) => return Ok(Err(c)),
                    }
                } else {
                    match self.eval(else_e)? {
                        Ok(v) => Ok(v),
                        Err(c) => return Ok(Err(c)),
                    }
                }
            }
            Expr::Cast { kind, width, arg } => {
                let a = match self.eval(arg)? {
                    Ok(v) => v,
                    Err(c) => return Ok(Err(c)),
                };
                Ok(match kind {
                    CastKind::ZExt => a.zext(*width),
                    CastKind::SExt => a.sext(*width),
                    CastKind::Trunc => a.trunc(*width),
                    CastKind::Resize => a.resize(*width),
                })
            }
        };
        Ok(r)
    }
}

/// Evaluate a binary operator on concrete values. Returns `None` for division
/// by zero. Exposed so the symbolic engine can constant-fold with identical
/// semantics.
pub fn eval_binop(op: BinOp, a: BitVec, b: BitVec) -> Option<BitVec> {
    Some(match op {
        BinOp::Add => a.add(b),
        BinOp::Sub => a.sub(b),
        BinOp::Mul => a.mul(b),
        BinOp::UDiv => return a.udiv(b),
        BinOp::URem => return a.urem(b),
        BinOp::And => a.and(b),
        BinOp::Or => a.or(b),
        BinOp::Xor => a.xor(b),
        BinOp::Shl => a.shl(b),
        BinOp::LShr => a.lshr(b),
        BinOp::AShr => a.ashr(b),
        BinOp::Eq => a.eq_bv(b),
        BinOp::Ne => a.ne_bv(b),
        BinOp::ULt => a.ult(b),
        BinOp::ULe => a.ule(b),
        BinOp::UGt => b.ult(a),
        BinOp::UGe => b.ule(a),
        BinOp::SLt => a.slt(b),
        BinOp::SLe => a.sle(b),
        BinOp::BoolAnd => BitVec::bool(a.is_true() && b.is_true()),
        BinOp::BoolOr => BitVec::bool(a.is_true() || b.is_true()),
    })
}

/// Evaluate a unary operator on a concrete value. Exposed for the symbolic
/// engine's constant folding.
pub fn eval_unop(op: UnOp, a: BitVec) -> BitVec {
    match op {
        UnOp::Not => a.not(),
        UnOp::Neg => a.neg(),
        UnOp::LogicalNot => BitVec::bool(a.is_zero()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Block, ProgramBuilder};
    use crate::expr::dsl::*;

    /// The toy program of Figure 1 in the paper:
    /// ```text
    /// out Program(in):
    ///   assert in >= 0        (signed)
    ///   if in < 10 then out <- 10 else out <- in
    ///   return out
    /// ```
    /// The 32-bit input is read from packet bytes 0..4; the output is written
    /// back to the same bytes and the packet emitted on port 0.
    pub fn figure1_program() -> Program {
        let mut pb = ProgramBuilder::new("Figure1", 1);
        let input = pb.local("in", 32);
        let out = pb.local("out", 32);
        let mut b = Block::new();
        b.assign(input, pkt(0, 4));
        b.assert(sle(c(32, 0), l(input)), "in >= 0");
        b.if_else(
            slt(l(input), c(32, 10)),
            Block::with(|bb| {
                bb.assign(out, c(32, 10));
            }),
            Block::with(|bb| {
                bb.assign(out, l(input));
            }),
        );
        b.pkt_store(0, 4, l(out));
        b.emit(0);
        pb.finish(b).unwrap()
    }

    fn run(prog: &Program, packet: &mut Vec<u8>) -> ExecResult {
        let mut state = ElementState::for_program(prog);
        execute_default(prog, packet, &mut state).unwrap()
    }

    #[test]
    fn figure1_small_input_returns_ten() {
        let prog = figure1_program();
        let mut pkt = vec![0, 0, 0, 3];
        let r = run(&prog, &mut pkt);
        assert_eq!(r.outcome, Outcome::Emitted(0));
        assert_eq!(&pkt[0..4], &[0, 0, 0, 10]);
    }

    #[test]
    fn figure1_large_input_returns_input() {
        let prog = figure1_program();
        let mut pkt = vec![0, 0, 0, 200];
        let r = run(&prog, &mut pkt);
        assert_eq!(r.outcome, Outcome::Emitted(0));
        assert_eq!(&pkt[0..4], &[0, 0, 0, 200]);
    }

    #[test]
    fn figure1_negative_input_crashes() {
        let prog = figure1_program();
        let mut pkt = vec![0xff, 0, 0, 0]; // sign bit set -> negative
        let r = run(&prog, &mut pkt);
        assert!(matches!(
            r.outcome,
            Outcome::Crashed(CrashReason::AssertionFailed { .. })
        ));
    }

    #[test]
    fn instruction_count_is_positive_and_bounded() {
        let prog = figure1_program();
        let mut pkt = vec![0, 0, 0, 3];
        let r = run(&prog, &mut pkt);
        assert!(r.instructions > 0);
        assert!(r.instructions < 100);
    }

    #[test]
    fn packet_out_of_bounds_read_crashes() {
        let prog = figure1_program();
        let mut pkt = vec![0, 0]; // too short for a 4-byte read
        let r = run(&prog, &mut pkt);
        assert!(matches!(
            r.outcome,
            Outcome::Crashed(CrashReason::PacketOutOfBounds { .. })
        ));
    }

    #[test]
    fn packet_store_out_of_bounds_crashes() {
        let mut pb = ProgramBuilder::new("T", 1);
        let _ = pb.local("x", 8);
        let mut b = Block::new();
        b.pkt_store(100, 1, c(8, 1));
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let mut pkt = vec![0u8; 10];
        let r = run(&prog, &mut pkt);
        assert!(matches!(
            r.outcome,
            Outcome::Crashed(CrashReason::PacketOutOfBounds { .. })
        ));
    }

    #[test]
    fn division_by_zero_crashes() {
        let mut pb = ProgramBuilder::new("T", 1);
        let x = pb.local("x", 8);
        let mut b = Block::new();
        b.assign(x, udiv(c(8, 10), pkt(0, 1)));
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let mut pkt = vec![0u8; 4];
        let r = run(&prog, &mut pkt);
        assert_eq!(r.outcome, Outcome::Crashed(CrashReason::DivisionByZero));
        let mut pkt = vec![2u8, 0, 0, 0];
        let r = run(&prog, &mut pkt);
        assert_eq!(r.outcome, Outcome::Emitted(0));
    }

    #[test]
    fn loop_bound_exceeded_crashes() {
        let mut pb = ProgramBuilder::new("T", 1);
        let i = pb.local("i", 8);
        let mut b = Block::new();
        // Condition is always true; bound is 3.
        b.loop_bounded(
            3,
            cbool(true),
            Block::with(|bb| {
                bb.assign(i, add(l(i), c(8, 1)));
            }),
        );
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let mut pkt = vec![0u8; 4];
        let r = run(&prog, &mut pkt);
        assert_eq!(
            r.outcome,
            Outcome::Crashed(CrashReason::LoopBoundExceeded { max_iters: 3 })
        );
    }

    #[test]
    fn bounded_loop_terminates_normally() {
        let mut pb = ProgramBuilder::new("T", 1);
        let i = pb.local("i", 8);
        let sum = pb.local("sum", 8);
        let mut b = Block::new();
        b.loop_bounded(
            10,
            ult(l(i), c(8, 5)),
            Block::with(|bb| {
                bb.assign(sum, add(l(sum), l(i)));
                bb.assign(i, add(l(i), c(8, 1)));
            }),
        );
        b.pkt_store(0, 1, l(sum));
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let mut pkt = vec![0u8; 4];
        let r = run(&prog, &mut pkt);
        assert_eq!(r.outcome, Outcome::Emitted(0));
        assert_eq!(pkt[0], 1 + 2 + 3 + 4);
    }

    #[test]
    fn falling_off_the_end_drops() {
        let mut pb = ProgramBuilder::new("T", 1);
        let x = pb.local("x", 8);
        let mut b = Block::new();
        b.assign(x, c(8, 1));
        let prog = pb.finish(b).unwrap();
        let mut pkt = vec![0u8; 4];
        let r = run(&prog, &mut pkt);
        assert_eq!(r.outcome, Outcome::Dropped);
    }

    #[test]
    fn ds_array_read_write_and_bounds() {
        let mut pb = ProgramBuilder::new("T", 1);
        let t = pb.private_array("t", 4, 16, 32, 7);
        let x = pb.local("x", 32);
        let mut b = Block::new();
        b.ds_write(t, c(16, 2), c(32, 99));
        b.assign(x, ds_read(t, c(16, 2)));
        b.pkt_store(0, 4, l(x));
        b.assign(x, ds_read(t, c(16, 3))); // default
        b.pkt_store(4, 4, l(x));
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let mut pkt = vec![0u8; 8];
        let mut state = ElementState::for_program(&prog);
        let r = execute_default(&prog, &mut pkt, &mut state).unwrap();
        assert_eq!(r.outcome, Outcome::Emitted(0));
        assert_eq!(&pkt[0..4], &[0, 0, 0, 99]);
        assert_eq!(&pkt[4..8], &[0, 0, 0, 7]);
        assert_eq!(state.store(t).unwrap().populated_entries(), 1);
        assert_eq!(state.store(t).unwrap().iter_populated(), vec![(2, 99)]);

        // Out-of-range read crashes.
        let mut pb = ProgramBuilder::new("T", 1);
        let t = pb.private_array("t", 4, 16, 32, 0);
        let x = pb.local("x", 32);
        let mut b = Block::new();
        b.assign(x, ds_read(t, c(16, 100)));
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let mut pkt = vec![0u8; 8];
        let mut state = ElementState::for_program(&prog);
        let r = execute_default(&prog, &mut pkt, &mut state).unwrap();
        assert!(matches!(
            r.outcome,
            Outcome::Crashed(CrashReason::DsKeyOutOfRange { .. })
        ));

        // Out-of-range write crashes.
        let mut pb = ProgramBuilder::new("T", 1);
        let t = pb.private_array("t", 4, 16, 32, 0);
        let mut b = Block::new();
        b.ds_write(t, c(16, 100), c(32, 1));
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let mut pkt = vec![0u8; 8];
        let mut state = ElementState::for_program(&prog);
        let r = execute_default(&prog, &mut pkt, &mut state).unwrap();
        assert!(matches!(
            r.outcome,
            Outcome::Crashed(CrashReason::DsKeyOutOfRange { .. })
        ));
    }

    #[test]
    fn ds_map_reads_default_until_written() {
        let mut pb = ProgramBuilder::new("T", 1);
        let m = pb.private_map("m", 32, 16, 0xbeef);
        let x = pb.local("x", 16);
        let mut b = Block::new();
        b.assign(x, ds_read(m, c(32, 12345)));
        b.pkt_store(0, 2, l(x));
        b.ds_write(m, c(32, 12345), c(16, 0x1122));
        b.assign(x, ds_read(m, c(32, 12345)));
        b.pkt_store(2, 2, l(x));
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let mut pkt = vec![0u8; 4];
        let mut state = ElementState::for_program(&prog);
        execute_default(&prog, &mut pkt, &mut state).unwrap();
        assert_eq!(&pkt[0..2], &[0xbe, 0xef]);
        assert_eq!(&pkt[2..4], &[0x11, 0x22]);
    }

    #[test]
    fn state_reset_clears_private_only() {
        use crate::program::{DsClass, DsDecl, DsKind};
        let priv_decl = DsDecl {
            name: "p".into(),
            kind: DsKind::Map,
            class: DsClass::Private,
            key_width: 8,
            value_width: 8,
            default: 0,
        };
        let static_decl = DsDecl {
            name: "s".into(),
            kind: DsKind::Array { size: 4 },
            class: DsClass::Static,
            key_width: 8,
            value_width: 8,
            default: 0,
        };
        let mut prog = Program::new("T", 1);
        prog.data_structures = vec![priv_decl, static_decl];
        let mut state = ElementState::for_program(&prog);
        state.store_mut(DsId(0)).unwrap().write(1, BitVec::u8(9));
        state.store_mut(DsId(1)).unwrap().write(1, BitVec::u8(9));
        state.reset_private();
        assert_eq!(state.store(DsId(0)).unwrap().populated_entries(), 0);
        assert_eq!(state.store(DsId(1)).unwrap().populated_entries(), 1);
        assert_eq!(state.len(), 2);
        assert!(!state.is_empty());
    }

    #[test]
    fn instruction_limit_enforced() {
        let mut pb = ProgramBuilder::new("T", 1);
        let i = pb.local("i", 32);
        let mut b = Block::new();
        b.loop_bounded(
            1_000_000,
            ult(l(i), c(32, 1_000_000)),
            Block::with(|bb| {
                bb.assign(i, add(l(i), c(32, 1)));
            }),
        );
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let mut pkt = vec![0u8; 4];
        let mut state = ElementState::for_program(&prog);
        let err = execute(
            &prog,
            &mut pkt,
            &mut state,
            &ExecLimits {
                max_instructions: 1000,
            },
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::InstructionLimitExceeded { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn select_is_lazy() {
        // select(cond, 1/0, 5): the division is only evaluated when cond is
        // true, so cond=false must not crash.
        let mut pb = ProgramBuilder::new("T", 1);
        let x = pb.local("x", 8);
        let mut b = Block::new();
        b.assign(
            x,
            select(eq(pkt(0, 1), c(8, 1)), udiv(c(8, 1), c(8, 0)), c(8, 5)),
        );
        b.pkt_store(1, 1, l(x));
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let mut pkt = vec![0u8, 0];
        let r = run(&prog, &mut pkt);
        assert_eq!(r.outcome, Outcome::Emitted(0));
        assert_eq!(pkt[1], 5);
        let mut pkt = vec![1u8, 0];
        let r = run(&prog, &mut pkt);
        assert_eq!(r.outcome, Outcome::Crashed(CrashReason::DivisionByZero));
    }

    #[test]
    fn unop_and_binop_helpers_cover_all_ops() {
        use BinOp::*;
        let a = BitVec::u8(12);
        let b = BitVec::u8(5);
        for op in [
            Add, Sub, Mul, And, Or, Xor, Shl, LShr, AShr, Eq, Ne, ULt, ULe, UGt, UGe, SLt, SLe,
        ] {
            assert!(eval_binop(op, a, b).is_some());
        }
        assert!(eval_binop(UDiv, a, BitVec::u8(0)).is_none());
        assert!(eval_binop(URem, a, BitVec::u8(0)).is_none());
        assert_eq!(
            eval_binop(BoolAnd, BitVec::bool(true), BitVec::bool(false)).unwrap(),
            BitVec::bool(false)
        );
        assert_eq!(
            eval_binop(BoolOr, BitVec::bool(true), BitVec::bool(false)).unwrap(),
            BitVec::bool(true)
        );
        assert_eq!(eval_binop(UGt, a, b).unwrap(), BitVec::bool(true));
        assert_eq!(eval_binop(UGe, b, a).unwrap(), BitVec::bool(false));
        assert_eq!(eval_unop(UnOp::Not, a), a.not());
        assert_eq!(eval_unop(UnOp::Neg, a), a.neg());
        assert_eq!(
            eval_unop(UnOp::LogicalNot, BitVec::bool(false)),
            BitVec::bool(true)
        );
    }

    #[test]
    fn strip_and_push_front() {
        // Strip two bytes, read the (previously third) byte, push a new
        // 2-byte header and fill its first byte.
        let mut pb = ProgramBuilder::new("T", 1);
        let x = pb.local("x", 8);
        let mut b = Block::new();
        b.strip_front(2);
        b.assign(x, pkt(0, 1));
        b.push_front(2);
        b.pkt_store(0, 1, l(x));
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let mut pkt_bytes = vec![0xaa, 0xbb, 0xcc, 0xdd];
        let r = run(&prog, &mut pkt_bytes);
        assert_eq!(r.outcome, Outcome::Emitted(0));
        assert_eq!(pkt_bytes, vec![0xcc, 0x00, 0xcc, 0xdd]);

        // Stripping more than the packet length crashes.
        let pb = {
            let mut pb = ProgramBuilder::new("T", 1);
            let _ = pb.local("x", 8);
            pb
        };
        let mut b = Block::new();
        b.strip_front(100);
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let mut short = vec![1, 2, 3];
        let r = run(&prog, &mut short);
        assert!(matches!(
            r.outcome,
            Outcome::Crashed(CrashReason::StripUnderflow { .. })
        ));
    }

    #[test]
    fn packet_len_tracks_reframing() {
        let mut pb = ProgramBuilder::new("T", 1);
        let n = pb.local("n", 32);
        let mut b = Block::new();
        b.strip_front(4);
        b.assign(n, pkt_len());
        b.push_front(8);
        b.pkt_store(0, 4, l(n));
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let mut bytes = vec![0u8; 10];
        let r = run(&prog, &mut bytes);
        assert_eq!(r.outcome, Outcome::Emitted(0));
        assert_eq!(bytes.len(), 14);
        assert_eq!(&bytes[0..4], &[0, 0, 0, 6]); // length after strip was 6
    }

    #[test]
    fn nop_and_abort() {
        let pb = ProgramBuilder::new("T", 1);
        let mut b = Block::new();
        b.nop();
        b.abort("unreachable configuration");
        let prog = pb.finish(b).unwrap();
        let mut pkt = vec![0u8; 4];
        let r = run(&prog, &mut pkt);
        assert!(matches!(
            r.outcome,
            Outcome::Crashed(CrashReason::Aborted { .. })
        ));
    }
}

//! Static validation and width (type) checking of element programs.
//!
//! Validation runs before a program is executed or symbolically explored and
//! rejects programs that are structurally malformed: width mismatches,
//! references to undeclared locals or data structures, writes to static
//! state, emits to non-existent ports, and degenerate loop bounds. Anything
//! validation accepts has a well-defined concrete and symbolic semantics.

use crate::expr::{BinOp, CastKind, Expr, UnOp};
use crate::program::{DsClass, DsKind, Program, Stmt};
use crate::value::MAX_WIDTH;
use std::fmt;

/// A validation failure, with enough context to point at the offending
/// construct.
#[allow(missing_docs)] // variant fields are self-describing
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// A local id that has no declaration.
    UnknownLocal { local: u32 },
    /// A data structure id that has no declaration.
    UnknownDataStructure { ds: u32 },
    /// A declared width outside `1..=64`.
    InvalidWidth { what: String, width: u8 },
    /// Two sub-expressions that must agree in width do not.
    WidthMismatch {
        context: String,
        left: u8,
        right: u8,
    },
    /// A 1-bit expression was required (condition, boolean operand).
    ExpectedBool { context: String, found: u8 },
    /// A cast whose target width is invalid for its kind.
    InvalidCast { kind: String, from: u8, to: u8 },
    /// A packet access of width outside `1..=8` bytes.
    InvalidPacketAccessWidth { width_bytes: u8 },
    /// A packet offset expression that is not 32 bits wide.
    InvalidPacketOffsetWidth { found: u8 },
    /// An emit to an output port the program does not declare.
    InvalidPort { port: u8, num_ports: u8 },
    /// A write to a data structure declared as static (read-only) state.
    WriteToStaticState { ds: String },
    /// A loop with a zero iteration bound.
    ZeroLoopBound,
    /// A strip/push of zero bytes or of an implausibly large count.
    InvalidReframe { n: u32 },
    /// An array data structure declared with zero size.
    ZeroSizeArray { ds: String },
    /// A data-structure key expression whose width differs from the declared
    /// key width.
    KeyWidthMismatch { ds: String, declared: u8, found: u8 },
    /// A data-structure value whose width differs from the declared value
    /// width.
    ValueWidthMismatch { ds: String, declared: u8, found: u8 },
    /// An assignment whose value width differs from the local's declared
    /// width.
    AssignWidthMismatch {
        local: String,
        declared: u8,
        found: u8,
    },
    /// A packet store whose value width does not match the access width.
    StoreWidthMismatch { access_bits: u8, found: u8 },
    /// The default value of a data structure does not fit its value width.
    DefaultValueTooWide { ds: String },
    /// A program that declares zero output ports but emits.
    NoOutputPorts,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UnknownLocal { local } => write!(f, "unknown local l{local}"),
            ValidationError::UnknownDataStructure { ds } => {
                write!(f, "unknown data structure ds{ds}")
            }
            ValidationError::InvalidWidth { what, width } => {
                write!(f, "invalid width {width} for {what}")
            }
            ValidationError::WidthMismatch {
                context,
                left,
                right,
            } => write!(f, "width mismatch in {context}: {left} vs {right}"),
            ValidationError::ExpectedBool { context, found } => {
                write!(f, "expected 1-bit value in {context}, found width {found}")
            }
            ValidationError::InvalidCast { kind, from, to } => {
                write!(f, "invalid {kind} cast from width {from} to {to}")
            }
            ValidationError::InvalidPacketAccessWidth { width_bytes } => {
                write!(
                    f,
                    "packet access width must be 1..=8 bytes, got {width_bytes}"
                )
            }
            ValidationError::InvalidPacketOffsetWidth { found } => {
                write!(f, "packet offset must be 32 bits wide, got {found}")
            }
            ValidationError::InvalidPort { port, num_ports } => {
                write!(f, "emit to port {port} but program has {num_ports} ports")
            }
            ValidationError::WriteToStaticState { ds } => {
                write!(f, "write to static (read-only) data structure '{ds}'")
            }
            ValidationError::ZeroLoopBound => write!(f, "loop bound must be at least 1"),
            ValidationError::InvalidReframe { n } => {
                write!(f, "strip/push byte count {n} is zero or unreasonably large")
            }
            ValidationError::ZeroSizeArray { ds } => {
                write!(f, "array data structure '{ds}' has zero size")
            }
            ValidationError::KeyWidthMismatch {
                ds,
                declared,
                found,
            } => write!(
                f,
                "key width mismatch for '{ds}': declared {declared}, found {found}"
            ),
            ValidationError::ValueWidthMismatch {
                ds,
                declared,
                found,
            } => write!(
                f,
                "value width mismatch for '{ds}': declared {declared}, found {found}"
            ),
            ValidationError::AssignWidthMismatch {
                local,
                declared,
                found,
            } => write!(
                f,
                "assignment width mismatch for '{local}': declared {declared}, found {found}"
            ),
            ValidationError::StoreWidthMismatch { access_bits, found } => write!(
                f,
                "packet store width mismatch: access is {access_bits} bits, value is {found}"
            ),
            ValidationError::DefaultValueTooWide { ds } => {
                write!(f, "default value of '{ds}' does not fit its value width")
            }
            ValidationError::NoOutputPorts => {
                write!(f, "program emits but declares zero output ports")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate a program, returning the first error found.
pub fn validate(program: &Program) -> Result<(), ValidationError> {
    // Declarations.
    for (i, l) in program.locals.iter().enumerate() {
        check_width(&format!("local '{}' (l{i})", l.name), l.width)?;
    }
    for d in &program.data_structures {
        check_width(&format!("key of '{}'", d.name), d.key_width)?;
        check_width(&format!("value of '{}'", d.name), d.value_width)?;
        if let DsKind::Array { size } = d.kind {
            if size == 0 {
                return Err(ValidationError::ZeroSizeArray { ds: d.name.clone() });
            }
        }
        if d.value_width < 64 && d.default >= (1u64 << d.value_width) {
            return Err(ValidationError::DefaultValueTooWide { ds: d.name.clone() });
        }
    }
    // Body.
    check_block(program, &program.body)
}

fn check_width(what: &str, width: u8) -> Result<(), ValidationError> {
    if width == 0 || width > MAX_WIDTH {
        Err(ValidationError::InvalidWidth {
            what: what.to_string(),
            width,
        })
    } else {
        Ok(())
    }
}

fn check_block(program: &Program, stmts: &[Stmt]) -> Result<(), ValidationError> {
    for s in stmts {
        check_stmt(program, s)?;
    }
    Ok(())
}

fn check_stmt(program: &Program, stmt: &Stmt) -> Result<(), ValidationError> {
    match stmt {
        Stmt::Assign { local, value } => {
            let decl = program
                .local(*local)
                .ok_or(ValidationError::UnknownLocal { local: local.0 })?;
            let w = expr_width(program, value)?;
            if w != decl.width {
                return Err(ValidationError::AssignWidthMismatch {
                    local: decl.name.clone(),
                    declared: decl.width,
                    found: w,
                });
            }
            Ok(())
        }
        Stmt::PacketStore {
            offset,
            width_bytes,
            value,
        } => {
            if *width_bytes == 0 || *width_bytes > 8 {
                return Err(ValidationError::InvalidPacketAccessWidth {
                    width_bytes: *width_bytes,
                });
            }
            let ow = expr_width(program, offset)?;
            if ow != 32 {
                return Err(ValidationError::InvalidPacketOffsetWidth { found: ow });
            }
            let vw = expr_width(program, value)?;
            let access_bits = width_bytes * 8;
            if vw != access_bits {
                return Err(ValidationError::StoreWidthMismatch {
                    access_bits,
                    found: vw,
                });
            }
            Ok(())
        }
        Stmt::DsWrite { ds, key, value } => {
            let decl = program
                .ds(*ds)
                .ok_or(ValidationError::UnknownDataStructure { ds: ds.0 })?;
            if decl.class == DsClass::Static {
                return Err(ValidationError::WriteToStaticState {
                    ds: decl.name.clone(),
                });
            }
            let kw = expr_width(program, key)?;
            if kw != decl.key_width {
                return Err(ValidationError::KeyWidthMismatch {
                    ds: decl.name.clone(),
                    declared: decl.key_width,
                    found: kw,
                });
            }
            let vw = expr_width(program, value)?;
            if vw != decl.value_width {
                return Err(ValidationError::ValueWidthMismatch {
                    ds: decl.name.clone(),
                    declared: decl.value_width,
                    found: vw,
                });
            }
            Ok(())
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            expect_bool(program, cond, "if condition")?;
            check_block(program, then_body)?;
            check_block(program, else_body)
        }
        Stmt::Loop {
            max_iters,
            cond,
            body,
        } => {
            if *max_iters == 0 {
                return Err(ValidationError::ZeroLoopBound);
            }
            expect_bool(program, cond, "loop condition")?;
            check_block(program, body)
        }
        Stmt::Assert { cond, .. } => expect_bool(program, cond, "assert condition"),
        Stmt::StripFront { n } | Stmt::PushFront { n } => {
            if *n == 0 || *n > 4096 {
                Err(ValidationError::InvalidReframe { n: *n })
            } else {
                Ok(())
            }
        }
        Stmt::Abort { .. } | Stmt::Drop | Stmt::Nop => Ok(()),
        Stmt::Emit { port } => {
            if program.num_output_ports == 0 {
                return Err(ValidationError::NoOutputPorts);
            }
            if *port >= program.num_output_ports {
                return Err(ValidationError::InvalidPort {
                    port: *port,
                    num_ports: program.num_output_ports,
                });
            }
            Ok(())
        }
    }
}

fn expect_bool(program: &Program, e: &Expr, context: &str) -> Result<(), ValidationError> {
    let w = expr_width(program, e)?;
    if w != 1 {
        Err(ValidationError::ExpectedBool {
            context: context.to_string(),
            found: w,
        })
    } else {
        Ok(())
    }
}

/// Compute the width of an expression, checking it is well-formed along the
/// way. This is the IR's (very small) type system.
pub fn expr_width(program: &Program, e: &Expr) -> Result<u8, ValidationError> {
    match e {
        Expr::Const(v) => Ok(v.width()),
        Expr::Local(id) => program
            .local(*id)
            .map(|d| d.width)
            .ok_or(ValidationError::UnknownLocal { local: id.0 }),
        Expr::PacketLoad {
            offset,
            width_bytes,
        } => {
            if *width_bytes == 0 || *width_bytes > 8 {
                return Err(ValidationError::InvalidPacketAccessWidth {
                    width_bytes: *width_bytes,
                });
            }
            let ow = expr_width(program, offset)?;
            if ow != 32 {
                return Err(ValidationError::InvalidPacketOffsetWidth { found: ow });
            }
            Ok(width_bytes * 8)
        }
        Expr::PacketLen => Ok(32),
        Expr::DsRead { ds, key } => {
            let decl = program
                .ds(*ds)
                .ok_or(ValidationError::UnknownDataStructure { ds: ds.0 })?;
            let kw = expr_width(program, key)?;
            if kw != decl.key_width {
                return Err(ValidationError::KeyWidthMismatch {
                    ds: decl.name.clone(),
                    declared: decl.key_width,
                    found: kw,
                });
            }
            Ok(decl.value_width)
        }
        Expr::Unary { op, arg } => {
            let w = expr_width(program, arg)?;
            match op {
                UnOp::LogicalNot => {
                    if w != 1 {
                        return Err(ValidationError::ExpectedBool {
                            context: "logical not".to_string(),
                            found: w,
                        });
                    }
                    Ok(1)
                }
                UnOp::Not | UnOp::Neg => Ok(w),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let lw = expr_width(program, lhs)?;
            let rw = expr_width(program, rhs)?;
            if lw != rw {
                return Err(ValidationError::WidthMismatch {
                    context: format!("{op:?}"),
                    left: lw,
                    right: rw,
                });
            }
            if op.is_boolean() {
                if lw != 1 {
                    return Err(ValidationError::ExpectedBool {
                        context: format!("{op:?}"),
                        found: lw,
                    });
                }
                Ok(1)
            } else if op.is_comparison() {
                Ok(1)
            } else {
                Ok(lw)
            }
        }
        Expr::Select {
            cond,
            then_e,
            else_e,
        } => {
            let cw = expr_width(program, cond)?;
            if cw != 1 {
                return Err(ValidationError::ExpectedBool {
                    context: "select condition".to_string(),
                    found: cw,
                });
            }
            let tw = expr_width(program, then_e)?;
            let ew = expr_width(program, else_e)?;
            if tw != ew {
                return Err(ValidationError::WidthMismatch {
                    context: "select arms".to_string(),
                    left: tw,
                    right: ew,
                });
            }
            Ok(tw)
        }
        Expr::Cast { kind, width, arg } => {
            check_width("cast target", *width)?;
            let aw = expr_width(program, arg)?;
            let ok = match kind {
                CastKind::ZExt | CastKind::SExt => *width >= aw,
                CastKind::Trunc => *width <= aw,
                CastKind::Resize => true,
            };
            if !ok {
                return Err(ValidationError::InvalidCast {
                    kind: format!("{kind:?}"),
                    from: aw,
                    to: *width,
                });
            }
            Ok(*width)
        }
    }
}

/// Width of a binary operator's result given its (already equal-width)
/// operands. Exposed for the symbolic engine.
pub fn binop_result_width(op: BinOp, operand_width: u8) -> u8 {
    if op.is_comparison() || op.is_boolean() {
        1
    } else {
        operand_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Block, ProgramBuilder};
    use crate::expr::dsl::*;
    use crate::expr::{DsId, LocalId};
    use crate::program::{DsDecl, LocalDecl};

    fn empty_prog() -> Program {
        Program::new("T", 1)
    }

    #[test]
    fn const_and_len_widths() {
        let p = empty_prog();
        assert_eq!(expr_width(&p, &c(8, 1)).unwrap(), 8);
        assert_eq!(expr_width(&p, &pkt_len()).unwrap(), 32);
        assert_eq!(expr_width(&p, &pkt(0, 2)).unwrap(), 16);
    }

    #[test]
    fn binop_width_rules() {
        let p = empty_prog();
        assert_eq!(expr_width(&p, &add(c(8, 1), c(8, 2))).unwrap(), 8);
        assert_eq!(expr_width(&p, &eq(c(8, 1), c(8, 2))).unwrap(), 1);
        assert!(expr_width(&p, &add(c(8, 1), c(16, 2))).is_err());
        assert!(expr_width(&p, &band(c(8, 1), c(8, 1))).is_err());
        assert_eq!(expr_width(&p, &band(cbool(true), cbool(false))).unwrap(), 1);
        assert_eq!(binop_result_width(BinOp::Add, 16), 16);
        assert_eq!(binop_result_width(BinOp::Eq, 16), 1);
    }

    #[test]
    fn select_and_cast_rules() {
        let p = empty_prog();
        assert_eq!(
            expr_width(&p, &select(cbool(true), c(8, 1), c(8, 2))).unwrap(),
            8
        );
        assert!(expr_width(&p, &select(c(8, 1), c(8, 1), c(8, 2))).is_err());
        assert!(expr_width(&p, &select(cbool(true), c(8, 1), c(16, 2))).is_err());
        assert_eq!(expr_width(&p, &zext(c(8, 1), 32)).unwrap(), 32);
        assert!(expr_width(&p, &zext(c(32, 1), 8)).is_err());
        assert!(expr_width(&p, &trunc(c(8, 1), 32)).is_err());
        assert_eq!(expr_width(&p, &resize(c(8, 1), 32)).unwrap(), 32);
        assert_eq!(expr_width(&p, &resize(c(32, 1), 8)).unwrap(), 8);
    }

    #[test]
    fn unknown_references_rejected() {
        let p = empty_prog();
        assert_eq!(
            expr_width(&p, &l(LocalId(0))),
            Err(ValidationError::UnknownLocal { local: 0 })
        );
        assert_eq!(
            expr_width(&p, &ds_read(DsId(0), c(16, 0))),
            Err(ValidationError::UnknownDataStructure { ds: 0 })
        );
    }

    #[test]
    fn packet_access_rules() {
        let p = empty_prog();
        assert!(expr_width(&p, &pkt(0, 0)).is_err());
        assert!(expr_width(&p, &pkt(0, 9)).is_err());
        assert!(expr_width(&p, &pkt_at(c(16, 0), 2)).is_err());
        assert_eq!(expr_width(&p, &pkt_at(c(32, 0), 8)).unwrap(), 64);
    }

    #[test]
    fn static_state_is_read_only() {
        let mut pb = ProgramBuilder::new("T", 1);
        let fib = pb.static_array("fib", 256, 32, 8, 0);
        let mut b = Block::new();
        b.ds_write(fib, c(32, 1), c(8, 1));
        b.emit(0);
        let err = pb.finish(b).unwrap_err();
        assert!(matches!(err, ValidationError::WriteToStaticState { .. }));
    }

    #[test]
    fn ds_width_mismatches_rejected() {
        let mut pb = ProgramBuilder::new("T", 1);
        let t = pb.private_array("t", 8, 16, 32, 0);
        let mut b = Block::new();
        b.ds_write(t, c(8, 1), c(32, 1)); // key width wrong
        assert!(matches!(
            pb.clone().finish(b).unwrap_err(),
            ValidationError::KeyWidthMismatch { .. }
        ));
        let mut b = Block::new();
        b.ds_write(t, c(16, 1), c(8, 1)); // value width wrong
        assert!(matches!(
            pb.finish(b).unwrap_err(),
            ValidationError::ValueWidthMismatch { .. }
        ));
    }

    #[test]
    fn assignment_and_store_width_checks() {
        let mut pb = ProgramBuilder::new("T", 1);
        let x = pb.local("x", 8);
        let mut b = Block::new();
        b.assign(x, c(16, 1));
        assert!(matches!(
            pb.clone().finish(b).unwrap_err(),
            ValidationError::AssignWidthMismatch { .. }
        ));
        let mut b = Block::new();
        b.pkt_store(0, 2, c(8, 1));
        assert!(matches!(
            pb.finish(b).unwrap_err(),
            ValidationError::StoreWidthMismatch { .. }
        ));
    }

    #[test]
    fn control_flow_checks() {
        let pb = ProgramBuilder::new("T", 1);
        let mut b = Block::new();
        b.if_then(c(8, 1), Block::new());
        assert!(matches!(
            pb.clone().finish(b).unwrap_err(),
            ValidationError::ExpectedBool { .. }
        ));
        let mut b = Block::new();
        b.loop_bounded(0, cbool(true), Block::new());
        assert!(matches!(
            pb.clone().finish(b).unwrap_err(),
            ValidationError::ZeroLoopBound
        ));
        let mut b = Block::new();
        b.emit(1);
        assert!(matches!(
            pb.finish(b).unwrap_err(),
            ValidationError::InvalidPort { .. }
        ));
    }

    #[test]
    fn bad_declarations_rejected() {
        let mut p = empty_prog();
        p.locals.push(LocalDecl {
            name: "bad".into(),
            width: 0,
        });
        assert!(matches!(
            validate(&p).unwrap_err(),
            ValidationError::InvalidWidth { .. }
        ));

        let mut p = empty_prog();
        p.data_structures.push(DsDecl {
            name: "bad".into(),
            kind: crate::program::DsKind::Array { size: 0 },
            class: crate::program::DsClass::Private,
            key_width: 8,
            value_width: 8,
            default: 0,
        });
        assert!(matches!(
            validate(&p).unwrap_err(),
            ValidationError::ZeroSizeArray { .. }
        ));

        let mut p = empty_prog();
        p.data_structures.push(DsDecl {
            name: "bad".into(),
            kind: crate::program::DsKind::Map,
            class: crate::program::DsClass::Private,
            key_width: 8,
            value_width: 4,
            default: 255,
        });
        assert!(matches!(
            validate(&p).unwrap_err(),
            ValidationError::DefaultValueTooWide { .. }
        ));
    }

    #[test]
    fn emit_with_zero_ports_rejected() {
        let pb = ProgramBuilder::new("T", 0);
        let mut b = Block::new();
        b.emit(0);
        assert!(matches!(
            pb.finish(b).unwrap_err(),
            ValidationError::NoOutputPorts
        ));
    }

    #[test]
    fn errors_display() {
        let errs: Vec<ValidationError> = vec![
            ValidationError::UnknownLocal { local: 1 },
            ValidationError::UnknownDataStructure { ds: 2 },
            ValidationError::InvalidWidth {
                what: "x".into(),
                width: 0,
            },
            ValidationError::WidthMismatch {
                context: "Add".into(),
                left: 8,
                right: 16,
            },
            ValidationError::ExpectedBool {
                context: "if".into(),
                found: 8,
            },
            ValidationError::InvalidCast {
                kind: "ZExt".into(),
                from: 32,
                to: 8,
            },
            ValidationError::InvalidPacketAccessWidth { width_bytes: 9 },
            ValidationError::InvalidPacketOffsetWidth { found: 8 },
            ValidationError::InvalidPort {
                port: 2,
                num_ports: 1,
            },
            ValidationError::WriteToStaticState { ds: "fib".into() },
            ValidationError::ZeroLoopBound,
            ValidationError::ZeroSizeArray { ds: "a".into() },
            ValidationError::KeyWidthMismatch {
                ds: "a".into(),
                declared: 8,
                found: 16,
            },
            ValidationError::ValueWidthMismatch {
                ds: "a".into(),
                declared: 8,
                found: 16,
            },
            ValidationError::AssignWidthMismatch {
                local: "x".into(),
                declared: 8,
                found: 16,
            },
            ValidationError::StoreWidthMismatch {
                access_bits: 16,
                found: 8,
            },
            ValidationError::DefaultValueTooWide { ds: "a".into() },
            ValidationError::NoOutputPorts,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}

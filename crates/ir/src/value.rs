//! Fixed-width bit-vector values.
//!
//! Every value that flows through an element program — packet fields, locals,
//! table entries — is a [`BitVec`]: an unsigned integer of a declared width
//! between 1 and 64 bits. All arithmetic wraps modulo `2^width`, mirroring the
//! machine semantics of the C++ dataplane code the paper verifies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum supported bit-vector width.
pub const MAX_WIDTH: u8 = 64;

/// A fixed-width bit-vector value.
///
/// Invariant: `width` is in `1..=64` and `bits` has no bit set at or above
/// `width`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    width: u8,
    bits: u64,
}

// The arithmetic methods deliberately mirror the IR operator names (add,
// sub, mul, ...) rather than the std operator traits: they are width-checked
// value semantics, not operator overloads.
#[allow(clippy::should_implement_trait)]
impl BitVec {
    /// Create a new bit-vector of `width` bits holding `value` truncated to
    /// that width.
    ///
    /// # Panics
    /// Panics if `width` is 0 or greater than [`MAX_WIDTH`].
    pub fn new(width: u8, value: u64) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "bit-vector width must be in 1..=64, got {width}"
        );
        BitVec {
            width,
            bits: value & mask(width),
        }
    }

    /// A 1-bit boolean value.
    pub fn bool(b: bool) -> Self {
        BitVec::new(1, b as u64)
    }

    /// An 8-bit value.
    pub fn u8(v: u8) -> Self {
        BitVec::new(8, v as u64)
    }

    /// A 16-bit value.
    pub fn u16(v: u16) -> Self {
        BitVec::new(16, v as u64)
    }

    /// A 32-bit value.
    pub fn u32(v: u32) -> Self {
        BitVec::new(32, v as u64)
    }

    /// A 64-bit value.
    pub fn u64(v: u64) -> Self {
        BitVec::new(64, v)
    }

    /// The zero value of the given width.
    pub fn zero(width: u8) -> Self {
        BitVec::new(width, 0)
    }

    /// The all-ones value of the given width.
    pub fn ones(width: u8) -> Self {
        BitVec::new(width, u64::MAX)
    }

    /// Width of this value in bits.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The raw unsigned value.
    pub fn as_u64(&self) -> u64 {
        self.bits
    }

    /// The value interpreted as a signed two's-complement integer.
    pub fn as_i64(&self) -> i64 {
        let sign_bit = 1u64 << (self.width - 1);
        if self.width < 64 && (self.bits & sign_bit) != 0 {
            (self.bits | !mask(self.width)) as i64
        } else {
            self.bits as i64
        }
    }

    /// True if the value is non-zero (used for 1-bit conditions).
    pub fn is_true(&self) -> bool {
        self.bits != 0
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.bits == 0
    }

    /// The maximum unsigned value representable at this width.
    pub fn max_unsigned(width: u8) -> u64 {
        mask(width)
    }

    // ---- arithmetic -------------------------------------------------------

    /// Wrapping addition. Panics if widths differ.
    pub fn add(self, rhs: BitVec) -> BitVec {
        self.check_width(rhs);
        BitVec::new(self.width, self.bits.wrapping_add(rhs.bits))
    }

    /// Wrapping subtraction. Panics if widths differ.
    pub fn sub(self, rhs: BitVec) -> BitVec {
        self.check_width(rhs);
        BitVec::new(self.width, self.bits.wrapping_sub(rhs.bits))
    }

    /// Wrapping multiplication. Panics if widths differ.
    pub fn mul(self, rhs: BitVec) -> BitVec {
        self.check_width(rhs);
        BitVec::new(self.width, self.bits.wrapping_mul(rhs.bits))
    }

    /// Unsigned division. Returns `None` when dividing by zero (the
    /// interpreter and the symbolic engine turn this into a crash).
    pub fn udiv(self, rhs: BitVec) -> Option<BitVec> {
        self.check_width(rhs);
        self.bits
            .checked_div(rhs.bits)
            .map(|v| BitVec::new(self.width, v))
    }

    /// Unsigned remainder. Returns `None` when dividing by zero.
    pub fn urem(self, rhs: BitVec) -> Option<BitVec> {
        self.check_width(rhs);
        self.bits
            .checked_rem(rhs.bits)
            .map(|v| BitVec::new(self.width, v))
    }

    /// Two's-complement negation.
    pub fn neg(self) -> BitVec {
        BitVec::new(self.width, self.bits.wrapping_neg())
    }

    // ---- bitwise ----------------------------------------------------------

    /// Bitwise AND. Panics if widths differ.
    pub fn and(self, rhs: BitVec) -> BitVec {
        self.check_width(rhs);
        BitVec::new(self.width, self.bits & rhs.bits)
    }

    /// Bitwise OR. Panics if widths differ.
    pub fn or(self, rhs: BitVec) -> BitVec {
        self.check_width(rhs);
        BitVec::new(self.width, self.bits | rhs.bits)
    }

    /// Bitwise XOR. Panics if widths differ.
    pub fn xor(self, rhs: BitVec) -> BitVec {
        self.check_width(rhs);
        BitVec::new(self.width, self.bits ^ rhs.bits)
    }

    /// Bitwise NOT.
    pub fn not(self) -> BitVec {
        BitVec::new(self.width, !self.bits)
    }

    /// Logical shift left. Shift amounts at or above the width yield zero.
    pub fn shl(self, rhs: BitVec) -> BitVec {
        let sh = rhs.bits;
        if sh >= self.width as u64 {
            BitVec::zero(self.width)
        } else {
            BitVec::new(self.width, self.bits << sh)
        }
    }

    /// Logical shift right. Shift amounts at or above the width yield zero.
    pub fn lshr(self, rhs: BitVec) -> BitVec {
        let sh = rhs.bits;
        if sh >= self.width as u64 {
            BitVec::zero(self.width)
        } else {
            BitVec::new(self.width, self.bits >> sh)
        }
    }

    /// Arithmetic shift right (sign-extending). Shift amounts at or above the
    /// width yield all-zeros or all-ones depending on the sign bit.
    pub fn ashr(self, rhs: BitVec) -> BitVec {
        let sh = rhs.bits.min(self.width as u64 - 1);
        let v = self.as_i64() >> sh;
        BitVec::new(self.width, v as u64)
    }

    // ---- comparisons (return 1-bit values) --------------------------------

    /// Equality.
    pub fn eq_bv(self, rhs: BitVec) -> BitVec {
        self.check_width(rhs);
        BitVec::bool(self.bits == rhs.bits)
    }

    /// Inequality.
    pub fn ne_bv(self, rhs: BitVec) -> BitVec {
        self.check_width(rhs);
        BitVec::bool(self.bits != rhs.bits)
    }

    /// Unsigned less-than.
    pub fn ult(self, rhs: BitVec) -> BitVec {
        self.check_width(rhs);
        BitVec::bool(self.bits < rhs.bits)
    }

    /// Unsigned less-or-equal.
    pub fn ule(self, rhs: BitVec) -> BitVec {
        self.check_width(rhs);
        BitVec::bool(self.bits <= rhs.bits)
    }

    /// Signed less-than.
    pub fn slt(self, rhs: BitVec) -> BitVec {
        self.check_width(rhs);
        BitVec::bool(self.as_i64() < rhs.as_i64())
    }

    /// Signed less-or-equal.
    pub fn sle(self, rhs: BitVec) -> BitVec {
        self.check_width(rhs);
        BitVec::bool(self.as_i64() <= rhs.as_i64())
    }

    // ---- width changes ----------------------------------------------------

    /// Zero-extend or keep the value at `new_width` bits.
    ///
    /// # Panics
    /// Panics if `new_width` is smaller than the current width.
    pub fn zext(self, new_width: u8) -> BitVec {
        assert!(
            new_width >= self.width,
            "zext target width {new_width} smaller than source width {}",
            self.width
        );
        BitVec::new(new_width, self.bits)
    }

    /// Sign-extend the value to `new_width` bits.
    ///
    /// # Panics
    /// Panics if `new_width` is smaller than the current width.
    pub fn sext(self, new_width: u8) -> BitVec {
        assert!(
            new_width >= self.width,
            "sext target width {new_width} smaller than source width {}",
            self.width
        );
        BitVec::new(new_width, self.as_i64() as u64)
    }

    /// Truncate the value to `new_width` bits, keeping the low bits.
    ///
    /// # Panics
    /// Panics if `new_width` is larger than the current width.
    pub fn trunc(self, new_width: u8) -> BitVec {
        assert!(
            new_width <= self.width,
            "trunc target width {new_width} larger than source width {}",
            self.width
        );
        BitVec::new(new_width, self.bits)
    }

    /// Resize to `new_width`, zero-extending or truncating as needed.
    pub fn resize(self, new_width: u8) -> BitVec {
        if new_width >= self.width {
            self.zext(new_width)
        } else {
            self.trunc(new_width)
        }
    }

    fn check_width(&self, rhs: BitVec) {
        assert_eq!(
            self.width, rhs.width,
            "bit-vector width mismatch: {} vs {}",
            self.width, rhs.width
        );
    }
}

/// Bit mask with the low `width` bits set.
pub fn mask(width: u8) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}u{}", self.bits, self.width)
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width == 1 {
            write!(f, "{}", if self.bits != 0 { "true" } else { "false" })
        } else if self.bits > 0xffff {
            write!(f, "{:#x}u{}", self.bits, self.width)
        } else {
            write!(f, "{}u{}", self.bits, self.width)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_masks_to_width() {
        let v = BitVec::new(8, 0x1ff);
        assert_eq!(v.as_u64(), 0xff);
        assert_eq!(v.width(), 8);
        let v = BitVec::new(64, u64::MAX);
        assert_eq!(v.as_u64(), u64::MAX);
        let v = BitVec::new(1, 2);
        assert_eq!(v.as_u64(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_width_panics() {
        BitVec::new(0, 0);
    }

    #[test]
    #[should_panic]
    fn too_wide_panics() {
        BitVec::new(65, 0);
    }

    #[test]
    fn add_wraps() {
        let a = BitVec::u8(250);
        let b = BitVec::u8(10);
        assert_eq!(a.add(b).as_u64(), 4);
        let a = BitVec::new(16, 0xffff);
        assert_eq!(a.add(BitVec::u16(1)).as_u64(), 0);
    }

    #[test]
    fn sub_wraps() {
        let a = BitVec::u8(3);
        let b = BitVec::u8(5);
        assert_eq!(a.sub(b).as_u64(), 254);
    }

    #[test]
    fn mul_wraps() {
        let a = BitVec::u8(16);
        let b = BitVec::u8(17);
        assert_eq!(a.mul(b).as_u64(), (16 * 17) & 0xff);
    }

    #[test]
    fn div_by_zero_is_none() {
        assert!(BitVec::u8(4).udiv(BitVec::u8(0)).is_none());
        assert!(BitVec::u8(4).urem(BitVec::u8(0)).is_none());
        assert_eq!(BitVec::u8(9).udiv(BitVec::u8(2)).unwrap().as_u64(), 4);
        assert_eq!(BitVec::u8(9).urem(BitVec::u8(2)).unwrap().as_u64(), 1);
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(BitVec::u8(0xff).as_i64(), -1);
        assert_eq!(BitVec::u8(0x80).as_i64(), -128);
        assert_eq!(BitVec::u8(0x7f).as_i64(), 127);
        assert_eq!(BitVec::new(64, u64::MAX).as_i64(), -1);
        assert_eq!(BitVec::bool(true).as_i64(), -1);
    }

    #[test]
    fn comparisons() {
        let a = BitVec::u8(0x80); // -128 signed, 128 unsigned
        let b = BitVec::u8(1);
        assert!(a.ult(b).is_zero());
        assert!(b.ult(a).is_true());
        assert!(a.slt(b).is_true());
        assert!(b.slt(a).is_zero());
        assert!(a.eq_bv(a).is_true());
        assert!(a.ne_bv(b).is_true());
        assert!(a.ule(a).is_true());
        assert!(a.sle(a).is_true());
    }

    #[test]
    fn shifts() {
        let a = BitVec::u8(0b1001_0001);
        assert_eq!(a.shl(BitVec::u8(1)).as_u64(), 0b0010_0010);
        assert_eq!(a.lshr(BitVec::u8(4)).as_u64(), 0b0000_1001);
        assert_eq!(a.ashr(BitVec::u8(4)).as_u64(), 0b1111_1001);
        // Oversized shift amounts.
        assert_eq!(a.shl(BitVec::u8(8)).as_u64(), 0);
        assert_eq!(a.lshr(BitVec::u8(200)).as_u64(), 0);
        assert_eq!(a.ashr(BitVec::u8(200)).as_u64(), 0xff);
        let p = BitVec::u8(0x71);
        assert_eq!(p.ashr(BitVec::u8(200)).as_u64(), 0);
    }

    #[test]
    fn bitwise_ops() {
        let a = BitVec::u8(0b1100);
        let b = BitVec::u8(0b1010);
        assert_eq!(a.and(b).as_u64(), 0b1000);
        assert_eq!(a.or(b).as_u64(), 0b1110);
        assert_eq!(a.xor(b).as_u64(), 0b0110);
        assert_eq!(a.not().as_u64(), 0xf3);
    }

    #[test]
    fn width_changes() {
        let a = BitVec::u8(0x80);
        assert_eq!(a.zext(16).as_u64(), 0x80);
        assert_eq!(a.sext(16).as_u64(), 0xff80);
        let b = BitVec::u16(0xabcd);
        assert_eq!(b.trunc(8).as_u64(), 0xcd);
        assert_eq!(b.resize(8).as_u64(), 0xcd);
        assert_eq!(b.resize(32).as_u64(), 0xabcd);
        assert_eq!(b.resize(16).as_u64(), 0xabcd);
    }

    #[test]
    #[should_panic]
    fn mismatched_width_panics() {
        BitVec::u8(1).add(BitVec::u16(1));
    }

    #[test]
    fn neg_and_ones() {
        assert_eq!(BitVec::u8(1).neg().as_u64(), 0xff);
        assert_eq!(BitVec::u8(0).neg().as_u64(), 0);
        assert_eq!(BitVec::ones(8).as_u64(), 0xff);
        assert_eq!(BitVec::ones(64).as_u64(), u64::MAX);
        assert_eq!(BitVec::max_unsigned(12), 0xfff);
    }

    #[test]
    fn display_formatting() {
        assert_eq!(BitVec::bool(true).to_string(), "true");
        assert_eq!(BitVec::bool(false).to_string(), "false");
        assert_eq!(BitVec::u8(7).to_string(), "7u8");
        assert_eq!(BitVec::u32(0x1234_5678).to_string(), "0x12345678u32");
        assert_eq!(format!("{:?}", BitVec::u16(9)), "9u16");
    }
}

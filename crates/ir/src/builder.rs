//! Ergonomic construction of element programs.
//!
//! [`ProgramBuilder`] owns the declarations (locals, data structures, output
//! ports); [`Block`] accumulates statements and nests via plain values, so
//! element definitions read close to the pseudo-code in the paper's figures:
//!
//! ```
//! use dataplane_ir::builder::{Block, ProgramBuilder};
//! use dataplane_ir::expr::dsl::*;
//!
//! let mut pb = ProgramBuilder::new("ToyE2", 1);
//! let out = pb.local("out", 32);
//! let mut body = Block::new();
//! body.assert(uge(pkt(0, 4), c(32, 0)), "input must be non-negative");
//! body.if_else(
//!     ult(pkt(0, 4), c(32, 10)),
//!     Block::with(|b| {
//!         b.assign(out, c(32, 10));
//!     }),
//!     Block::with(|b| {
//!         b.assign(out, pkt(0, 4));
//!     }),
//! );
//! body.emit(0);
//! let program = pb.finish(body).expect("valid program");
//! assert_eq!(program.name, "ToyE2");
//! ```

use crate::expr::{DsId, Expr, LocalId};
use crate::program::{DsClass, DsDecl, DsKind, LocalDecl, Program, Stmt};
use crate::validate::{validate, ValidationError};

/// Builder for the declaration part of a [`Program`].
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    locals: Vec<LocalDecl>,
    data_structures: Vec<DsDecl>,
    num_output_ports: u8,
}

impl ProgramBuilder {
    /// Start a program named `name` with `num_output_ports` output ports.
    pub fn new(name: impl Into<String>, num_output_ports: u8) -> Self {
        ProgramBuilder {
            name: name.into(),
            locals: Vec::new(),
            data_structures: Vec::new(),
            num_output_ports,
        }
    }

    /// Declare a local variable of the given bit width.
    pub fn local(&mut self, name: impl Into<String>, width: u8) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(LocalDecl {
            name: name.into(),
            width,
        });
        id
    }

    /// Declare a private (read/write, per-element) pre-allocated array.
    pub fn private_array(
        &mut self,
        name: impl Into<String>,
        size: u64,
        key_width: u8,
        value_width: u8,
        default: u64,
    ) -> DsId {
        self.ds(
            name,
            DsKind::Array { size },
            DsClass::Private,
            key_width,
            value_width,
            default,
        )
    }

    /// Declare a static (read-only, shared) pre-allocated array.
    pub fn static_array(
        &mut self,
        name: impl Into<String>,
        size: u64,
        key_width: u8,
        value_width: u8,
        default: u64,
    ) -> DsId {
        self.ds(
            name,
            DsKind::Array { size },
            DsClass::Static,
            key_width,
            value_width,
            default,
        )
    }

    /// Declare a private (read/write) open map.
    pub fn private_map(
        &mut self,
        name: impl Into<String>,
        key_width: u8,
        value_width: u8,
        default: u64,
    ) -> DsId {
        self.ds(
            name,
            DsKind::Map,
            DsClass::Private,
            key_width,
            value_width,
            default,
        )
    }

    /// Declare a static (read-only) open map.
    pub fn static_map(
        &mut self,
        name: impl Into<String>,
        key_width: u8,
        value_width: u8,
        default: u64,
    ) -> DsId {
        self.ds(
            name,
            DsKind::Map,
            DsClass::Static,
            key_width,
            value_width,
            default,
        )
    }

    fn ds(
        &mut self,
        name: impl Into<String>,
        kind: DsKind,
        class: DsClass,
        key_width: u8,
        value_width: u8,
        default: u64,
    ) -> DsId {
        let id = DsId(self.data_structures.len() as u32);
        self.data_structures.push(DsDecl {
            name: name.into(),
            kind,
            class,
            key_width,
            value_width,
            default,
        });
        id
    }

    /// Attach the body and validate, producing the finished [`Program`].
    pub fn finish(self, body: Block) -> Result<Program, ValidationError> {
        let program = Program {
            name: self.name,
            locals: self.locals,
            data_structures: self.data_structures,
            num_output_ports: self.num_output_ports,
            body: body.stmts,
        };
        validate(&program)?;
        Ok(program)
    }

    /// Attach the body **without** validating. Used by tests that deliberately
    /// construct invalid programs.
    pub fn finish_unchecked(self, body: Block) -> Program {
        Program {
            name: self.name,
            locals: self.locals,
            data_structures: self.data_structures,
            num_output_ports: self.num_output_ports,
            body: body.stmts,
        }
    }
}

/// A sequence of statements under construction.
#[derive(Debug, Clone, Default)]
pub struct Block {
    stmts: Vec<Stmt>,
}

impl Block {
    /// An empty block.
    pub fn new() -> Self {
        Block { stmts: Vec::new() }
    }

    /// Build a block by applying `f` to a fresh block — convenient for nested
    /// `if`/`loop` bodies.
    pub fn with(f: impl FnOnce(&mut Block)) -> Self {
        let mut b = Block::new();
        f(&mut b);
        b
    }

    /// The statements accumulated so far.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// Consume the block, returning its statements.
    pub fn into_stmts(self) -> Vec<Stmt> {
        self.stmts
    }

    /// Append a raw statement.
    pub fn push(&mut self, stmt: Stmt) -> &mut Self {
        self.stmts.push(stmt);
        self
    }

    /// `local := value`
    pub fn assign(&mut self, local: LocalId, value: Expr) -> &mut Self {
        self.push(Stmt::Assign { local, value })
    }

    /// Store `value` into the packet at a constant byte offset.
    pub fn pkt_store(&mut self, offset: u32, width_bytes: u8, value: Expr) -> &mut Self {
        self.push(Stmt::PacketStore {
            offset: Expr::c32(offset),
            width_bytes,
            value,
        })
    }

    /// Store `value` into the packet at a computed byte offset.
    pub fn pkt_store_at(&mut self, offset: Expr, width_bytes: u8, value: Expr) -> &mut Self {
        self.push(Stmt::PacketStore {
            offset,
            width_bytes,
            value,
        })
    }

    /// Write `value` under `key` in data structure `ds`.
    pub fn ds_write(&mut self, ds: DsId, key: Expr, value: Expr) -> &mut Self {
        self.push(Stmt::DsWrite { ds, key, value })
    }

    /// `if cond { then_blk } else { else_blk }`
    pub fn if_else(&mut self, cond: Expr, then_blk: Block, else_blk: Block) -> &mut Self {
        self.push(Stmt::If {
            cond,
            then_body: then_blk.stmts,
            else_body: else_blk.stmts,
        })
    }

    /// `if cond { then_blk }`
    pub fn if_then(&mut self, cond: Expr, then_blk: Block) -> &mut Self {
        self.if_else(cond, then_blk, Block::new())
    }

    /// A bounded loop: `while cond && iterations < max_iters { body }`, where
    /// exceeding `max_iters` crashes.
    pub fn loop_bounded(&mut self, max_iters: u32, cond: Expr, body: Block) -> &mut Self {
        self.push(Stmt::Loop {
            max_iters,
            cond,
            body: body.stmts,
        })
    }

    /// Remove `n` bytes from the front of the packet (crashes if the packet
    /// is shorter).
    pub fn strip_front(&mut self, n: u32) -> &mut Self {
        self.push(Stmt::StripFront { n })
    }

    /// Prepend `n` zero bytes to the front of the packet.
    pub fn push_front(&mut self, n: u32) -> &mut Self {
        self.push(Stmt::PushFront { n })
    }

    /// Crash unless `cond` holds.
    pub fn assert(&mut self, cond: Expr, message: impl Into<String>) -> &mut Self {
        self.push(Stmt::Assert {
            cond,
            message: message.into(),
        })
    }

    /// Unconditional crash.
    pub fn abort(&mut self, message: impl Into<String>) -> &mut Self {
        self.push(Stmt::Abort {
            message: message.into(),
        })
    }

    /// Push the packet to output port `port` and stop.
    pub fn emit(&mut self, port: u8) -> &mut Self {
        self.push(Stmt::Emit { port })
    }

    /// Drop the packet and stop.
    pub fn drop_packet(&mut self) -> &mut Self {
        self.push(Stmt::Drop)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Stmt::Nop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::dsl::*;
    use crate::program::DsClass;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut pb = ProgramBuilder::new("T", 1);
        let a = pb.local("a", 8);
        let b = pb.local("b", 16);
        assert_eq!(a, LocalId(0));
        assert_eq!(b, LocalId(1));
        let d0 = pb.private_array("t0", 4, 8, 8, 0);
        let d1 = pb.static_map("t1", 32, 16, 7);
        assert_eq!(d0, DsId(0));
        assert_eq!(d1, DsId(1));
        let prog = pb.finish_unchecked(Block::new());
        assert_eq!(prog.locals.len(), 2);
        assert_eq!(prog.data_structures.len(), 2);
        assert_eq!(prog.data_structures[0].class, DsClass::Private);
        assert_eq!(prog.data_structures[1].class, DsClass::Static);
        assert_eq!(prog.data_structures[1].default, 7);
    }

    #[test]
    fn block_accumulates_statements() {
        let mut pb = ProgramBuilder::new("T", 2);
        let x = pb.local("x", 32);
        let mut b = Block::new();
        b.assign(x, c(32, 1))
            .if_then(
                eq(l(x), c(32, 1)),
                Block::with(|bb| {
                    bb.emit(1);
                }),
            )
            .drop_packet();
        let prog = pb.finish(b).unwrap();
        assert_eq!(prog.body.len(), 3);
        assert_eq!(prog.stmt_count(), 4);
    }

    #[test]
    fn finish_rejects_invalid_program() {
        let pb = ProgramBuilder::new("T", 1);
        let mut b = Block::new();
        // Emit to a non-existent port.
        b.emit(3);
        assert!(pb.finish(b).is_err());
    }

    #[test]
    fn pkt_store_helpers() {
        let mut pb = ProgramBuilder::new("T", 1);
        let _ = pb.local("x", 8);
        let mut b = Block::new();
        b.pkt_store(0, 1, c(8, 0xab));
        b.pkt_store_at(add(c(32, 1), c(32, 1)), 2, c(16, 0xcdef));
        b.nop();
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        assert_eq!(prog.body.len(), 4);
    }

    #[test]
    fn loop_and_ds_write_helpers() {
        let mut pb = ProgramBuilder::new("T", 1);
        let i = pb.local("i", 16);
        let tbl = pb.private_array("tbl", 8, 16, 32, 0);
        let mut b = Block::new();
        b.loop_bounded(
            8,
            ult(l(i), c(16, 8)),
            Block::with(|bb| {
                bb.ds_write(tbl, l(i), c(32, 1));
                bb.assign(i, add(l(i), c(16, 1)));
            }),
        );
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        assert!(prog.has_loops());
        assert!(prog.uses_data_structures());
    }
}

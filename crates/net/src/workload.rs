//! Synthetic workload generation.
//!
//! The paper's testbed replays packets from line-rate hardware; our
//! reproduction substitutes a deterministic, seedable generator that produces
//! the same *classes* of packets the evaluation cares about: well-formed
//! IPv4 traffic over a configurable address pool, packets carrying IP
//! options (the expensive path), and malformed packets (truncated headers,
//! bad checksums, bad versions) that a correct pipeline must reject without
//! crashing.

use crate::ethernet::ETHERNET_HEADER_LEN;
use crate::ipv4::{IPOPT_NOP, IPOPT_RR};
use crate::packet::{Packet, PacketMeta};
use crate::pktbuild::PacketBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// The kinds of packets a workload can mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketClass {
    /// A well-formed UDP packet with no IP options.
    Udp,
    /// A well-formed TCP SYN.
    TcpSyn,
    /// A well-formed ICMP echo request.
    IcmpEcho,
    /// A well-formed UDP packet carrying IP options (record-route + NOPs).
    WithIpOptions,
    /// An IPv4 header whose checksum is wrong.
    BadChecksum,
    /// A packet truncated in the middle of the IPv4 header.
    TruncatedIp,
    /// An IP version other than 4.
    BadVersion,
    /// A TTL of zero or one (about to expire).
    ExpiringTtl,
}

/// Relative weights of each packet class in a generated mix.
#[derive(Clone, Debug)]
pub struct WorkloadMix {
    entries: Vec<(PacketClass, u32)>,
}

impl WorkloadMix {
    /// A mix of only well-formed forwarding traffic (UDP/TCP/ICMP).
    pub fn clean() -> Self {
        WorkloadMix {
            entries: vec![
                (PacketClass::Udp, 70),
                (PacketClass::TcpSyn, 20),
                (PacketClass::IcmpEcho, 10),
            ],
        }
    }

    /// The adversarial mix used by robustness tests: roughly half the packets
    /// are malformed or exercise slow paths.
    pub fn adversarial() -> Self {
        WorkloadMix {
            entries: vec![
                (PacketClass::Udp, 30),
                (PacketClass::TcpSyn, 10),
                (PacketClass::WithIpOptions, 20),
                (PacketClass::BadChecksum, 10),
                (PacketClass::TruncatedIp, 10),
                (PacketClass::BadVersion, 10),
                (PacketClass::ExpiringTtl, 10),
            ],
        }
    }

    /// A single-class mix.
    pub fn only(class: PacketClass) -> Self {
        WorkloadMix {
            entries: vec![(class, 1)],
        }
    }

    /// Build a custom mix from `(class, weight)` pairs.
    ///
    /// # Panics
    /// Panics if `entries` is empty or all weights are zero.
    pub fn custom(entries: Vec<(PacketClass, u32)>) -> Self {
        assert!(
            entries.iter().map(|(_, w)| *w).sum::<u32>() > 0,
            "workload mix must have positive total weight"
        );
        WorkloadMix { entries }
    }

    fn pick(&self, rng: &mut StdRng) -> PacketClass {
        let total: u32 = self.entries.iter().map(|(_, w)| w).sum();
        let mut roll = rng.gen_range(0..total);
        for (class, w) in &self.entries {
            if roll < *w {
                return *class;
            }
            roll -= w;
        }
        self.entries[0].0
    }
}

/// The default workload seed. Every place that generates a workload without
/// an explicit `--seed` uses this value, and reports record the seed actually
/// used so any run is reproducible from its artifact.
pub const DEFAULT_SEED: u64 = 0xDA7A_0001_2013_0011;

/// Configuration of a synthetic workload.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// RNG seed; the same seed reproduces the same packet sequence.
    pub seed: u64,
    /// The class mix.
    pub mix: WorkloadMix,
    /// Number of distinct source addresses (10.0.x.y pool).
    pub src_hosts: u32,
    /// Number of distinct destination addresses (192.168.x.y pool).
    pub dst_hosts: u32,
    /// Payload length for well-formed packets.
    pub payload_len: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: DEFAULT_SEED,
            mix: WorkloadMix::clean(),
            src_hosts: 64,
            dst_hosts: 16,
            payload_len: 26, // 64-byte minimum frame with UDP
        }
    }
}

/// Deterministic packet generator.
#[derive(Debug)]
pub struct WorkloadGen {
    cfg: WorkloadConfig,
    rng: StdRng,
    sequence: u64,
}

impl WorkloadGen {
    /// Create a generator from a configuration.
    pub fn new(cfg: WorkloadConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        WorkloadGen {
            cfg,
            rng,
            sequence: 0,
        }
    }

    /// Convenience constructor: clean traffic with the given seed.
    pub fn clean(seed: u64) -> Self {
        WorkloadGen::new(WorkloadConfig {
            seed,
            ..WorkloadConfig::default()
        })
    }

    /// Convenience constructor: adversarial traffic with the given seed.
    pub fn adversarial(seed: u64) -> Self {
        WorkloadGen::new(WorkloadConfig {
            seed,
            mix: WorkloadMix::adversarial(),
            ..WorkloadConfig::default()
        })
    }

    /// Generate the next packet.
    pub fn next_packet(&mut self) -> Packet {
        let class = self.cfg.mix.pick(&mut self.rng);
        let pkt = self.build(class);
        self.sequence += 1;
        pkt
    }

    /// Generate a batch of `n` packets.
    pub fn batch(&mut self, n: usize) -> Vec<Packet> {
        (0..n).map(|_| self.next_packet()).collect()
    }

    fn addr_pair(&mut self) -> (Ipv4Addr, Ipv4Addr) {
        let s = self.rng.gen_range(0..self.cfg.src_hosts);
        let d = self.rng.gen_range(0..self.cfg.dst_hosts);
        (
            Ipv4Addr::new(10, 0, (s >> 8) as u8, (s & 0xff) as u8),
            Ipv4Addr::new(192, 168, (d >> 8) as u8, (d & 0xff) as u8),
        )
    }

    fn meta(&self) -> PacketMeta {
        PacketMeta {
            input_port: 0,
            paint: 0,
            sequence: self.sequence,
        }
    }

    fn build(&mut self, class: PacketClass) -> Packet {
        let (src, dst) = self.addr_pair();
        let payload: Vec<u8> = (0..self.cfg.payload_len)
            .map(|_| self.rng.gen::<u8>())
            .collect();
        let sport = self.rng.gen_range(1024..65000);
        let dport = *[53u16, 80, 443, 8080, 5000]
            .get(self.rng.gen_range(0usize..5))
            .unwrap();
        match class {
            PacketClass::Udp => PacketBuilder::udp(src, dst, sport, dport, &payload)
                .meta(self.meta())
                .build(),
            PacketClass::TcpSyn => PacketBuilder::tcp_syn(src, dst, sport, dport)
                .meta(self.meta())
                .build(),
            PacketClass::IcmpEcho => PacketBuilder::icmp_echo(src, dst)
                .payload(&payload)
                .meta(self.meta())
                .build(),
            PacketClass::WithIpOptions => {
                // A record-route option with room for three hops plus NOP padding.
                let options = vec![
                    IPOPT_RR, 15, 4, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, IPOPT_NOP,
                ];
                PacketBuilder::udp(src, dst, sport, dport, &payload)
                    .ip_options(&options)
                    .meta(self.meta())
                    .build()
            }
            PacketClass::BadChecksum => {
                let mut pkt = PacketBuilder::udp(src, dst, sport, dport, &payload)
                    .meta(self.meta())
                    .build();
                // Flip a bit in the checksum field.
                let off = ETHERNET_HEADER_LEN + 10;
                let b = pkt.get_u8(off).unwrap();
                pkt.set_u8(off, b ^ 0x5a);
                pkt
            }
            PacketClass::TruncatedIp => {
                let mut pkt = PacketBuilder::udp(src, dst, sport, dport, &payload)
                    .meta(self.meta())
                    .build();
                pkt.truncate(ETHERNET_HEADER_LEN + self.rng.gen_range(1usize..12));
                pkt
            }
            PacketClass::BadVersion => {
                let mut pkt = PacketBuilder::udp(src, dst, sport, dport, &payload)
                    .meta(self.meta())
                    .build();
                let off = ETHERNET_HEADER_LEN;
                pkt.set_u8(off, 0x65); // version 6, IHL 5
                pkt
            }
            PacketClass::ExpiringTtl => {
                let ttl = self.rng.gen_range(0..2u8);
                PacketBuilder::udp(src, dst, sport, dport, &payload)
                    .ttl(ttl)
                    .meta(self.meta())
                    .build()
            }
        }
    }
}

impl Iterator for WorkloadGen {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        Some(self.next_packet())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Ipv4Header;

    #[test]
    fn same_seed_same_packets() {
        let a: Vec<_> = WorkloadGen::clean(7).batch(50);
        let b: Vec<_> = WorkloadGen::clean(7).batch(50);
        assert_eq!(a, b);
        let c: Vec<_> = WorkloadGen::clean(8).batch(50);
        assert_ne!(a, c);
    }

    #[test]
    fn clean_mix_produces_valid_ip_headers() {
        let mut gen = WorkloadGen::clean(1);
        for pkt in gen.batch(100) {
            let ip = Ipv4Header::parse_checked(&pkt.bytes()[ETHERNET_HEADER_LEN..]);
            assert!(ip.is_ok(), "clean packet failed validation: {ip:?}");
        }
    }

    #[test]
    fn adversarial_mix_contains_malformed_packets() {
        let mut gen = WorkloadGen::adversarial(2);
        let packets = gen.batch(300);
        let bad = packets
            .iter()
            .filter(|p| {
                p.len() < ETHERNET_HEADER_LEN + 20
                    || Ipv4Header::parse_checked(&p.bytes()[ETHERNET_HEADER_LEN..]).is_err()
            })
            .count();
        assert!(bad > 30, "expected plenty of malformed packets, got {bad}");
        assert!(bad < 300, "expected some valid packets too");
    }

    #[test]
    fn options_class_sets_ihl_above_five() {
        let mut gen = WorkloadGen::new(WorkloadConfig {
            seed: 3,
            mix: WorkloadMix::only(PacketClass::WithIpOptions),
            ..WorkloadConfig::default()
        });
        let pkt = gen.next_packet();
        let ip = Ipv4Header::parse_checked(&pkt.bytes()[ETHERNET_HEADER_LEN..]).unwrap();
        assert!(ip.ihl > 5);
        assert!(!ip.options.is_empty());
    }

    #[test]
    fn expiring_ttl_class_sets_low_ttl() {
        let mut gen = WorkloadGen::new(WorkloadConfig {
            seed: 4,
            mix: WorkloadMix::only(PacketClass::ExpiringTtl),
            ..WorkloadConfig::default()
        });
        for pkt in gen.batch(20) {
            let ip = Ipv4Header::parse_checked(&pkt.bytes()[ETHERNET_HEADER_LEN..]).unwrap();
            assert!(ip.ttl <= 1);
        }
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut gen = WorkloadGen::clean(5);
        let p = gen.batch(10);
        for (i, pkt) in p.iter().enumerate() {
            assert_eq!(pkt.meta().sequence, i as u64);
        }
    }

    #[test]
    fn iterator_interface_works() {
        let gen = WorkloadGen::clean(6);
        let v: Vec<_> = gen.take(5).collect();
        assert_eq!(v.len(), 5);
    }

    #[test]
    #[should_panic]
    fn empty_mix_rejected() {
        WorkloadMix::custom(vec![(PacketClass::Udp, 0)]);
    }

    /// Classify a generated packet back into its class by inspection. The
    /// adversarial classes are mutually distinguishable on the wire, which
    /// is what lets the distribution test below audit the mix weights.
    fn classify(pkt: &Packet) -> PacketClass {
        let bytes = pkt.bytes();
        if bytes.len() < ETHERNET_HEADER_LEN + 20 {
            return PacketClass::TruncatedIp;
        }
        if bytes[ETHERNET_HEADER_LEN] >> 4 != 4 {
            return PacketClass::BadVersion;
        }
        let Ok(ip) = Ipv4Header::parse_checked(&bytes[ETHERNET_HEADER_LEN..]) else {
            return PacketClass::BadChecksum;
        };
        if ip.ihl > 5 {
            return PacketClass::WithIpOptions;
        }
        if ip.ttl <= 1 {
            return PacketClass::ExpiringTtl;
        }
        match ip.protocol {
            crate::ipv4::PROTO_TCP => PacketClass::TcpSyn,
            crate::ipv4::PROTO_ICMP => PacketClass::IcmpEcho,
            _ => PacketClass::Udp,
        }
    }

    #[test]
    fn adversarial_class_mix_matches_weights() {
        let packets = WorkloadGen::adversarial(41).batch(2000);
        let mut counts = std::collections::HashMap::new();
        for pkt in &packets {
            *counts.entry(classify(pkt)).or_insert(0usize) += 1;
        }
        // Expected counts out of 2000 for the 30/10/20/10/10/10/10 mix;
        // bounds are generous (±50%) so the test checks the mix, not the RNG.
        let expectations = [
            (PacketClass::Udp, 600),
            (PacketClass::TcpSyn, 200),
            (PacketClass::WithIpOptions, 400),
            (PacketClass::BadChecksum, 200),
            (PacketClass::TruncatedIp, 200),
            (PacketClass::BadVersion, 200),
            (PacketClass::ExpiringTtl, 200),
        ];
        for (class, expected) in expectations {
            let got = counts.get(&class).copied().unwrap_or(0);
            assert!(
                got >= expected / 2 && got <= expected * 3 / 2,
                "{class:?}: got {got}, expected around {expected}"
            );
        }
        assert_eq!(counts.get(&PacketClass::IcmpEcho), None);
    }

    #[test]
    fn adversarial_generator_is_deterministic_under_a_fixed_seed() {
        let a = WorkloadGen::adversarial(9).batch(200);
        let b = WorkloadGen::adversarial(9).batch(200);
        assert_eq!(a, b);
        let c = WorkloadGen::adversarial(10).batch(200);
        assert_ne!(a, c);
    }

    #[test]
    fn batch_matches_successive_next_packets() {
        let batched = WorkloadGen::adversarial(12).batch(64);
        assert_eq!(batched.len(), 64);
        let mut gen = WorkloadGen::adversarial(12);
        let singles: Vec<_> = (0..64).map(|_| gen.next_packet()).collect();
        assert_eq!(
            batched, singles,
            "batch() must equal repeated next_packet()"
        );
        for (i, pkt) in batched.iter().enumerate() {
            assert_eq!(pkt.meta().sequence, i as u64, "batch preserves ordering");
        }
    }

    #[test]
    fn default_seed_is_the_documented_constant() {
        assert_eq!(WorkloadConfig::default().seed, DEFAULT_SEED);
    }
}

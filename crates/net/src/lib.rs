//! # dataplane-net — packet substrate for the verifiable software dataplane
//!
//! This crate provides everything the dataplane framework and its element
//! library need to handle real packets: byte buffers with metadata, codecs
//! for Ethernet II, IPv4 (including options), UDP, TCP, and ICMP, the
//! Internet checksum, flow (5-tuple) extraction, a packet builder, and a
//! deterministic synthetic workload generator.
//!
//! In the paper the workload comes from a hardware testbed; here the
//! [`workload`] module produces the equivalent packet classes in software
//! (see DESIGN.md §1 for the substitution rationale).
//!
//! ## Example
//!
//! ```
//! use dataplane_net::pktbuild::PacketBuilder;
//! use dataplane_net::flow::extract_five_tuple;
//! use std::net::Ipv4Addr;
//!
//! let pkt = PacketBuilder::udp(
//!     Ipv4Addr::new(10, 0, 0, 1),
//!     Ipv4Addr::new(192, 168, 0, 1),
//!     5000,
//!     53,
//!     b"payload",
//! )
//! .build();
//! let flow = extract_five_tuple(&pkt).unwrap();
//! assert_eq!(flow.dst_port, 53);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checksum;
pub mod ethernet;
pub mod flow;
pub mod ipv4;
pub mod packet;
pub mod pktbuild;
pub mod transport;
pub mod workload;

pub use ethernet::{EthernetHeader, MacAddr, ETHERNET_HEADER_LEN, ETHERTYPE_IPV4};
pub use flow::{extract_five_tuple, FiveTuple};
pub use ipv4::{Ipv4Error, Ipv4Header, IPV4_MIN_HEADER_LEN, PROTO_ICMP, PROTO_TCP, PROTO_UDP};
pub use packet::{Packet, PacketMeta};
pub use pktbuild::PacketBuilder;
pub use transport::{IcmpHeader, TcpHeader, UdpHeader};
pub use workload::{PacketClass, WorkloadConfig, WorkloadGen, WorkloadMix, DEFAULT_SEED};

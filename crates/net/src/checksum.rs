//! The Internet checksum (RFC 1071) used by IPv4, ICMP, UDP, and TCP.

/// Compute the ones-complement Internet checksum over `data`.
///
/// The returned value is ready to be stored in a header checksum field (i.e.
/// it is already complemented). Computing the checksum over data that already
/// contains a correct checksum field yields zero in the folded sum, i.e.
/// [`verify`] returns `true`.
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum(data, 0))
}

/// Compute a checksum over `data` with an additional starting `initial` sum —
/// used for pseudo-header sums (UDP/TCP).
pub fn checksum_with(data: &[u8], initial: u32) -> u16 {
    !fold(sum(data, initial))
}

/// Verify that data containing its checksum field sums to the all-ones
/// pattern, i.e. the checksum is consistent.
pub fn verify(data: &[u8]) -> bool {
    fold(sum(data, 0)) == 0xffff
}

/// Raw 32-bit ones-complement accumulation of 16-bit big-endian words.
fn sum(data: &[u8], initial: u32) -> u32 {
    let mut acc = initial;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Fold a 32-bit accumulator into 16 bits with end-around carry.
fn fold(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

/// The IPv4/TCP/UDP pseudo-header sum for transport checksums.
pub fn pseudo_header_sum(src: [u8; 4], dst: [u8; 4], protocol: u8, length: u16) -> u32 {
    let mut acc = 0u32;
    acc += u32::from(u16::from_be_bytes([src[0], src[1]]));
    acc += u32::from(u16::from_be_bytes([src[2], src[3]]));
    acc += u32::from(u16::from_be_bytes([dst[0], dst[1]]));
    acc += u32::from(u16::from_be_bytes([dst[2], dst[3]]));
    acc += u32::from(protocol);
    acc += u32::from(length);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example from RFC 1071 §3: words 0x0001, 0xf203, 0xf4f5, 0xf6f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let c = checksum(&data);
        assert_eq!(c, !0xddf2);
    }

    #[test]
    fn known_ipv4_header_checksum() {
        // Example IPv4 header from Wikipedia's IPv4 article, checksum 0xb861.
        let mut hdr = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let c = checksum(&hdr);
        assert_eq!(c, 0xb861);
        hdr[10] = (c >> 8) as u8;
        hdr[11] = (c & 0xff) as u8;
        assert!(verify(&hdr));
    }

    #[test]
    fn odd_length_data_handled() {
        let data = [0xab, 0xcd, 0xef];
        let c = checksum(&data);
        // Manually: 0xabcd + 0xef00 = 0x19acd -> 0x9ace -> !0x9ace
        assert_eq!(c, !0x9ace);
    }

    #[test]
    fn verify_detects_corruption() {
        let mut hdr = [
            0x45, 0x00, 0x00, 0x54, 0x00, 0x00, 0x40, 0x00, 0x40, 0x01, 0x00, 0x00, 0x0a, 0x00,
            0x00, 0x01, 0x0a, 0x00, 0x00, 0x02,
        ];
        let c = checksum(&hdr);
        hdr[10] = (c >> 8) as u8;
        hdr[11] = (c & 0xff) as u8;
        assert!(verify(&hdr));
        hdr[15] ^= 0x01;
        assert!(!verify(&hdr));
    }

    #[test]
    fn empty_data_checksum() {
        assert_eq!(checksum(&[]), 0xffff);
        assert_eq!(checksum_with(&[], 0), 0xffff);
    }

    #[test]
    fn pseudo_header_contributes() {
        let ps = pseudo_header_sum([10, 0, 0, 1], [10, 0, 0, 2], 17, 8);
        let with = checksum_with(&[0u8; 8], ps);
        let without = checksum(&[0u8; 8]);
        assert_ne!(with, without);
    }
}

//! Ethernet II framing.

use crate::packet::RawWriter;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Length of an Ethernet II header in bytes.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for ARP.
pub const ETHERTYPE_ARP: u16 = 0x0806;
/// EtherType for IPv6.
pub const ETHERTYPE_IPV6: u16 = 0x86dd;
/// EtherType for 802.1Q VLAN tagging.
pub const ETHERTYPE_VLAN: u16 = 0x8100;

/// A 48-bit MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Build a locally-administered unicast address from a small index, used
    /// by tests and workload generation (`02:00:00:00:00:<n>` style).
    pub fn local(index: u8) -> MacAddr {
        MacAddr([0x02, 0, 0, 0, 0, index])
    }

    /// True if the multicast (group) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == MacAddr::BROADCAST
    }

    /// The address bytes.
    pub fn octets(&self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A parsed Ethernet II header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// EtherType of the payload.
    pub ethertype: u16,
}

impl EthernetHeader {
    /// Parse the header from the front of `data`. Returns `None` when the
    /// buffer is shorter than [`ETHERNET_HEADER_LEN`].
    pub fn parse(data: &[u8]) -> Option<EthernetHeader> {
        if data.len() < ETHERNET_HEADER_LEN {
            return None;
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        Some(EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: u16::from_be_bytes([data[12], data[13]]),
        })
    }

    /// Serialize the header into 14 bytes.
    pub fn to_bytes(&self) -> [u8; ETHERNET_HEADER_LEN] {
        let mut out = [0u8; ETHERNET_HEADER_LEN];
        out[0..6].copy_from_slice(&self.dst.0);
        out[6..12].copy_from_slice(&self.src.0);
        out[12..14].copy_from_slice(&self.ethertype.to_be_bytes());
        out
    }

    /// Write the header into a [`RawWriter`].
    pub fn write(&self, w: &mut RawWriter) {
        w.bytes(&self.to_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_serialize_round_trip() {
        let hdr = EthernetHeader {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: ETHERTYPE_IPV4,
        };
        let bytes = hdr.to_bytes();
        assert_eq!(bytes.len(), ETHERNET_HEADER_LEN);
        let parsed = EthernetHeader::parse(&bytes).unwrap();
        assert_eq!(parsed, hdr);
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(EthernetHeader::parse(&[0u8; 13]).is_none());
        assert!(EthernetHeader::parse(&[]).is_none());
    }

    #[test]
    fn mac_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::local(5).is_multicast());
        assert!(!MacAddr::local(5).is_broadcast());
        assert_eq!(MacAddr::local(5).octets()[5], 5);
        assert_eq!(MacAddr::ZERO.octets(), [0u8; 6]);
        assert_eq!(format!("{}", MacAddr::local(0xab)), "02:00:00:00:00:ab");
    }

    #[test]
    fn writer_appends_header() {
        let hdr = EthernetHeader {
            dst: MacAddr::BROADCAST,
            src: MacAddr::local(9),
            ethertype: ETHERTYPE_ARP,
        };
        let mut w = RawWriter::new();
        hdr.write(&mut w);
        let v = w.finish();
        assert_eq!(v.len(), 14);
        assert_eq!(&v[0..6], &[0xff; 6]);
        assert_eq!(u16::from_be_bytes([v[12], v[13]]), ETHERTYPE_ARP);
    }
}

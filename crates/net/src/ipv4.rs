//! IPv4 header parsing and construction, including options.
//!
//! The IP-options handling matters for the reproduction: the paper's hardest
//! element (`IPOptions`) loops over the variable-length options area, and the
//! verifier's loop decomposition is exercised on exactly this format.

use crate::checksum;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Minimum IPv4 header length (no options), in bytes.
pub const IPV4_MIN_HEADER_LEN: usize = 20;
/// Maximum IPv4 header length (IHL = 15), in bytes.
pub const IPV4_MAX_HEADER_LEN: usize = 60;

/// IP protocol number for ICMP.
pub const PROTO_ICMP: u8 = 1;
/// IP protocol number for TCP.
pub const PROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

/// IPv4 option kind: end of option list.
pub const IPOPT_EOL: u8 = 0;
/// IPv4 option kind: no-operation.
pub const IPOPT_NOP: u8 = 1;
/// IPv4 option kind: record route.
pub const IPOPT_RR: u8 = 7;
/// IPv4 option kind: timestamp.
pub const IPOPT_TS: u8 = 68;
/// IPv4 option kind: loose source route.
pub const IPOPT_LSRR: u8 = 131;
/// IPv4 option kind: strict source route.
pub const IPOPT_SSRR: u8 = 137;

/// A parsed IPv4 header (fixed part plus raw options bytes).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// Header length in 32-bit words (5..=15).
    pub ihl: u8,
    /// Differentiated services / TOS byte.
    pub dscp_ecn: u8,
    /// Total length of the IP datagram (header + payload) in bytes.
    pub total_length: u16,
    /// Identification field.
    pub identification: u16,
    /// Flags (3 bits) and fragment offset (13 bits).
    pub flags_fragment: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: u8,
    /// Header checksum as found on the wire.
    pub checksum: u16,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Raw options bytes (empty when `ihl == 5`).
    pub options: Vec<u8>,
}

/// Why parsing or validating an IPv4 header failed. The variants mirror the
/// checks Click's `CheckIPHeader` element performs, which is what our element
/// model implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ipv4Error {
    /// The buffer is shorter than the minimum header.
    Truncated,
    /// The version field is not 4.
    BadVersion,
    /// The IHL field is below 5.
    BadIhl,
    /// The buffer is shorter than the length the IHL claims.
    TruncatedOptions,
    /// The total-length field is smaller than the header length or larger
    /// than the buffer.
    BadTotalLength,
    /// The header checksum does not verify.
    BadChecksum,
}

impl fmt::Display for Ipv4Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ipv4Error::Truncated => "truncated IPv4 header",
            Ipv4Error::BadVersion => "IP version is not 4",
            Ipv4Error::BadIhl => "IHL below minimum",
            Ipv4Error::TruncatedOptions => "header length exceeds buffer",
            Ipv4Error::BadTotalLength => "bad total length",
            Ipv4Error::BadChecksum => "bad header checksum",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Ipv4Error {}

impl Ipv4Header {
    /// A well-formed default header: no options, TTL 64, UDP payload,
    /// addresses 10.0.0.1 → 10.0.0.2, total length = header only.
    pub fn template() -> Ipv4Header {
        Ipv4Header {
            ihl: 5,
            dscp_ecn: 0,
            total_length: IPV4_MIN_HEADER_LEN as u16,
            identification: 0,
            flags_fragment: 0x4000, // don't fragment
            ttl: 64,
            protocol: PROTO_UDP,
            checksum: 0,
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            options: Vec::new(),
        }
    }

    /// Header length in bytes (`ihl * 4`).
    pub fn header_len(&self) -> usize {
        self.ihl as usize * 4
    }

    /// Parse an IPv4 header from the front of `data`, without verifying the
    /// checksum. Returns the header and its length in bytes.
    pub fn parse(data: &[u8]) -> Result<Ipv4Header, Ipv4Error> {
        if data.len() < IPV4_MIN_HEADER_LEN {
            return Err(Ipv4Error::Truncated);
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(Ipv4Error::BadVersion);
        }
        let ihl = data[0] & 0x0f;
        if ihl < 5 {
            return Err(Ipv4Error::BadIhl);
        }
        let header_len = ihl as usize * 4;
        if data.len() < header_len {
            return Err(Ipv4Error::TruncatedOptions);
        }
        Ok(Ipv4Header {
            ihl,
            dscp_ecn: data[1],
            total_length: u16::from_be_bytes([data[2], data[3]]),
            identification: u16::from_be_bytes([data[4], data[5]]),
            flags_fragment: u16::from_be_bytes([data[6], data[7]]),
            ttl: data[8],
            protocol: data[9],
            checksum: u16::from_be_bytes([data[10], data[11]]),
            src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
            options: data[IPV4_MIN_HEADER_LEN..header_len].to_vec(),
        })
    }

    /// Parse and run the full `CheckIPHeader`-style validation: version, IHL,
    /// length consistency, and checksum.
    pub fn parse_checked(data: &[u8]) -> Result<Ipv4Header, Ipv4Error> {
        let hdr = Ipv4Header::parse(data)?;
        let hl = hdr.header_len();
        if (hdr.total_length as usize) < hl || (hdr.total_length as usize) > data.len() {
            return Err(Ipv4Error::BadTotalLength);
        }
        if !checksum::verify(&data[..hl]) {
            return Err(Ipv4Error::BadChecksum);
        }
        Ok(hdr)
    }

    /// Serialize the header (recomputing `ihl` from the options length) with
    /// the checksum field set to the correct value.
    pub fn to_bytes(&self) -> Vec<u8> {
        let opt_len = self.options.len();
        // Options are padded to a multiple of 4 bytes on serialisation.
        let padded = opt_len.div_ceil(4) * 4;
        let ihl = 5 + (padded / 4) as u8;
        let header_len = ihl as usize * 4;
        let mut out = vec![0u8; header_len];
        out[0] = 0x40 | ihl;
        out[1] = self.dscp_ecn;
        out[2..4].copy_from_slice(&self.total_length.to_be_bytes());
        out[4..6].copy_from_slice(&self.identification.to_be_bytes());
        out[6..8].copy_from_slice(&self.flags_fragment.to_be_bytes());
        out[8] = self.ttl;
        out[9] = self.protocol;
        // checksum bytes 10..12 stay zero while computing
        out[12..16].copy_from_slice(&self.src.octets());
        out[16..20].copy_from_slice(&self.dst.octets());
        out[IPV4_MIN_HEADER_LEN..IPV4_MIN_HEADER_LEN + opt_len].copy_from_slice(&self.options);
        let c = checksum::checksum(&out);
        out[10..12].copy_from_slice(&c.to_be_bytes());
        out
    }

    /// Recompute the checksum of a serialized header in place (bytes
    /// `0..ihl*4` of `data`). Returns `false` if the buffer is too short.
    pub fn rewrite_checksum(data: &mut [u8]) -> bool {
        if data.len() < IPV4_MIN_HEADER_LEN {
            return false;
        }
        let ihl = (data[0] & 0x0f) as usize * 4;
        if ihl < IPV4_MIN_HEADER_LEN || data.len() < ihl {
            return false;
        }
        data[10] = 0;
        data[11] = 0;
        let c = checksum::checksum(&data[..ihl]);
        data[10..12].copy_from_slice(&c.to_be_bytes());
        true
    }
}

/// One parsed IPv4 option.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ipv4Option {
    /// Option kind byte.
    pub kind: u8,
    /// Option data (excluding the kind and length bytes); empty for
    /// single-byte options.
    pub data: Vec<u8>,
}

/// Why walking the options area failed. These are exactly the malformed-
/// options cases the `IPOptions` element must reject rather than crash on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptionWalkError {
    /// A multi-byte option whose length byte is missing.
    MissingLength,
    /// A multi-byte option whose length is below 2.
    LengthTooSmall,
    /// A multi-byte option whose length runs past the end of the options
    /// area.
    LengthOverrun,
}

/// Walk the options area of an IPv4 header, returning the parsed options in
/// order. Stops at an end-of-list option.
pub fn walk_options(options: &[u8]) -> Result<Vec<Ipv4Option>, OptionWalkError> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < options.len() {
        let kind = options[i];
        if kind == IPOPT_EOL {
            break;
        }
        if kind == IPOPT_NOP {
            out.push(Ipv4Option {
                kind,
                data: Vec::new(),
            });
            i += 1;
            continue;
        }
        if i + 1 >= options.len() {
            return Err(OptionWalkError::MissingLength);
        }
        let len = options[i + 1] as usize;
        if len < 2 {
            return Err(OptionWalkError::LengthTooSmall);
        }
        if i + len > options.len() {
            return Err(OptionWalkError::LengthOverrun);
        }
        out.push(Ipv4Option {
            kind,
            data: options[i + 2..i + len].to_vec(),
        });
        i += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_round_trips_through_parse_checked() {
        let hdr = Ipv4Header::template();
        let bytes = hdr.to_bytes();
        assert_eq!(bytes.len(), IPV4_MIN_HEADER_LEN);
        let parsed = Ipv4Header::parse_checked(&bytes).unwrap();
        assert_eq!(parsed.src, hdr.src);
        assert_eq!(parsed.dst, hdr.dst);
        assert_eq!(parsed.ttl, 64);
        assert_eq!(parsed.header_len(), 20);
        assert!(parsed.options.is_empty());
    }

    #[test]
    fn options_are_padded_and_parsed() {
        let mut hdr = Ipv4Header::template();
        hdr.options = vec![IPOPT_NOP, IPOPT_NOP, IPOPT_RR, 7, 4, 0, 0];
        hdr.total_length = 28;
        let bytes = hdr.to_bytes();
        assert_eq!(bytes.len(), 28); // 20 + 7 padded to 8
        let parsed = Ipv4Header::parse(&bytes).unwrap();
        assert_eq!(parsed.ihl, 7);
        assert_eq!(parsed.options.len(), 8);
    }

    #[test]
    fn parse_rejects_malformed_headers() {
        assert_eq!(Ipv4Header::parse(&[0u8; 10]), Err(Ipv4Error::Truncated));
        let mut bytes = Ipv4Header::template().to_bytes();
        bytes[0] = 0x60 | 5; // version 6
        assert_eq!(Ipv4Header::parse(&bytes), Err(Ipv4Error::BadVersion));
        let mut bytes = Ipv4Header::template().to_bytes();
        bytes[0] = 0x40 | 3; // IHL 3
        assert_eq!(Ipv4Header::parse(&bytes), Err(Ipv4Error::BadIhl));
        let mut bytes = Ipv4Header::template().to_bytes();
        bytes[0] = 0x40 | 10; // claims 40-byte header, buffer has 20
        assert_eq!(Ipv4Header::parse(&bytes), Err(Ipv4Error::TruncatedOptions));
    }

    #[test]
    fn parse_checked_rejects_bad_lengths_and_checksum() {
        let mut hdr = Ipv4Header::template();
        hdr.total_length = 10; // smaller than header
        let bytes = hdr.to_bytes();
        assert_eq!(
            Ipv4Header::parse_checked(&bytes),
            Err(Ipv4Error::BadTotalLength)
        );

        let mut hdr = Ipv4Header::template();
        hdr.total_length = 100; // larger than buffer
        let bytes = hdr.to_bytes();
        assert_eq!(
            Ipv4Header::parse_checked(&bytes),
            Err(Ipv4Error::BadTotalLength)
        );

        let hdr = Ipv4Header::template();
        let mut bytes = hdr.to_bytes();
        bytes[8] = bytes[8].wrapping_add(1); // corrupt TTL without fixing checksum
        assert_eq!(
            Ipv4Header::parse_checked(&bytes),
            Err(Ipv4Error::BadChecksum)
        );
    }

    #[test]
    fn rewrite_checksum_fixes_corruption() {
        let hdr = Ipv4Header::template();
        let mut bytes = hdr.to_bytes();
        bytes[8] -= 1; // decrement TTL
        assert!(Ipv4Header::parse_checked(&bytes).is_err());
        assert!(Ipv4Header::rewrite_checksum(&mut bytes));
        assert!(Ipv4Header::parse_checked(&bytes).is_ok());
        assert!(!Ipv4Header::rewrite_checksum(&mut [0u8; 4]));
        let mut bad_ihl = bytes.clone();
        bad_ihl[0] = 0x40 | 15;
        assert!(!Ipv4Header::rewrite_checksum(&mut bad_ihl[..20]));
    }

    #[test]
    fn walk_options_handles_well_formed_sequences() {
        let opts = [IPOPT_NOP, IPOPT_RR, 7, 4, 0, 0, 0, IPOPT_EOL];
        let parsed = walk_options(&opts).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].kind, IPOPT_NOP);
        assert_eq!(parsed[1].kind, IPOPT_RR);
        assert_eq!(parsed[1].data.len(), 5);
        assert_eq!(walk_options(&[]).unwrap().len(), 0);
        assert_eq!(walk_options(&[IPOPT_EOL, 99, 99]).unwrap().len(), 0);
    }

    #[test]
    fn walk_options_rejects_malformed_sequences() {
        assert_eq!(
            walk_options(&[IPOPT_RR]),
            Err(OptionWalkError::MissingLength)
        );
        assert_eq!(
            walk_options(&[IPOPT_RR, 1]),
            Err(OptionWalkError::LengthTooSmall)
        );
        assert_eq!(
            walk_options(&[IPOPT_RR, 10, 0]),
            Err(OptionWalkError::LengthOverrun)
        );
    }

    #[test]
    fn error_display() {
        for e in [
            Ipv4Error::Truncated,
            Ipv4Error::BadVersion,
            Ipv4Error::BadIhl,
            Ipv4Error::TruncatedOptions,
            Ipv4Error::BadTotalLength,
            Ipv4Error::BadChecksum,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

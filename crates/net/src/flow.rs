//! Flow identification: the classic 5-tuple used by NetFlow and NAT elements.

use crate::ethernet::{EthernetHeader, ETHERNET_HEADER_LEN, ETHERTYPE_IPV4};
use crate::ipv4::{Ipv4Header, PROTO_TCP, PROTO_UDP};
use crate::packet::Packet;
use crate::transport::{TcpHeader, UdpHeader};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// A unidirectional flow key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port (0 for protocols without ports).
    pub src_port: u16,
    /// Destination transport port (0 for protocols without ports).
    pub dst_port: u16,
    /// IP protocol number.
    pub protocol: u8,
}

impl FiveTuple {
    /// The reverse direction of this flow (addresses and ports swapped).
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// A compact 64-bit hash key suitable for array-backed flow tables. This
    /// is the same folding the NetFlow/NAT element models use, so concrete
    /// and verified behaviour match.
    pub fn fold_u64(&self) -> u64 {
        let s = u32::from(self.src_ip) as u64;
        let d = u32::from(self.dst_ip) as u64;
        let p =
            ((self.src_port as u64) << 32) | ((self.dst_port as u64) << 16) | self.protocol as u64;
        s.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ d.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
            ^ p.wrapping_mul(0x1656_67b1_9e37_79f9)
    }
}

impl fmt::Debug for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} proto {}",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.protocol
        )
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Extract the 5-tuple from an Ethernet + IPv4 packet. Returns `None` if the
/// packet is not IPv4 or is too short to contain the needed headers.
pub fn extract_five_tuple(packet: &Packet) -> Option<FiveTuple> {
    let eth = EthernetHeader::parse(packet.bytes())?;
    if eth.ethertype != ETHERTYPE_IPV4 {
        return None;
    }
    let ip_bytes = &packet.bytes()[ETHERNET_HEADER_LEN..];
    let ip = Ipv4Header::parse(ip_bytes).ok()?;
    let l4 = &ip_bytes[ip.header_len()..];
    let (src_port, dst_port) = match ip.protocol {
        PROTO_UDP => {
            let u = UdpHeader::parse(l4)?;
            (u.src_port, u.dst_port)
        }
        PROTO_TCP => {
            let t = TcpHeader::parse(l4)?;
            (t.src_port, t.dst_port)
        }
        _ => (0, 0),
    };
    Some(FiveTuple {
        src_ip: ip.src,
        dst_ip: ip.dst,
        src_port,
        dst_port,
        protocol: ip.protocol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pktbuild::PacketBuilder;

    #[test]
    fn reversed_swaps_endpoints() {
        let t = FiveTuple {
            src_ip: Ipv4Addr::new(1, 2, 3, 4),
            dst_ip: Ipv4Addr::new(5, 6, 7, 8),
            src_port: 100,
            dst_port: 200,
            protocol: PROTO_TCP,
        };
        let r = t.reversed();
        assert_eq!(r.src_ip, t.dst_ip);
        assert_eq!(r.dst_port, t.src_port);
        assert_eq!(r.reversed(), t);
    }

    #[test]
    fn fold_is_deterministic_and_direction_sensitive() {
        let t = FiveTuple {
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 5000,
            dst_port: 80,
            protocol: PROTO_UDP,
        };
        assert_eq!(t.fold_u64(), t.fold_u64());
        assert_ne!(t.fold_u64(), t.reversed().fold_u64());
    }

    #[test]
    fn extract_from_udp_packet() {
        let pkt = PacketBuilder::udp(
            Ipv4Addr::new(192, 168, 1, 1),
            Ipv4Addr::new(192, 168, 1, 2),
            1111,
            2222,
            b"hello",
        )
        .build();
        let t = extract_five_tuple(&pkt).unwrap();
        assert_eq!(t.src_ip, Ipv4Addr::new(192, 168, 1, 1));
        assert_eq!(t.dst_ip, Ipv4Addr::new(192, 168, 1, 2));
        assert_eq!(t.src_port, 1111);
        assert_eq!(t.dst_port, 2222);
        assert_eq!(t.protocol, PROTO_UDP);
    }

    #[test]
    fn extract_from_tcp_and_icmp_packets() {
        let pkt = PacketBuilder::tcp_syn(
            Ipv4Addr::new(10, 1, 1, 1),
            Ipv4Addr::new(10, 1, 1, 2),
            40000,
            443,
        )
        .build();
        let t = extract_five_tuple(&pkt).unwrap();
        assert_eq!(t.protocol, PROTO_TCP);
        assert_eq!(t.dst_port, 443);

        let pkt = PacketBuilder::icmp_echo(Ipv4Addr::new(10, 1, 1, 1), Ipv4Addr::new(10, 1, 1, 2))
            .build();
        let t = extract_five_tuple(&pkt).unwrap();
        assert_eq!(t.src_port, 0);
        assert_eq!(t.dst_port, 0);
    }

    #[test]
    fn extract_rejects_non_ip_and_short_packets() {
        let pkt = Packet::from_bytes(vec![0u8; 10]);
        assert!(extract_five_tuple(&pkt).is_none());
        let mut arp = PacketBuilder::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            b"",
        )
        .build();
        // Rewrite ethertype to ARP.
        arp.set_u16(12, crate::ethernet::ETHERTYPE_ARP);
        assert!(extract_five_tuple(&arp).is_none());
        // IPv4 packet whose transport header is truncated.
        let full = PacketBuilder::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            b"",
        )
        .build();
        let mut truncated = full.clone();
        truncated.truncate(ETHERNET_HEADER_LEN + 20 + 4);
        assert!(extract_five_tuple(&truncated).is_none());
    }

    #[test]
    fn display_mentions_endpoints() {
        let t = FiveTuple {
            src_ip: Ipv4Addr::new(1, 2, 3, 4),
            dst_ip: Ipv4Addr::new(5, 6, 7, 8),
            src_port: 9,
            dst_port: 10,
            protocol: 6,
        };
        let s = t.to_string();
        assert!(s.contains("1.2.3.4:9"));
        assert!(s.contains("5.6.7.8:10"));
    }
}

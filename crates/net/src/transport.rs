//! UDP, TCP, and ICMP header codecs.

use crate::checksum;
use serde::{Deserialize, Serialize};

/// UDP header length in bytes.
pub const UDP_HEADER_LEN: usize = 8;
/// Minimum TCP header length in bytes (no options).
pub const TCP_MIN_HEADER_LEN: usize = 20;
/// ICMP echo header length in bytes.
pub const ICMP_HEADER_LEN: usize = 8;

/// A parsed UDP header.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header plus payload in bytes.
    pub length: u16,
    /// Checksum over pseudo-header, header, and payload (0 = not computed).
    pub checksum: u16,
}

impl UdpHeader {
    /// Parse from the front of `data`.
    pub fn parse(data: &[u8]) -> Option<UdpHeader> {
        if data.len() < UDP_HEADER_LEN {
            return None;
        }
        Some(UdpHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            length: u16::from_be_bytes([data[4], data[5]]),
            checksum: u16::from_be_bytes([data[6], data[7]]),
        })
    }

    /// Serialize to 8 bytes.
    pub fn to_bytes(&self) -> [u8; UDP_HEADER_LEN] {
        let mut out = [0u8; UDP_HEADER_LEN];
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..6].copy_from_slice(&self.length.to_be_bytes());
        out[6..8].copy_from_slice(&self.checksum.to_be_bytes());
        out
    }

    /// Compute the UDP checksum for this header plus `payload`, given the
    /// enclosing IPv4 source and destination addresses.
    pub fn compute_checksum(&self, src: [u8; 4], dst: [u8; 4], payload: &[u8]) -> u16 {
        let mut hdr = *self;
        hdr.checksum = 0;
        let pseudo = checksum::pseudo_header_sum(src, dst, crate::ipv4::PROTO_UDP, self.length);
        let mut buf = hdr.to_bytes().to_vec();
        buf.extend_from_slice(payload);
        let c = checksum::checksum_with(&buf, pseudo);
        // Per RFC 768 a computed checksum of zero is transmitted as all ones.
        if c == 0 {
            0xffff
        } else {
            c
        }
    }
}

/// A parsed TCP header (fixed part only; options are kept as raw bytes).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Data offset in 32-bit words (5..=15).
    pub data_offset: u8,
    /// Flag bits (FIN, SYN, RST, PSH, ACK, URG, ECE, CWR).
    pub flags: u8,
    /// Receive window.
    pub window: u16,
    /// Checksum.
    pub checksum: u16,
    /// Urgent pointer.
    pub urgent: u16,
    /// Raw options bytes.
    pub options: Vec<u8>,
}

/// TCP flag bit: FIN.
pub const TCP_FIN: u8 = 0x01;
/// TCP flag bit: SYN.
pub const TCP_SYN: u8 = 0x02;
/// TCP flag bit: RST.
pub const TCP_RST: u8 = 0x04;
/// TCP flag bit: ACK.
pub const TCP_ACK: u8 = 0x10;

impl TcpHeader {
    /// Parse from the front of `data`.
    pub fn parse(data: &[u8]) -> Option<TcpHeader> {
        if data.len() < TCP_MIN_HEADER_LEN {
            return None;
        }
        let data_offset = data[12] >> 4;
        if data_offset < 5 {
            return None;
        }
        let hlen = data_offset as usize * 4;
        if data.len() < hlen {
            return None;
        }
        Some(TcpHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            data_offset,
            flags: data[13],
            window: u16::from_be_bytes([data[14], data[15]]),
            checksum: u16::from_be_bytes([data[16], data[17]]),
            urgent: u16::from_be_bytes([data[18], data[19]]),
            options: data[TCP_MIN_HEADER_LEN..hlen].to_vec(),
        })
    }

    /// Serialize the header, padding options to a multiple of 4 bytes and
    /// recomputing the data offset accordingly.
    pub fn to_bytes(&self) -> Vec<u8> {
        let padded = self.options.len().div_ceil(4) * 4;
        let data_offset = 5 + (padded / 4) as u8;
        let hlen = data_offset as usize * 4;
        let mut out = vec![0u8; hlen];
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..8].copy_from_slice(&self.seq.to_be_bytes());
        out[8..12].copy_from_slice(&self.ack.to_be_bytes());
        out[12] = data_offset << 4;
        out[13] = self.flags;
        out[14..16].copy_from_slice(&self.window.to_be_bytes());
        out[16..18].copy_from_slice(&self.checksum.to_be_bytes());
        out[18..20].copy_from_slice(&self.urgent.to_be_bytes());
        out[TCP_MIN_HEADER_LEN..TCP_MIN_HEADER_LEN + self.options.len()]
            .copy_from_slice(&self.options);
        out
    }

    /// A SYN packet template with sensible defaults.
    pub fn syn(src_port: u16, dst_port: u16) -> TcpHeader {
        TcpHeader {
            src_port,
            dst_port,
            seq: 1,
            ack: 0,
            data_offset: 5,
            flags: TCP_SYN,
            window: 65535,
            checksum: 0,
            urgent: 0,
            options: Vec::new(),
        }
    }
}

/// ICMP message type: echo reply.
pub const ICMP_ECHO_REPLY: u8 = 0;
/// ICMP message type: echo request.
pub const ICMP_ECHO_REQUEST: u8 = 8;
/// ICMP message type: destination unreachable.
pub const ICMP_DEST_UNREACHABLE: u8 = 3;
/// ICMP message type: time exceeded.
pub const ICMP_TIME_EXCEEDED: u8 = 11;

/// A parsed ICMP echo-style header.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IcmpHeader {
    /// Message type.
    pub icmp_type: u8,
    /// Message code.
    pub code: u8,
    /// Checksum over the whole ICMP message.
    pub checksum: u16,
    /// Identifier (echo) or unused.
    pub identifier: u16,
    /// Sequence number (echo) or unused.
    pub sequence: u16,
}

impl IcmpHeader {
    /// Parse from the front of `data`.
    pub fn parse(data: &[u8]) -> Option<IcmpHeader> {
        if data.len() < ICMP_HEADER_LEN {
            return None;
        }
        Some(IcmpHeader {
            icmp_type: data[0],
            code: data[1],
            checksum: u16::from_be_bytes([data[2], data[3]]),
            identifier: u16::from_be_bytes([data[4], data[5]]),
            sequence: u16::from_be_bytes([data[6], data[7]]),
        })
    }

    /// Serialize to 8 bytes.
    pub fn to_bytes(&self) -> [u8; ICMP_HEADER_LEN] {
        let mut out = [0u8; ICMP_HEADER_LEN];
        out[0] = self.icmp_type;
        out[1] = self.code;
        out[2..4].copy_from_slice(&self.checksum.to_be_bytes());
        out[4..6].copy_from_slice(&self.identifier.to_be_bytes());
        out[6..8].copy_from_slice(&self.sequence.to_be_bytes());
        out
    }

    /// Compute the ICMP checksum for this header plus `payload`.
    pub fn compute_checksum(&self, payload: &[u8]) -> u16 {
        let mut hdr = *self;
        hdr.checksum = 0;
        let mut buf = hdr.to_bytes().to_vec();
        buf.extend_from_slice(payload);
        checksum::checksum(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_round_trip_and_checksum() {
        let hdr = UdpHeader {
            src_port: 1234,
            dst_port: 53,
            length: 12,
            checksum: 0,
        };
        let bytes = hdr.to_bytes();
        assert_eq!(UdpHeader::parse(&bytes).unwrap(), hdr);
        assert!(UdpHeader::parse(&bytes[..7]).is_none());

        let payload = [1, 2, 3, 4];
        let c = hdr.compute_checksum([10, 0, 0, 1], [10, 0, 0, 2], &payload);
        assert_ne!(c, 0);
        // Filling in the checksum makes the whole thing verify against the
        // pseudo-header.
        let mut full = hdr;
        full.checksum = c;
        let pseudo =
            checksum::pseudo_header_sum([10, 0, 0, 1], [10, 0, 0, 2], crate::ipv4::PROTO_UDP, 12);
        let mut buf = full.to_bytes().to_vec();
        buf.extend_from_slice(&payload);
        assert_eq!(checksum::checksum_with(&buf, pseudo), 0);
    }

    #[test]
    fn tcp_round_trip_with_options() {
        let mut hdr = TcpHeader::syn(4000, 80);
        hdr.options = vec![2, 4, 0x05, 0xb4]; // MSS option
        let bytes = hdr.to_bytes();
        assert_eq!(bytes.len(), 24);
        let parsed = TcpHeader::parse(&bytes).unwrap();
        assert_eq!(parsed.src_port, 4000);
        assert_eq!(parsed.dst_port, 80);
        assert_eq!(parsed.flags, TCP_SYN);
        assert_eq!(parsed.data_offset, 6);
        assert_eq!(parsed.options, hdr.options);
    }

    #[test]
    fn tcp_rejects_short_or_bad_offset() {
        assert!(TcpHeader::parse(&[0u8; 10]).is_none());
        let mut bytes = TcpHeader::syn(1, 2).to_bytes();
        bytes[12] = 3 << 4; // bad offset
        assert!(TcpHeader::parse(&bytes).is_none());
        let mut bytes = TcpHeader::syn(1, 2).to_bytes();
        bytes[12] = 10 << 4; // claims options beyond buffer
        assert!(TcpHeader::parse(&bytes).is_none());
    }

    #[test]
    fn icmp_round_trip_and_checksum() {
        let hdr = IcmpHeader {
            icmp_type: ICMP_ECHO_REQUEST,
            code: 0,
            checksum: 0,
            identifier: 77,
            sequence: 3,
        };
        let bytes = hdr.to_bytes();
        assert_eq!(IcmpHeader::parse(&bytes).unwrap(), hdr);
        assert!(IcmpHeader::parse(&bytes[..4]).is_none());
        let payload = b"abcdefgh";
        let c = hdr.compute_checksum(payload);
        let mut filled = hdr;
        filled.checksum = c;
        let mut buf = filled.to_bytes().to_vec();
        buf.extend_from_slice(payload);
        assert!(checksum::verify(&buf));
    }

    #[test]
    fn flag_constants_are_distinct_bits() {
        let flags = [TCP_FIN, TCP_SYN, TCP_RST, TCP_ACK];
        for (i, a) in flags.iter().enumerate() {
            for (j, b) in flags.iter().enumerate() {
                if i != j {
                    assert_eq!(a & b, 0);
                }
            }
        }
    }
}

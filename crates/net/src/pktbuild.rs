//! High-level packet construction for tests, examples, and workloads.

use crate::ethernet::{EthernetHeader, MacAddr, ETHERTYPE_IPV4};
use crate::ipv4::{Ipv4Header, PROTO_ICMP, PROTO_TCP, PROTO_UDP};
use crate::packet::{Packet, PacketMeta};
use crate::transport::{IcmpHeader, TcpHeader, UdpHeader, ICMP_ECHO_REQUEST};
use std::net::Ipv4Addr;

/// Builder that assembles a complete Ethernet/IPv4/transport packet with
/// correct lengths and checksums.
#[derive(Clone, Debug)]
pub struct PacketBuilder {
    eth_src: MacAddr,
    eth_dst: MacAddr,
    ip: Ipv4Header,
    l4: L4,
    payload: Vec<u8>,
    meta: PacketMeta,
}

#[derive(Clone, Debug)]
enum L4 {
    Udp { src_port: u16, dst_port: u16 },
    Tcp(TcpHeader),
    Icmp(IcmpHeader),
    None,
}

impl PacketBuilder {
    /// Start a UDP packet.
    pub fn udp(src: Ipv4Addr, dst: Ipv4Addr, src_port: u16, dst_port: u16, payload: &[u8]) -> Self {
        let mut ip = Ipv4Header::template();
        ip.src = src;
        ip.dst = dst;
        ip.protocol = PROTO_UDP;
        PacketBuilder {
            eth_src: MacAddr::local(1),
            eth_dst: MacAddr::local(2),
            ip,
            l4: L4::Udp { src_port, dst_port },
            payload: payload.to_vec(),
            meta: PacketMeta::default(),
        }
    }

    /// Start a TCP SYN packet.
    pub fn tcp_syn(src: Ipv4Addr, dst: Ipv4Addr, src_port: u16, dst_port: u16) -> Self {
        let mut ip = Ipv4Header::template();
        ip.src = src;
        ip.dst = dst;
        ip.protocol = PROTO_TCP;
        PacketBuilder {
            eth_src: MacAddr::local(1),
            eth_dst: MacAddr::local(2),
            ip,
            l4: L4::Tcp(TcpHeader::syn(src_port, dst_port)),
            payload: Vec::new(),
            meta: PacketMeta::default(),
        }
    }

    /// Start an ICMP echo-request packet.
    pub fn icmp_echo(src: Ipv4Addr, dst: Ipv4Addr) -> Self {
        let mut ip = Ipv4Header::template();
        ip.src = src;
        ip.dst = dst;
        ip.protocol = PROTO_ICMP;
        PacketBuilder {
            eth_src: MacAddr::local(1),
            eth_dst: MacAddr::local(2),
            ip,
            l4: L4::Icmp(IcmpHeader {
                icmp_type: ICMP_ECHO_REQUEST,
                code: 0,
                checksum: 0,
                identifier: 1,
                sequence: 1,
            }),
            payload: Vec::new(),
            meta: PacketMeta::default(),
        }
    }

    /// Start a bare IPv4 packet with the given protocol number and no
    /// transport header.
    pub fn ipv4_raw(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, payload: &[u8]) -> Self {
        let mut ip = Ipv4Header::template();
        ip.src = src;
        ip.dst = dst;
        ip.protocol = protocol;
        PacketBuilder {
            eth_src: MacAddr::local(1),
            eth_dst: MacAddr::local(2),
            ip,
            l4: L4::None,
            payload: payload.to_vec(),
            meta: PacketMeta::default(),
        }
    }

    /// Set the Ethernet addresses.
    pub fn eth(mut self, src: MacAddr, dst: MacAddr) -> Self {
        self.eth_src = src;
        self.eth_dst = dst;
        self
    }

    /// Set the IPv4 TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ip.ttl = ttl;
        self
    }

    /// Attach raw IPv4 options bytes (will be padded to a 4-byte multiple).
    pub fn ip_options(mut self, options: &[u8]) -> Self {
        self.ip.options = options.to_vec();
        self
    }

    /// Set the payload bytes.
    pub fn payload(mut self, payload: &[u8]) -> Self {
        self.payload = payload.to_vec();
        self
    }

    /// Set the packet metadata.
    pub fn meta(mut self, meta: PacketMeta) -> Self {
        self.meta = meta;
        self
    }

    /// Pad the final packet with zero bytes up to `len` (if shorter).
    pub fn pad_to(self, len: usize) -> PaddedBuilder {
        PaddedBuilder { inner: self, len }
    }

    /// Assemble the packet: serialize headers, fix lengths and checksums.
    pub fn build(self) -> Packet {
        let meta = self.meta.clone();
        let bytes = self.build_bytes();
        Packet::with_meta(bytes, meta)
    }

    fn build_bytes(mut self) -> Vec<u8> {
        // Layer 4 first so we know its length.
        let ip_src = self.ip.src.octets();
        let ip_dst = self.ip.dst.octets();
        let l4_bytes: Vec<u8> = match &self.l4 {
            L4::Udp { src_port, dst_port } => {
                let length = (crate::transport::UDP_HEADER_LEN + self.payload.len()) as u16;
                let mut udp = UdpHeader {
                    src_port: *src_port,
                    dst_port: *dst_port,
                    length,
                    checksum: 0,
                };
                udp.checksum = udp.compute_checksum(ip_src, ip_dst, &self.payload);
                let mut v = udp.to_bytes().to_vec();
                v.extend_from_slice(&self.payload);
                v
            }
            L4::Tcp(tcp) => {
                let mut v = tcp.to_bytes();
                v.extend_from_slice(&self.payload);
                v
            }
            L4::Icmp(icmp) => {
                let mut h = *icmp;
                h.checksum = h.compute_checksum(&self.payload);
                let mut v = h.to_bytes().to_vec();
                v.extend_from_slice(&self.payload);
                v
            }
            L4::None => self.payload.clone(),
        };

        // IPv4 header with correct total length (header is serialized with
        // padded options, so compute that length first).
        let opt_padded = self.ip.options.len().div_ceil(4) * 4;
        let ip_header_len = 20 + opt_padded;
        self.ip.total_length = (ip_header_len + l4_bytes.len()) as u16;
        let ip_bytes = self.ip.to_bytes();

        let eth = EthernetHeader {
            dst: self.eth_dst,
            src: self.eth_src,
            ethertype: ETHERTYPE_IPV4,
        };

        let mut out = Vec::with_capacity(14 + ip_bytes.len() + l4_bytes.len());
        out.extend_from_slice(&eth.to_bytes());
        out.extend_from_slice(&ip_bytes);
        out.extend_from_slice(&l4_bytes);
        out
    }
}

/// A [`PacketBuilder`] with a minimum-length pad applied at build time.
#[derive(Clone, Debug)]
pub struct PaddedBuilder {
    inner: PacketBuilder,
    len: usize,
}

impl PaddedBuilder {
    /// Assemble the packet and pad to the requested length.
    pub fn build(self) -> Packet {
        let meta = self.inner.meta.clone();
        let mut bytes = self.inner.build_bytes();
        if bytes.len() < self.len {
            bytes.resize(self.len, 0);
        }
        Packet::with_meta(bytes, meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::ETHERNET_HEADER_LEN;
    use crate::ipv4::Ipv4Header;

    #[test]
    fn udp_packet_has_valid_ip_header_and_lengths() {
        let pkt = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 9),
            5000,
            53,
            b"query",
        )
        .build();
        let ip_bytes = &pkt.bytes()[ETHERNET_HEADER_LEN..];
        let hdr = Ipv4Header::parse_checked(ip_bytes).unwrap();
        assert_eq!(hdr.protocol, PROTO_UDP);
        assert_eq!(hdr.total_length as usize, ip_bytes.len());
        assert_eq!(pkt.len(), ETHERNET_HEADER_LEN + 20 + 8 + 5);
    }

    #[test]
    fn options_grow_the_header() {
        let pkt = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 9),
            5000,
            53,
            b"",
        )
        .ip_options(&[1, 1, 1, 1]) // four NOPs
        .build();
        let ip_bytes = &pkt.bytes()[ETHERNET_HEADER_LEN..];
        let hdr = Ipv4Header::parse_checked(ip_bytes).unwrap();
        assert_eq!(hdr.ihl, 6);
        assert_eq!(hdr.header_len(), 24);
    }

    #[test]
    fn ttl_eth_payload_and_meta_setters() {
        let pkt =
            PacketBuilder::tcp_syn(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 1, 2)
                .ttl(3)
                .eth(MacAddr::local(7), MacAddr::local(8))
                .payload(b"xyz")
                .meta(PacketMeta {
                    input_port: 2,
                    paint: 1,
                    sequence: 5,
                })
                .build();
        assert_eq!(pkt.meta().sequence, 5);
        assert_eq!(pkt.bytes()[6..12], MacAddr::local(7).octets());
        let ip = Ipv4Header::parse_checked(&pkt.bytes()[ETHERNET_HEADER_LEN..]).unwrap();
        assert_eq!(ip.ttl, 3);
        assert_eq!(ip.protocol, PROTO_TCP);
    }

    #[test]
    fn icmp_and_raw_builders() {
        let pkt = PacketBuilder::icmp_echo(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .payload(b"ping")
            .build();
        let ip = Ipv4Header::parse_checked(&pkt.bytes()[ETHERNET_HEADER_LEN..]).unwrap();
        assert_eq!(ip.protocol, PROTO_ICMP);

        let pkt = PacketBuilder::ipv4_raw(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            89, // OSPF
            b"lsa",
        )
        .build();
        let ip = Ipv4Header::parse_checked(&pkt.bytes()[ETHERNET_HEADER_LEN..]).unwrap();
        assert_eq!(ip.protocol, 89);
        assert_eq!(ip.total_length as usize, 20 + 3);
    }

    #[test]
    fn pad_to_extends_short_packets() {
        let pkt = PacketBuilder::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            b"",
        )
        .pad_to(64)
        .build();
        assert_eq!(pkt.len(), 64);
        let pkt2 = PacketBuilder::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            &[0u8; 100],
        )
        .pad_to(64)
        .build();
        assert!(pkt2.len() > 64);
    }
}

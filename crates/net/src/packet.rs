//! Packet buffers and per-packet metadata.
//!
//! A [`Packet`] is the unit of "packet state" in the paper's state taxonomy:
//! it is owned by exactly one element at a time and handed over by value when
//! pushed to the next element. The buffer holds the raw wire bytes starting at
//! the Ethernet header; metadata carries the annotations Click elements
//! traditionally stash alongside a packet (input port, paint colour, etc.).

use bytes::{BufMut, BytesMut};
use std::fmt;

/// Per-packet metadata carried alongside the wire bytes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PacketMeta {
    /// The pipeline input port (or device index) the packet arrived on.
    pub input_port: u16,
    /// A small colour value set by `Paint`-style elements and matched by
    /// classifiers; mirrors Click's paint annotation.
    pub paint: u8,
    /// Monotonic sequence number assigned by the generator, used by tests and
    /// benches to track packets through the pipeline.
    pub sequence: u64,
}

/// A packet: owned wire bytes plus metadata.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Packet {
    data: Vec<u8>,
    meta: PacketMeta,
}

impl Packet {
    /// Create a packet from raw wire bytes.
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Packet {
            data,
            meta: PacketMeta::default(),
        }
    }

    /// Create a packet from raw bytes and explicit metadata.
    pub fn with_meta(data: Vec<u8>, meta: PacketMeta) -> Self {
        Packet { data, meta }
    }

    /// Create an all-zero packet of the given length.
    pub fn zeroed(len: usize) -> Self {
        Packet::from_bytes(vec![0u8; len])
    }

    /// Length of the wire data in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the packet has no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The wire bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the wire bytes.
    pub fn bytes_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }

    /// Consume the packet and return its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }

    /// The metadata.
    pub fn meta(&self) -> &PacketMeta {
        &self.meta
    }

    /// Mutable access to the metadata.
    pub fn meta_mut(&mut self) -> &mut PacketMeta {
        &mut self.meta
    }

    /// Read a single byte, if in bounds.
    pub fn get_u8(&self, offset: usize) -> Option<u8> {
        self.data.get(offset).copied()
    }

    /// Read a big-endian 16-bit value, if in bounds.
    pub fn get_u16(&self, offset: usize) -> Option<u16> {
        let b = self.data.get(offset..offset + 2)?;
        Some(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Read a big-endian 32-bit value, if in bounds.
    pub fn get_u32(&self, offset: usize) -> Option<u32> {
        let b = self.data.get(offset..offset + 4)?;
        Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Write a single byte. Returns `false` if out of bounds.
    pub fn set_u8(&mut self, offset: usize, value: u8) -> bool {
        if let Some(b) = self.data.get_mut(offset) {
            *b = value;
            true
        } else {
            false
        }
    }

    /// Write a big-endian 16-bit value. Returns `false` if out of bounds.
    pub fn set_u16(&mut self, offset: usize, value: u16) -> bool {
        if let Some(b) = self.data.get_mut(offset..offset + 2) {
            b.copy_from_slice(&value.to_be_bytes());
            true
        } else {
            false
        }
    }

    /// Write a big-endian 32-bit value. Returns `false` if out of bounds.
    pub fn set_u32(&mut self, offset: usize, value: u32) -> bool {
        if let Some(b) = self.data.get_mut(offset..offset + 4) {
            b.copy_from_slice(&value.to_be_bytes());
            true
        } else {
            false
        }
    }

    /// Remove `n` bytes from the front of the packet (Click's `Strip`).
    /// Returns `false` (and leaves the packet unchanged) if the packet is
    /// shorter than `n`.
    pub fn strip_front(&mut self, n: usize) -> bool {
        if self.data.len() < n {
            return false;
        }
        self.data.drain(0..n);
        true
    }

    /// Prepend `bytes` to the front of the packet (Click's `Unstrip` /
    /// encapsulation).
    pub fn push_front(&mut self, bytes: &[u8]) {
        let mut new = Vec::with_capacity(bytes.len() + self.data.len());
        new.extend_from_slice(bytes);
        new.extend_from_slice(&self.data);
        self.data = new;
    }

    /// Truncate the packet to `len` bytes if it is longer.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Packet(len={}, port={}, paint={}, seq={})",
            self.data.len(),
            self.meta.input_port,
            self.meta.paint,
            self.meta.sequence
        )
    }
}

/// Incremental builder for raw packet bytes. Higher-level header writers live
/// in the protocol modules; this type just manages the growing byte buffer.
#[derive(Debug, Default)]
pub struct RawWriter {
    buf: BytesMut,
}

impl RawWriter {
    /// An empty writer.
    pub fn new() -> Self {
        RawWriter {
            buf: BytesMut::with_capacity(128),
        }
    }

    /// Append a byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Append a big-endian 16-bit value.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.put_u16(v);
        self
    }

    /// Append a big-endian 32-bit value.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32(v);
        self
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_slice(v);
        self
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and return the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        let mut p = Packet::zeroed(8);
        assert_eq!(p.len(), 8);
        assert!(!p.is_empty());
        assert!(p.set_u8(0, 0xab));
        assert!(p.set_u16(2, 0x1234));
        assert!(p.set_u32(4, 0xdeadbeef));
        assert_eq!(p.get_u8(0), Some(0xab));
        assert_eq!(p.get_u16(2), Some(0x1234));
        assert_eq!(p.get_u32(4), Some(0xdeadbeef));
        // Out of bounds accesses return None/false, never panic.
        assert_eq!(p.get_u32(6), None);
        assert_eq!(p.get_u16(7), None);
        assert_eq!(p.get_u8(8), None);
        assert!(!p.set_u32(6, 0));
        assert!(!p.set_u16(7, 0));
        assert!(!p.set_u8(8, 0));
    }

    #[test]
    fn strip_and_unstrip() {
        let mut p = Packet::from_bytes(vec![1, 2, 3, 4, 5]);
        assert!(p.strip_front(2));
        assert_eq!(p.bytes(), &[3, 4, 5]);
        p.push_front(&[9, 8]);
        assert_eq!(p.bytes(), &[9, 8, 3, 4, 5]);
        assert!(!p.strip_front(100));
        assert_eq!(p.len(), 5);
        p.truncate(2);
        assert_eq!(p.bytes(), &[9, 8]);
        p.truncate(10);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn metadata_and_debug() {
        let mut p = Packet::with_meta(
            vec![0; 4],
            PacketMeta {
                input_port: 3,
                paint: 7,
                sequence: 42,
            },
        );
        assert_eq!(p.meta().paint, 7);
        p.meta_mut().paint = 9;
        assert_eq!(p.meta().paint, 9);
        let s = format!("{:?}", p);
        assert!(s.contains("len=4"));
        assert!(s.contains("seq=42"));
        assert_eq!(p.clone().into_bytes(), vec![0; 4]);
    }

    #[test]
    fn raw_writer_builds_bytes() {
        let mut w = RawWriter::new();
        assert!(w.is_empty());
        w.u8(1).u16(0x0203).u32(0x04050607).bytes(&[8, 9]);
        assert_eq!(w.len(), 9);
        assert_eq!(w.finish(), vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn bytes_mut_allows_in_place_edits() {
        let mut p = Packet::from_bytes(vec![0, 1, 2]);
        p.bytes_mut()[1] = 0xff;
        assert_eq!(p.bytes(), &[0, 0xff, 2]);
    }
}

//! Recursive-descent LTL parser with byte-span error reporting.
//!
//! Grammar (loosest binding first):
//!
//! ```text
//! implies := or ('->' implies)?
//! or      := and ('|' and)*
//! and     := until ('&' until)*
//! until   := unary (('U' | 'R') until)?
//! unary   := ('!' | 'X' | 'F' | 'G') unary | primary
//! primary := 'true' | 'false' | 'forwarded' | 'dropped' | 'crashed'
//!          | 'at' '(' ident ')' | 'dst' '(' n '.' n '.' n '.' n ')'
//!          | '(' implies ')'
//! ```

use crate::ast::{Atom, Ltl};
use std::fmt;

/// A parse failure: what went wrong and the byte range of the offending
/// input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte span `[start, end)` of the offending token (empty at EOF).
    pub span: (usize, usize),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}..{}: {}",
            self.span.0, self.span.1, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>, span: (usize, usize)) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
        span,
    })
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum TokKind {
    Ident(String),
    Number(u64),
    LParen,
    RParen,
    Bang,
    Amp,
    Pipe,
    Arrow,
    Dot,
}

#[derive(Clone, Debug)]
struct Tok {
    kind: TokKind,
    span: (usize, usize),
}

fn lex(text: &str) -> Result<Vec<Tok>, ParseError> {
    let bytes = text.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'(' => {
                toks.push(Tok {
                    kind: TokKind::LParen,
                    span: (start, i + 1),
                });
                i += 1;
            }
            b')' => {
                toks.push(Tok {
                    kind: TokKind::RParen,
                    span: (start, i + 1),
                });
                i += 1;
            }
            b'!' => {
                toks.push(Tok {
                    kind: TokKind::Bang,
                    span: (start, i + 1),
                });
                i += 1;
            }
            b'&' => {
                toks.push(Tok {
                    kind: TokKind::Amp,
                    span: (start, i + 1),
                });
                i += 1;
            }
            b'|' => {
                toks.push(Tok {
                    kind: TokKind::Pipe,
                    span: (start, i + 1),
                });
                i += 1;
            }
            b'.' => {
                toks.push(Tok {
                    kind: TokKind::Dot,
                    span: (start, i + 1),
                });
                i += 1;
            }
            b'-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(Tok {
                        kind: TokKind::Arrow,
                        span: (start, i + 2),
                    });
                    i += 2;
                } else {
                    return err("expected `->`", (start, (i + 1).min(bytes.len())));
                }
            }
            b'0'..=b'9' => {
                let mut n: u64 = 0;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    n = n
                        .saturating_mul(10)
                        .saturating_add((bytes[i] - b'0') as u64);
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Number(n),
                    span: (start, i),
                });
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident(text[start..i].to_string()),
                    span: (start, i),
                });
            }
            _ => {
                return err(
                    format!(
                        "unexpected character `{}`",
                        text[i..].chars().next().unwrap()
                    ),
                    (start, start + text[i..].chars().next().unwrap().len_utf8()),
                );
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    eof: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: TokKind, what: &str) -> Result<Tok, ParseError> {
        match self.next() {
            Some(t) if t.kind == kind => Ok(t),
            Some(t) => err(format!("expected {what}"), t.span),
            None => err(
                format!("expected {what}, found end of input"),
                (self.eof, self.eof),
            ),
        }
    }

    fn implies(&mut self) -> Result<Ltl, ParseError> {
        let lhs = self.or()?;
        if matches!(self.peek().map(|t| &t.kind), Some(TokKind::Arrow)) {
            self.next();
            let rhs = self.implies()?;
            return Ok(Ltl::Implies(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn or(&mut self) -> Result<Ltl, ParseError> {
        let mut lhs = self.and()?;
        while matches!(self.peek().map(|t| &t.kind), Some(TokKind::Pipe)) {
            self.next();
            let rhs = self.and()?;
            lhs = Ltl::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Ltl, ParseError> {
        let mut lhs = self.until()?;
        while matches!(self.peek().map(|t| &t.kind), Some(TokKind::Amp)) {
            self.next();
            let rhs = self.until()?;
            lhs = Ltl::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn until(&mut self) -> Result<Ltl, ParseError> {
        let lhs = self.unary()?;
        if let Some(TokKind::Ident(id)) = self.peek().map(|t| &t.kind) {
            if id == "U" || id == "R" {
                let release = id == "R";
                self.next();
                let rhs = self.until()?;
                return Ok(if release {
                    Ltl::Release(Box::new(lhs), Box::new(rhs))
                } else {
                    Ltl::Until(Box::new(lhs), Box::new(rhs))
                });
            }
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Ltl, ParseError> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokKind::Bang) => {
                self.next();
                Ok(Ltl::Not(Box::new(self.unary()?)))
            }
            Some(TokKind::Ident(id)) if id == "X" || id == "F" || id == "G" => {
                self.next();
                let operand = Box::new(self.unary()?);
                Ok(match id.as_str() {
                    "X" => Ltl::Next(operand),
                    "F" => Ltl::Eventually(operand),
                    _ => Ltl::Always(operand),
                })
            }
            _ => self.primary(),
        }
    }

    fn octet(&mut self) -> Result<u8, ParseError> {
        match self.next() {
            Some(Tok {
                kind: TokKind::Number(n),
                span,
            }) => {
                if n > 255 {
                    err("IPv4 octet out of range (0..=255)", span)
                } else {
                    Ok(n as u8)
                }
            }
            Some(t) => err("expected an IPv4 octet", t.span),
            None => err(
                "expected an IPv4 octet, found end of input",
                (self.eof, self.eof),
            ),
        }
    }

    fn primary(&mut self) -> Result<Ltl, ParseError> {
        match self.next() {
            Some(Tok {
                kind: TokKind::LParen,
                ..
            }) => {
                let inner = self.implies()?;
                self.expect(TokKind::RParen, "`)`")?;
                Ok(inner)
            }
            Some(Tok {
                kind: TokKind::Ident(id),
                span,
            }) => match id.as_str() {
                "true" => Ok(Ltl::True),
                "false" => Ok(Ltl::False),
                "forwarded" => Ok(Ltl::Atom(Atom::Forwarded)),
                "dropped" => Ok(Ltl::Atom(Atom::Dropped)),
                "crashed" => Ok(Ltl::Atom(Atom::Crashed)),
                "at" => {
                    self.expect(TokKind::LParen, "`(` after `at`")?;
                    let name = match self.next() {
                        Some(Tok {
                            kind: TokKind::Ident(name),
                            ..
                        }) => name,
                        Some(t) => return err("expected an element name", t.span),
                        None => {
                            return err(
                                "expected an element name, found end of input",
                                (self.eof, self.eof),
                            )
                        }
                    };
                    self.expect(TokKind::RParen, "`)` after the element name")?;
                    Ok(Ltl::Atom(Atom::At(name)))
                }
                "dst" => {
                    self.expect(TokKind::LParen, "`(` after `dst`")?;
                    let mut addr = [0u8; 4];
                    for (i, slot) in addr.iter_mut().enumerate() {
                        if i > 0 {
                            self.expect(TokKind::Dot, "`.` in the IPv4 address")?;
                        }
                        *slot = self.octet()?;
                    }
                    self.expect(TokKind::RParen, "`)` after the IPv4 address")?;
                    Ok(Ltl::Atom(Atom::Dst(addr)))
                }
                _ => err(
                    format!(
                        "unknown atom `{id}` (expected at(...), dst(...), forwarded, dropped, \
                         crashed, true or false)"
                    ),
                    span,
                ),
            },
            Some(t) => err("expected a formula", t.span),
            None => err(
                "expected a formula, found end of input",
                (self.eof, self.eof),
            ),
        }
    }
}

/// Parse an LTL specification.
pub fn parse(text: &str) -> Result<Ltl, ParseError> {
    let toks = lex(text)?;
    let mut p = Parser {
        toks,
        pos: 0,
        eof: text.len(),
    };
    let formula = p.implies()?;
    if let Some(t) = p.peek() {
        return err("unexpected trailing input", t.span);
    }
    Ok(formula)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_precedence_and_associativity() {
        let f = parse("a U b -> c | d & !e").unwrap_err();
        // `a` is not a known atom: spans point at it.
        assert_eq!(f.span, (0, 1));

        let f = parse("at(a) U at(b) -> at(c) | at(d) & !at(e)").unwrap();
        assert_eq!(f.to_string(), "at(a) U at(b) -> at(c) | at(d) & !at(e)");
        // -> binds loosest.
        assert!(matches!(f, Ltl::Implies(..)));
    }

    #[test]
    fn until_is_right_associative() {
        let f = parse("at(a) U at(b) U at(c)").unwrap();
        match f {
            Ltl::Until(_, rhs) => assert!(matches!(*rhs, Ltl::Until(..))),
            other => panic!("expected Until, got {other:?}"),
        }
    }

    #[test]
    fn parses_dst_atom() {
        let f = parse("F dst(10.0.0.1)").unwrap();
        assert_eq!(
            f,
            Ltl::Eventually(Box::new(Ltl::Atom(Atom::Dst([10, 0, 0, 1]))))
        );
        assert_eq!(f.to_string(), "F dst(10.0.0.1)");
    }

    #[test]
    fn rejects_with_spans() {
        let e = parse("G (forwarded").unwrap_err();
        assert_eq!(e.span, (12, 12));
        assert!(e.message.contains("`)`"), "{e}");

        let e = parse("dst(10.0.0.999)").unwrap_err();
        assert_eq!(e.span, (11, 14));
        assert!(e.message.contains("octet"), "{e}");

        let e = parse("forwarded @").unwrap_err();
        assert_eq!(e.span, (10, 11));

        let e = parse("forwarded - dropped").unwrap_err();
        assert!(e.message.contains("->"), "{e}");
    }
}

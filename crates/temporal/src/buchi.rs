//! LTL → Büchi compilation, following the LTL2BA construction
//! (Gastin–Oddoux): negation normal form → very weak alternating automaton
//! (VWAA) → transition-based generalized Büchi automaton (GBA, one
//! acceptance set per `U`-subformula) → degeneralized state-based Büchi
//! automaton via the counter construction.
//!
//! Everything is deterministic: subformulas and atoms are interned in
//! traversal order, all sets are `BTreeSet`s, and automaton states are
//! numbered in BFS discovery order — two compilations of equal formulas
//! yield identical automata.

use crate::ast::{Atom, Ltl};
use crate::nnf::{nnf, Nnf};
use crate::search::{find_accepting_lasso, Lasso};
use std::collections::{BTreeSet, HashMap};

/// One transition of the Büchi automaton: the guard is a conjunction of
/// literals over interned atoms (`pos` must all hold, `neg` must all fail).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Atom ids (indices into [`Buchi::atoms`]) required true.
    pub pos: Vec<usize>,
    /// Atom ids required false.
    pub neg: Vec<usize>,
    /// Successor state.
    pub target: usize,
}

impl Edge {
    /// True if the guard is satisfied by the valuation `val` (the set of
    /// atom ids that hold).
    pub fn satisfied(&self, val: &BTreeSet<usize>) -> bool {
        self.pos.iter().all(|a| val.contains(a)) && self.neg.iter().all(|a| !val.contains(a))
    }
}

/// A (state-based, possibly multi-initial) Büchi automaton.
#[derive(Clone, Debug)]
pub struct Buchi {
    /// The interned atoms; edge guards index into this table.
    pub atoms: Vec<Atom>,
    /// Initial states.
    pub initial: Vec<usize>,
    /// Per-state acceptance flags.
    pub accepting: Vec<bool>,
    /// Per-state outgoing edges, deterministically ordered.
    pub edges: Vec<Vec<Edge>>,
}

impl Buchi {
    /// Number of states.
    pub fn len(&self) -> usize {
        self.accepting.len()
    }

    /// True if the automaton has no states.
    pub fn is_empty(&self) -> bool {
        self.accepting.is_empty()
    }

    /// The interned id of `atom`, if the formula mentioned it.
    pub fn atom_id(&self, atom: &Atom) -> Option<usize> {
        self.atoms.iter().position(|a| a == atom)
    }

    /// Successors of `state` under the valuation `val`, sorted and deduped.
    pub fn successors(&self, state: usize, val: &BTreeSet<usize>) -> Vec<usize> {
        let mut out: Vec<usize> = self.edges[state]
            .iter()
            .filter(|e| e.satisfied(val))
            .map(|e| e.target)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// One step of the subset construction: every state reachable from
    /// `from` by an edge enabled under `val`.
    pub fn subset_step(&self, from: &BTreeSet<usize>, val: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for &q in from {
            for e in &self.edges[q] {
                if e.satisfied(val) {
                    out.insert(e.target);
                }
            }
        }
        out
    }

    /// Translate a set of concrete atoms into the valuation (set of interned
    /// atom ids) this automaton's guards read. Atoms the formula never
    /// mentions are irrelevant and simply dropped.
    pub fn valuation(&self, letter: &BTreeSet<Atom>) -> BTreeSet<usize> {
        letter.iter().filter_map(|a| self.atom_id(a)).collect()
    }
}

/// Compile `f` into a Büchi automaton accepting exactly the infinite words
/// satisfying `f`.
pub fn compile(f: &Ltl) -> Buchi {
    let mut ctx = Ctx::default();
    let root = ctx.intern(&nnf(f));
    ctx.build(root)
}

// ---------------------------------------------------------------------------
// Subformula interning
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Node {
    True,
    False,
    Lit(usize, bool),
    And(usize, usize),
    Or(usize, usize),
    Next(usize),
    Until(usize, usize),
    Release(usize, usize),
}

#[derive(Default)]
struct Ctx {
    nodes: Vec<Node>,
    node_ids: HashMap<Node, usize>,
    atoms: Vec<Atom>,
    atom_ids: HashMap<Atom, usize>,
    delta_memo: HashMap<usize, Vec<Disjunct>>,
}

impl Ctx {
    fn intern(&mut self, f: &Nnf) -> usize {
        let node = match f {
            Nnf::True => Node::True,
            Nnf::False => Node::False,
            Nnf::Lit { atom, positive } => {
                let aid = match self.atom_ids.get(atom) {
                    Some(&id) => id,
                    None => {
                        let id = self.atoms.len();
                        self.atoms.push(atom.clone());
                        self.atom_ids.insert(atom.clone(), id);
                        id
                    }
                };
                Node::Lit(aid, *positive)
            }
            Nnf::And(l, r) => {
                let (l, r) = (self.intern(l), self.intern(r));
                Node::And(l, r)
            }
            Nnf::Or(l, r) => {
                let (l, r) = (self.intern(l), self.intern(r));
                Node::Or(l, r)
            }
            Nnf::Next(x) => {
                let x = self.intern(x);
                Node::Next(x)
            }
            Nnf::Until(l, r) => {
                let (l, r) = (self.intern(l), self.intern(r));
                Node::Until(l, r)
            }
            Nnf::Release(l, r) => {
                let (l, r) = (self.intern(l), self.intern(r));
                Node::Release(l, r)
            }
        };
        if let Some(&id) = self.node_ids.get(&node) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(node.clone());
        self.node_ids.insert(node, id);
        id
    }
}

// ---------------------------------------------------------------------------
// VWAA transition function
// ---------------------------------------------------------------------------

/// One disjunct of a VWAA (or GBA) transition in the symbolic DNF form of
/// LTL2BA: a guard (conjunction of literals), the set of successor VWAA
/// states, and the set of `U`-subformulas this disjunct *fulfils* (its
/// derivation took the right-operand branch of that `U`, which is what the
/// generalized acceptance condition watches for).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Disjunct {
    pos: BTreeSet<usize>,
    neg: BTreeSet<usize>,
    next: BTreeSet<usize>,
    fulfilled: BTreeSet<usize>,
}

impl Disjunct {
    fn top() -> Disjunct {
        Disjunct {
            pos: BTreeSet::new(),
            neg: BTreeSet::new(),
            next: BTreeSet::new(),
            fulfilled: BTreeSet::new(),
        }
    }

    /// Conjoin two disjuncts; `None` if the merged guard is contradictory.
    fn merge(&self, other: &Disjunct) -> Option<Disjunct> {
        let mut pos = self.pos.clone();
        pos.extend(other.pos.iter().copied());
        let mut neg = self.neg.clone();
        neg.extend(other.neg.iter().copied());
        if pos.intersection(&neg).next().is_some() {
            return None;
        }
        let mut next = self.next.clone();
        next.extend(other.next.iter().copied());
        let mut fulfilled = self.fulfilled.clone();
        fulfilled.extend(other.fulfilled.iter().copied());
        Some(Disjunct {
            pos,
            neg,
            next,
            fulfilled,
        })
    }
}

fn product(a: &[Disjunct], b: &[Disjunct]) -> Vec<Disjunct> {
    let mut out = Vec::new();
    for x in a {
        for y in b {
            if let Some(m) = x.merge(y) {
                out.push(m);
            }
        }
    }
    normalise(out)
}

fn normalise(mut v: Vec<Disjunct>) -> Vec<Disjunct> {
    v.sort();
    v.dedup();
    v
}

impl Ctx {
    /// `bar(f)`: decompose a formula into the sets of elementary VWAA states
    /// whose conjunction covers it (LTL2BA's overline operator).
    fn bar(&self, id: usize) -> Vec<BTreeSet<usize>> {
        match self.nodes[id] {
            Node::True => vec![BTreeSet::new()],
            Node::False => vec![],
            Node::And(l, r) => {
                let (bl, br) = (self.bar(l), self.bar(r));
                let mut out = Vec::new();
                for x in &bl {
                    for y in &br {
                        let mut s = x.clone();
                        s.extend(y.iter().copied());
                        out.push(s);
                    }
                }
                out.sort();
                out.dedup();
                out
            }
            Node::Or(l, r) => {
                let mut out = self.bar(l);
                out.extend(self.bar(r));
                out.sort();
                out.dedup();
                out
            }
            _ => vec![[id].into_iter().collect()],
        }
    }

    /// The VWAA transition function Δ, memoized per interned subformula.
    fn delta(&mut self, id: usize) -> Vec<Disjunct> {
        if let Some(d) = self.delta_memo.get(&id) {
            return d.clone();
        }
        let result = match self.nodes[id] {
            Node::True => vec![Disjunct::top()],
            Node::False => vec![],
            Node::Lit(atom, positive) => {
                let mut d = Disjunct::top();
                if positive {
                    d.pos.insert(atom);
                } else {
                    d.neg.insert(atom);
                }
                vec![d]
            }
            Node::And(l, r) => {
                let (dl, dr) = (self.delta(l), self.delta(r));
                product(&dl, &dr)
            }
            Node::Or(l, r) => {
                let mut d = self.delta(l);
                d.extend(self.delta(r));
                normalise(d)
            }
            Node::Next(x) => normalise(
                self.bar(x)
                    .into_iter()
                    .map(|next| Disjunct {
                        next,
                        ..Disjunct::top()
                    })
                    .collect(),
            ),
            // Δ(l U r) = Δ(r)[fulfils U] ∪ (Δ(l) ⊗ {true → {l U r}})
            Node::Until(l, r) => {
                let mut fulfilled = self.delta(r);
                for d in &mut fulfilled {
                    d.fulfilled.insert(id);
                }
                let mut keep = Disjunct::top();
                keep.next.insert(id);
                let looped = product(&self.delta(l), &[keep]);
                let mut out = fulfilled;
                out.extend(looped);
                normalise(out)
            }
            // Δ(l R r) = Δ(r) ⊗ (Δ(l) ∪ {true → {l R r}})
            Node::Release(l, r) => {
                let mut release = self.delta(l);
                let mut keep = Disjunct::top();
                keep.next.insert(id);
                release.push(keep);
                product(&self.delta(r), &normalise(release))
            }
        };
        self.delta_memo.insert(id, result.clone());
        result
    }

    /// Build the degeneralized Büchi automaton for the interned root.
    fn build(&mut self, root: usize) -> Buchi {
        // ---- GBA over sets of VWAA states --------------------------------
        let initial_sets = self.bar(root);
        let mut gba_states: Vec<BTreeSet<usize>> = Vec::new();
        let mut gba_ids: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        let mut queue: Vec<usize> = Vec::new();
        let intern_state = |s: BTreeSet<usize>,
                            states: &mut Vec<BTreeSet<usize>>,
                            ids: &mut HashMap<BTreeSet<usize>, usize>,
                            queue: &mut Vec<usize>| {
            if let Some(&i) = ids.get(&s) {
                return i;
            }
            let i = states.len();
            states.push(s.clone());
            ids.insert(s, i);
            queue.push(i);
            i
        };
        let gba_initial: Vec<usize> = initial_sets
            .into_iter()
            .map(|s| intern_state(s, &mut gba_states, &mut gba_ids, &mut queue))
            .collect();

        struct GTrans {
            pos: BTreeSet<usize>,
            neg: BTreeSet<usize>,
            target: usize,
            fulfilled: BTreeSet<usize>,
        }
        let mut gba_edges: Vec<Vec<GTrans>> = Vec::new();
        let mut head = 0usize;
        while head < queue.len() {
            let idx = queue[head];
            head += 1;
            let members: Vec<usize> = gba_states[idx].iter().copied().collect();
            let mut acc = vec![Disjunct::top()];
            for m in members {
                let dm = self.delta(m);
                acc = product(&acc, &dm);
            }
            let mut edges = Vec::new();
            for d in acc {
                let target =
                    intern_state(d.next.clone(), &mut gba_states, &mut gba_ids, &mut queue);
                edges.push(GTrans {
                    pos: d.pos,
                    neg: d.neg,
                    target,
                    fulfilled: d.fulfilled,
                });
            }
            if gba_edges.len() <= idx {
                gba_edges.resize_with(idx + 1, Vec::new);
            }
            gba_edges[idx] = edges;
        }
        // All queued states got an edge vector (possibly empty).
        gba_edges.resize_with(gba_states.len(), Vec::new);

        // ---- Degeneralization (counter construction) ----------------------
        // One acceptance set per U-subformula: a GBA transition satisfies
        // set `f` iff `f` is not carried to the target or the transition
        // fulfils it.
        let untils: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| matches!(n, Node::Until(..)).then_some(i))
            .collect();
        let k = untils.len();
        let sat = |t: &GTrans, f: usize| -> bool {
            !gba_states[t.target].contains(&f) || t.fulfilled.contains(&f)
        };

        let mut ba_states: Vec<(usize, usize)> = Vec::new();
        let mut ba_ids: HashMap<(usize, usize), usize> = HashMap::new();
        let mut ba_queue: Vec<usize> = Vec::new();
        let intern_ba = |s: (usize, usize),
                         states: &mut Vec<(usize, usize)>,
                         ids: &mut HashMap<(usize, usize), usize>,
                         queue: &mut Vec<usize>| {
            if let Some(&i) = ids.get(&s) {
                return i;
            }
            let i = states.len();
            states.push(s);
            ids.insert(s, i);
            queue.push(i);
            i
        };
        let initial: Vec<usize> = gba_initial
            .iter()
            .map(|&g| intern_ba((g, 0), &mut ba_states, &mut ba_ids, &mut ba_queue))
            .collect();
        let mut edges: Vec<Vec<Edge>> = Vec::new();
        let mut head = 0usize;
        while head < ba_queue.len() {
            let idx = ba_queue[head];
            head += 1;
            let (g, counter) = ba_states[idx];
            let base = if counter == k { 0 } else { counter };
            let mut out = Vec::new();
            for t in &gba_edges[g] {
                let mut j = base;
                while j < k && sat(t, untils[j]) {
                    j += 1;
                }
                let target = intern_ba((t.target, j), &mut ba_states, &mut ba_ids, &mut ba_queue);
                out.push(Edge {
                    pos: t.pos.iter().copied().collect(),
                    neg: t.neg.iter().copied().collect(),
                    target,
                });
            }
            out.sort_by(|a, b| (&a.pos, &a.neg, a.target).cmp(&(&b.pos, &b.neg, b.target)));
            out.dedup();
            if edges.len() <= idx {
                edges.resize_with(idx + 1, Vec::new);
            }
            edges[idx] = out;
        }
        edges.resize_with(ba_states.len(), Vec::new);

        let accepting: Vec<bool> = ba_states.iter().map(|&(_, c)| c == k).collect();
        Buchi {
            atoms: self.atoms.clone(),
            initial,
            accepting,
            edges,
        }
    }
}

// ---------------------------------------------------------------------------
// Fixed-letter analysis and lasso acceptance
// ---------------------------------------------------------------------------

/// States from which an accepting run exists when the automaton reads the
/// fixed valuation `val` forever (the terminal self-loop of a pipeline
/// trace): `fatal[q]` is true iff, inside the subgraph of `val`-enabled
/// edges, `q` can reach a cycle through an accepting state.
pub fn fatal_states(b: &Buchi, val: &BTreeSet<usize>) -> Vec<bool> {
    let n = b.len();
    let succs: Vec<Vec<usize>> = (0..n).map(|q| b.successors(q, val)).collect();
    // Accepting states lying on a (val-enabled) cycle through themselves.
    let mut on_cycle = vec![false; n];
    for a in 0..n {
        if !b.accepting[a] {
            continue;
        }
        // BFS from a's successors back to a.
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = succs[a].clone();
        while let Some(s) = stack.pop() {
            if s == a {
                on_cycle[a] = true;
                break;
            }
            if seen[s] {
                continue;
            }
            seen[s] = true;
            stack.extend(succs[s].iter().copied());
        }
    }
    // Backward closure: states that can reach an on-cycle accepting state.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (q, sq) in succs.iter().enumerate() {
        for &t in sq {
            preds[t].push(q);
        }
    }
    let mut fatal = on_cycle.clone();
    let mut stack: Vec<usize> = (0..n).filter(|&q| fatal[q]).collect();
    while let Some(q) = stack.pop() {
        for &p in &preds[q] {
            if !fatal[p] {
                fatal[p] = true;
                stack.push(p);
            }
        }
    }
    fatal
}

/// True if the automaton accepts the ultimately periodic word
/// `stem · cycle^ω` (used by the differential tests against the direct
/// evaluator). `cycle` must be non-empty.
pub fn accepts_lasso(
    b: &Buchi,
    stem: &[BTreeSet<Atom>],
    cycle: &[BTreeSet<Atom>],
) -> Option<Lasso> {
    assert!(!cycle.is_empty(), "lasso cycle must be non-empty");
    let vals: Vec<BTreeSet<usize>> = stem
        .iter()
        .chain(cycle.iter())
        .map(|l| b.valuation(l))
        .collect();
    let (n, p, m) = (stem.len(), cycle.len(), b.len());
    // Product of the word's position graph with the automaton: state
    // pos * m + q; the position successor wraps the cycle.
    let total = (n + p) * m;
    let accepting: Vec<bool> = (0..total).map(|s| b.accepting[s % m]).collect();
    let initials: Vec<usize> = b.initial.to_vec();
    let mut succ = |s: usize| -> Vec<usize> {
        let (pos, q) = (s / m, s % m);
        let next_pos = if pos + 1 < n + p { pos + 1 } else { n };
        b.successors(q, &vals[pos])
            .into_iter()
            .map(|q2| next_pos * m + q2)
            .collect()
    };
    find_accepting_lasso(total, &initials, &accepting, &mut succ)
}

#[cfg(test)]
// Single-element slice literals read better than slice::from_ref in
// these lasso fixtures.
#[allow(clippy::cloned_ref_to_slice_refs)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn letter(atoms: &[Atom]) -> BTreeSet<Atom> {
        atoms.iter().cloned().collect()
    }

    #[test]
    fn eventually_accepts_and_rejects() {
        let b = compile(&parse("F forwarded").unwrap());
        assert!(!b.is_empty());
        let fwd = letter(&[Atom::Forwarded]);
        let empty = letter(&[]);
        // forwarded eventually: accepted.
        assert!(accepts_lasso(&b, &[empty.clone(), empty.clone()], &[fwd.clone()]).is_some());
        // never forwarded: rejected.
        assert!(accepts_lasso(&b, &[], &[empty.clone()]).is_none());
        // forwarded only in the stem, not the cycle: still accepted (F).
        assert!(accepts_lasso(&b, &[fwd.clone()], &[empty]).is_some());
    }

    #[test]
    fn negated_liveness_catches_starvation() {
        // The verifier model-checks the negation: !(F fwd) = G !fwd.
        let b = compile(&parse("!(F forwarded)").unwrap());
        let fwd = letter(&[Atom::Forwarded]);
        let drop = letter(&[Atom::Dropped]);
        assert!(accepts_lasso(&b, &[], &[drop]).is_some());
        assert!(accepts_lasso(&b, &[], &[fwd]).is_none());
    }

    #[test]
    fn until_requires_left_to_hold() {
        let b = compile(&parse("at(a) U forwarded").unwrap());
        let a = letter(&[Atom::At("a".into())]);
        let other = letter(&[Atom::At("b".into())]);
        let fwd = letter(&[Atom::Forwarded]);
        assert!(accepts_lasso(&b, &[a.clone(), a.clone()], &[fwd.clone()]).is_some());
        assert!(accepts_lasso(&b, &[a.clone(), other], &[fwd]).is_none());
        // U demands the right side eventually.
        assert!(accepts_lasso(&b, &[], &[a]).is_none());
    }

    #[test]
    fn fatal_states_spot_terminal_violations() {
        // ¬(F (forwarded | dropped)) accepts words that never terminate
        // well; under the `crashed` letter forever, some initial state must
        // be fatal, under `forwarded` none may be.
        let b = compile(&parse("!(F (forwarded | dropped))").unwrap());
        let crash_val = b.valuation(&letter(&[Atom::Crashed]));
        let fwd_val = b.valuation(&letter(&[Atom::Forwarded]));
        let fatal_crash = fatal_states(&b, &crash_val);
        let fatal_fwd = fatal_states(&b, &fwd_val);
        assert!(b.initial.iter().any(|&q| fatal_crash[q]));
        assert!(b.initial.iter().all(|&q| !fatal_fwd[q]));
    }
}

//! Direct LTL evaluation on ultimately periodic words.
//!
//! A pipeline trace is finite; it denotes the infinite word
//! `stem · cycle^ω` (the cycle is the terminal self-loop, or the cycle of
//! a reported lasso). On such words LTL truth is decidable by elementary
//! means: positions inside the cycle repeat with period `p`, so `U`/`R`
//! values on the cycle are fixpoints (least for `U`, greatest for `R`) and
//! stem positions fold backwards. This evaluator is deliberately naive —
//! it is the oracle the Büchi construction is differentially tested
//! against, and the judge for concrete counterexample replays.

use crate::ast::{Atom, Ltl};
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

/// Truth of `f` on the infinite word `stem · cycle^ω` (evaluated at
/// position 0). `cycle` must be non-empty.
pub fn holds(f: &Ltl, stem: &[BTreeSet<Atom>], cycle: &[BTreeSet<Atom>]) -> bool {
    assert!(!cycle.is_empty(), "lasso cycle must be non-empty");
    let letters: Vec<&BTreeSet<Atom>> = stem.iter().chain(cycle.iter()).collect();
    let mut ev = Evaluator {
        letters,
        stem_len: stem.len(),
        memo: HashMap::new(),
    };
    ev.values(f)[0]
}

struct Evaluator<'a> {
    letters: Vec<&'a BTreeSet<Atom>>,
    stem_len: usize,
    memo: HashMap<Ltl, Rc<Vec<bool>>>,
}

impl Evaluator<'_> {
    /// Successor of a position (the last cycle position wraps to the cycle
    /// start).
    fn succ(&self, i: usize) -> usize {
        if i + 1 < self.letters.len() {
            i + 1
        } else {
            self.stem_len
        }
    }

    fn cycle_positions(&self) -> std::ops::Range<usize> {
        self.stem_len..self.letters.len()
    }

    /// Truth of `f` at every position of the folded word.
    fn values(&mut self, f: &Ltl) -> Rc<Vec<bool>> {
        if let Some(v) = self.memo.get(f) {
            return v.clone();
        }
        let total = self.letters.len();
        let v: Vec<bool> = match f {
            Ltl::True => vec![true; total],
            Ltl::False => vec![false; total],
            Ltl::Atom(a) => self.letters.iter().map(|l| l.contains(a)).collect(),
            Ltl::Not(x) => self.values(x).iter().map(|b| !b).collect(),
            Ltl::And(l, r) => {
                let (l, r) = (self.values(l), self.values(r));
                l.iter().zip(r.iter()).map(|(a, b)| *a && *b).collect()
            }
            Ltl::Or(l, r) => {
                let (l, r) = (self.values(l), self.values(r));
                l.iter().zip(r.iter()).map(|(a, b)| *a || *b).collect()
            }
            Ltl::Implies(l, r) => {
                let (l, r) = (self.values(l), self.values(r));
                l.iter().zip(r.iter()).map(|(a, b)| !*a || *b).collect()
            }
            Ltl::Next(x) => {
                let x = self.values(x);
                (0..total).map(|i| x[self.succ(i)]).collect()
            }
            Ltl::Eventually(x) => {
                let x = self.values(x);
                let mut v = vec![false; total];
                // On the cycle, F x is the same everywhere: any position.
                let on_cycle = self.cycle_positions().any(|i| x[i]);
                for i in self.cycle_positions() {
                    v[i] = on_cycle;
                }
                for i in (0..self.stem_len).rev() {
                    v[i] = x[i] || v[i + 1];
                }
                v
            }
            Ltl::Always(x) => {
                let x = self.values(x);
                let mut v = vec![false; total];
                let on_cycle = self.cycle_positions().all(|i| x[i]);
                for i in self.cycle_positions() {
                    v[i] = on_cycle;
                }
                for i in (0..self.stem_len).rev() {
                    v[i] = x[i] && v[i + 1];
                }
                v
            }
            Ltl::Until(l, r) => {
                let (l, r) = (self.values(l), self.values(r));
                let mut v = vec![false; total];
                // Least fixpoint on the cycle.
                loop {
                    let mut changed = false;
                    for i in self.cycle_positions().rev() {
                        let next = v[self.succ(i)];
                        let nv = r[i] || (l[i] && next);
                        if nv != v[i] {
                            v[i] = nv;
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                for i in (0..self.stem_len).rev() {
                    v[i] = r[i] || (l[i] && v[i + 1]);
                }
                v
            }
            Ltl::Release(l, r) => {
                let (l, r) = (self.values(l), self.values(r));
                let mut v = vec![false; total];
                // Greatest fixpoint on the cycle.
                for i in self.cycle_positions() {
                    v[i] = true;
                }
                loop {
                    let mut changed = false;
                    for i in self.cycle_positions().rev() {
                        let next = v[self.succ(i)];
                        let nv = r[i] && (l[i] || next);
                        if nv != v[i] {
                            v[i] = nv;
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                for i in (0..self.stem_len).rev() {
                    v[i] = r[i] && (l[i] || v[i + 1]);
                }
                v
            }
        };
        let rc = Rc::new(v);
        self.memo.insert(f.clone(), rc.clone());
        rc
    }
}

#[cfg(test)]
// Single-element slice literals read better than slice::from_ref in
// these lasso fixtures.
#[allow(clippy::cloned_ref_to_slice_refs)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn letter(atoms: &[Atom]) -> BTreeSet<Atom> {
        atoms.iter().cloned().collect()
    }

    #[test]
    fn liveness_on_terminal_self_loops() {
        let spec = parse("F (forwarded | dropped)").unwrap();
        let at = |n: &str| letter(&[Atom::At(n.into())]);
        let fwd = letter(&[Atom::Forwarded]);
        let crash = letter(&[Atom::Crashed]);
        assert!(holds(&spec, &[at("cls"), at("rt")], &[fwd]));
        assert!(!holds(&spec, &[at("cls"), at("rt")], &[crash]));
    }

    #[test]
    fn fairness_with_implication() {
        let spec = parse("G (at(chk) -> F forwarded)").unwrap();
        let at = |n: &str| letter(&[Atom::At(n.into())]);
        let fwd = letter(&[Atom::Forwarded]);
        let drop = letter(&[Atom::Dropped]);
        // chk visited, then forwarded: holds.
        assert!(holds(&spec, &[at("cls"), at("chk")], &[fwd.clone()]));
        // chk visited, then dropped: violated.
        assert!(!holds(&spec, &[at("cls"), at("chk")], &[drop.clone()]));
        // chk never visited: vacuously true.
        assert!(holds(&spec, &[at("cls"), at("rt")], &[drop]));
    }

    #[test]
    fn until_and_release_fixpoints() {
        let a = letter(&[Atom::At("a".into())]);
        let b = letter(&[Atom::At("b".into())]);
        let spec = parse("at(a) U at(b)").unwrap();
        assert!(holds(&spec, &[a.clone(), a.clone()], &[b.clone()]));
        assert!(!holds(&spec, &[], &[a.clone()]));
        // R: the right side must hold forever if the left never fires.
        let spec = parse("at(a) R at(b)").unwrap();
        assert!(holds(&spec, &[], &[b.clone()]));
        assert!(!holds(&spec, &[b.clone()], &[a.clone()]));
        // Next steps into the cycle.
        let spec = parse("X at(b)").unwrap();
        assert!(holds(&spec, &[a.clone()], &[b.clone()]));
        assert!(!holds(&spec, &[a.clone(), a.clone()], &[b]));
    }
}

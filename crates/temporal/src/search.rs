//! Nested-DFS emptiness checking (Courcoubetis–Vardi–Wolper–Yannakakis)
//! with accepting-lasso extraction.
//!
//! The outer (blue) DFS visits states in post-order; when it retreats over
//! an accepting state it launches an inner (red) DFS that searches for a
//! path back to that seed. Red marks persist across inner searches, which
//! keeps the whole check linear in the graph. The search order is fully
//! deterministic: successors are explored in the order the caller yields
//! them.

/// An accepting lasso: `stem` leads from an initial state to the loop head
/// (inclusive), `cycle` continues from the head's successor back to and
/// including the head. The head is accepting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lasso {
    /// Initial state … loop head.
    pub stem: Vec<usize>,
    /// Head's successor … loop head (non-empty; a self-loop yields
    /// `[head]`).
    pub cycle: Vec<usize>,
}

struct Search<'a> {
    accepting: &'a [bool],
    succ: &'a mut dyn FnMut(usize) -> Vec<usize>,
    blue: Vec<bool>,
    red: Vec<bool>,
    path: Vec<usize>,
}

impl Search<'_> {
    fn dfs_blue(&mut self, s: usize) -> Option<Lasso> {
        self.blue[s] = true;
        self.path.push(s);
        for t in (self.succ)(s) {
            if !self.blue[t] {
                if let Some(l) = self.dfs_blue(t) {
                    return Some(l);
                }
            }
        }
        if self.accepting[s] {
            let mut cycle = Vec::new();
            if self.dfs_red(s, s, &mut cycle) {
                cycle.reverse();
                return Some(Lasso {
                    stem: self.path.clone(),
                    cycle,
                });
            }
        }
        self.path.pop();
        None
    }

    /// Search for a non-trivial path from `s` back to `seed`; on success
    /// `cycle` holds the path's states seed-ward first (it is reversed by
    /// the caller).
    fn dfs_red(&mut self, s: usize, seed: usize, cycle: &mut Vec<usize>) -> bool {
        for t in (self.succ)(s) {
            if t == seed {
                cycle.push(t);
                return true;
            }
            if !self.red[t] {
                self.red[t] = true;
                if self.dfs_red(t, seed, cycle) {
                    cycle.push(t);
                    return true;
                }
            }
        }
        false
    }
}

/// Search the implicit graph for an accepting lasso: a cycle through an
/// accepting state reachable from one of `initials`. Returns `None` iff the
/// Büchi language of the graph is empty.
pub fn find_accepting_lasso(
    n: usize,
    initials: &[usize],
    accepting: &[bool],
    succ: &mut dyn FnMut(usize) -> Vec<usize>,
) -> Option<Lasso> {
    let mut search = Search {
        accepting,
        succ,
        blue: vec![false; n],
        red: vec![false; n],
        path: Vec::new(),
    };
    for &init in initials {
        if !search.blue[init] {
            if let Some(lasso) = search.dfs_blue(init) {
                return Some(lasso);
            }
        }
        debug_assert!(search.path.is_empty());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explicit(edges: &[(usize, usize)], n: usize) -> impl FnMut(usize) -> Vec<usize> + '_ {
        move |s: usize| {
            let _ = n;
            edges
                .iter()
                .filter(|(a, _)| *a == s)
                .map(|&(_, b)| b)
                .collect()
        }
    }

    #[test]
    fn finds_reachable_accepting_cycle() {
        // 0 -> 1 -> 2 -> 1 with 2 accepting.
        let edges = [(0, 1), (1, 2), (2, 1)];
        let accepting = [false, false, true];
        let mut succ = explicit(&edges, 3);
        let lasso = find_accepting_lasso(3, &[0], &accepting, &mut succ).unwrap();
        assert_eq!(*lasso.stem.last().unwrap(), 2);
        assert_eq!(*lasso.cycle.last().unwrap(), 2);
        assert!(lasso.cycle.contains(&1));
    }

    #[test]
    fn empty_when_accepting_state_is_transient() {
        // 0 -> 1(acc) -> 2 -> 2; the accepting state is not on a cycle.
        let edges = [(0, 1), (1, 2), (2, 2)];
        let accepting = [false, true, false];
        let mut succ = explicit(&edges, 3);
        assert!(find_accepting_lasso(3, &[0], &accepting, &mut succ).is_none());
    }

    #[test]
    fn accepting_self_loop() {
        let edges = [(0, 0)];
        let accepting = [true];
        let mut succ = explicit(&edges, 1);
        let lasso = find_accepting_lasso(1, &[0], &accepting, &mut succ).unwrap();
        assert_eq!(lasso.stem, vec![0]);
        assert_eq!(lasso.cycle, vec![0]);
    }
}

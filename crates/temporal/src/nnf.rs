//! Negation normal form: negations pushed down to the atoms, implications
//! expanded, and `F`/`G` rewritten to `U`/`R` — the input form of the
//! Büchi compilation chain.

use crate::ast::{Atom, Ltl};

/// An LTL formula in negation normal form.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Nnf {
    /// Constant truth.
    True,
    /// Constant falsehood.
    False,
    /// A possibly-negated atom.
    Lit {
        /// The atom.
        atom: Atom,
        /// True for the atom itself, false for its negation.
        positive: bool,
    },
    /// Conjunction.
    And(Box<Nnf>, Box<Nnf>),
    /// Disjunction.
    Or(Box<Nnf>, Box<Nnf>),
    /// Next.
    Next(Box<Nnf>),
    /// Until (`F x` arrives here as `true U x`).
    Until(Box<Nnf>, Box<Nnf>),
    /// Release (`G x` arrives here as `false R x`).
    Release(Box<Nnf>, Box<Nnf>),
}

/// Convert `f` to negation normal form.
pub fn nnf(f: &Ltl) -> Nnf {
    convert(f, false)
}

fn convert(f: &Ltl, negated: bool) -> Nnf {
    match f {
        Ltl::True => {
            if negated {
                Nnf::False
            } else {
                Nnf::True
            }
        }
        Ltl::False => {
            if negated {
                Nnf::True
            } else {
                Nnf::False
            }
        }
        Ltl::Atom(a) => Nnf::Lit {
            atom: a.clone(),
            positive: !negated,
        },
        Ltl::Not(x) => convert(x, !negated),
        Ltl::And(l, r) => {
            let (l, r) = (convert(l, negated), convert(r, negated));
            if negated {
                Nnf::Or(Box::new(l), Box::new(r))
            } else {
                Nnf::And(Box::new(l), Box::new(r))
            }
        }
        Ltl::Or(l, r) => {
            let (l, r) = (convert(l, negated), convert(r, negated));
            if negated {
                Nnf::And(Box::new(l), Box::new(r))
            } else {
                Nnf::Or(Box::new(l), Box::new(r))
            }
        }
        // a -> b  ==  !a | b
        Ltl::Implies(l, r) => {
            let (nl, r) = (convert(l, !negated), convert(r, negated));
            if negated {
                // !(a -> b) == a & !b
                Nnf::And(Box::new(nl), Box::new(r))
            } else {
                Nnf::Or(Box::new(nl), Box::new(r))
            }
        }
        Ltl::Next(x) => Nnf::Next(Box::new(convert(x, negated))),
        // F x == true U x;  !(F x) == G !x == false R !x
        Ltl::Eventually(x) => {
            let x = convert(x, negated);
            if negated {
                Nnf::Release(Box::new(Nnf::False), Box::new(x))
            } else {
                Nnf::Until(Box::new(Nnf::True), Box::new(x))
            }
        }
        // G x == false R x;  !(G x) == F !x == true U !x
        Ltl::Always(x) => {
            let x = convert(x, negated);
            if negated {
                Nnf::Until(Box::new(Nnf::True), Box::new(x))
            } else {
                Nnf::Release(Box::new(Nnf::False), Box::new(x))
            }
        }
        Ltl::Until(l, r) => {
            let (l, r) = (convert(l, negated), convert(r, negated));
            if negated {
                Nnf::Release(Box::new(l), Box::new(r))
            } else {
                Nnf::Until(Box::new(l), Box::new(r))
            }
        }
        Ltl::Release(l, r) => {
            let (l, r) = (convert(l, negated), convert(r, negated));
            if negated {
                Nnf::Until(Box::new(l), Box::new(r))
            } else {
                Nnf::Release(Box::new(l), Box::new(r))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn pushes_negations_to_literals() {
        let f = parse("!(G (at(a) -> F forwarded))").unwrap();
        let n = nnf(&f);
        // !(G x) == true U !x; !(a -> b) == a & !b; !(F b) == false R !b.
        match n {
            Nnf::Until(l, r) => {
                assert_eq!(*l, Nnf::True);
                match *r {
                    Nnf::And(a, fr) => {
                        assert!(matches!(*a, Nnf::Lit { positive: true, .. }));
                        assert!(matches!(*fr, Nnf::Release(..)));
                    }
                    other => panic!("expected And, got {other:?}"),
                }
            }
            other => panic!("expected Until, got {other:?}"),
        }
    }
}

//! The LTL formula type and its atomic propositions.

use std::fmt;

/// An atomic proposition over one position of a pipeline trace.
///
/// A trace is the sequence of element instances a packet visits, extended to
/// an infinite word by repeating the final disposition forever (the
/// terminal "self-loop"). Header predicates are properties of the *input*
/// packet, so they hold either at every position of a trace or at none.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Atom {
    /// The packet is currently at the element instance with this name.
    At(String),
    /// The packet has left the pipeline through an output port.
    Forwarded,
    /// The packet has been dropped.
    Dropped,
    /// The pipeline crashed while processing the packet.
    Crashed,
    /// The input packet's IPv4 destination (frame offset 30, as in the
    /// reachability property's default layout) equals this address.
    Dst([u8; 4]),
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::At(name) => write!(f, "at({name})"),
            Atom::Forwarded => write!(f, "forwarded"),
            Atom::Dropped => write!(f, "dropped"),
            Atom::Crashed => write!(f, "crashed"),
            Atom::Dst(a) => write!(f, "dst({}.{}.{}.{})", a[0], a[1], a[2], a[3]),
        }
    }
}

/// A linear temporal logic formula.
///
/// Operator precedence, loosest to tightest: `->` (right-associative),
/// `|`, `&`, `U`/`R` (right-associative), then the unary `!`, `X`, `F`,
/// `G`. [`fmt::Display`] renders the canonical form: minimal parentheses,
/// single spaces — re-parsing the rendering yields a structurally identical
/// formula.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Ltl {
    /// Constant truth.
    True,
    /// Constant falsehood.
    False,
    /// An atomic proposition.
    Atom(Atom),
    /// Negation.
    Not(Box<Ltl>),
    /// Conjunction.
    And(Box<Ltl>, Box<Ltl>),
    /// Disjunction.
    Or(Box<Ltl>, Box<Ltl>),
    /// Implication (sugar for `!a | b`).
    Implies(Box<Ltl>, Box<Ltl>),
    /// Next: the operand holds at the following position.
    Next(Box<Ltl>),
    /// Eventually (`F`).
    Eventually(Box<Ltl>),
    /// Always (`G`).
    Always(Box<Ltl>),
    /// Until: the right operand eventually holds, and the left holds at
    /// every position before it.
    Until(Box<Ltl>, Box<Ltl>),
    /// Release: the right operand holds up to and including the first
    /// position where the left does (or forever).
    Release(Box<Ltl>, Box<Ltl>),
}

/// Precedence levels used by the printer (match the parser's grammar).
const PREC_IMPLIES: u8 = 0;
const PREC_OR: u8 = 1;
const PREC_AND: u8 = 2;
const PREC_UNTIL: u8 = 3;
const PREC_UNARY: u8 = 4;

impl Ltl {
    /// Every atom mentioned in the formula, in first-occurrence order
    /// without duplicates.
    pub fn atoms(&self) -> Vec<Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut Vec<Atom>) {
        match self {
            Ltl::True | Ltl::False => {}
            Ltl::Atom(a) => {
                if !out.contains(a) {
                    out.push(a.clone());
                }
            }
            Ltl::Not(x) | Ltl::Next(x) | Ltl::Eventually(x) | Ltl::Always(x) => {
                x.collect_atoms(out)
            }
            Ltl::And(l, r)
            | Ltl::Or(l, r)
            | Ltl::Implies(l, r)
            | Ltl::Until(l, r)
            | Ltl::Release(l, r) => {
                l.collect_atoms(out);
                r.collect_atoms(out);
            }
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, min: u8) -> fmt::Result {
        let prec = match self {
            Ltl::Implies(..) => PREC_IMPLIES,
            Ltl::Or(..) => PREC_OR,
            Ltl::And(..) => PREC_AND,
            Ltl::Until(..) | Ltl::Release(..) => PREC_UNTIL,
            Ltl::Not(..) | Ltl::Next(..) | Ltl::Eventually(..) | Ltl::Always(..) => PREC_UNARY,
            Ltl::True | Ltl::False | Ltl::Atom(..) => u8::MAX,
        };
        if prec < min {
            f.write_str("(")?;
            self.fmt_prec(f, 0)?;
            return f.write_str(")");
        }
        match self {
            Ltl::True => f.write_str("true"),
            Ltl::False => f.write_str("false"),
            Ltl::Atom(a) => write!(f, "{a}"),
            Ltl::Not(x) => {
                f.write_str("!")?;
                x.fmt_prec(f, PREC_UNARY)
            }
            Ltl::Next(x) => {
                f.write_str("X ")?;
                x.fmt_prec(f, PREC_UNARY)
            }
            Ltl::Eventually(x) => {
                f.write_str("F ")?;
                x.fmt_prec(f, PREC_UNARY)
            }
            Ltl::Always(x) => {
                f.write_str("G ")?;
                x.fmt_prec(f, PREC_UNARY)
            }
            Ltl::And(l, r) => {
                l.fmt_prec(f, PREC_AND)?;
                f.write_str(" & ")?;
                r.fmt_prec(f, PREC_AND + 1)
            }
            Ltl::Or(l, r) => {
                l.fmt_prec(f, PREC_OR)?;
                f.write_str(" | ")?;
                r.fmt_prec(f, PREC_OR + 1)
            }
            Ltl::Implies(l, r) => {
                l.fmt_prec(f, PREC_IMPLIES + 1)?;
                f.write_str(" -> ")?;
                r.fmt_prec(f, PREC_IMPLIES)
            }
            Ltl::Until(l, r) => {
                l.fmt_prec(f, PREC_UNARY)?;
                f.write_str(" U ")?;
                r.fmt_prec(f, PREC_UNTIL)
            }
            Ltl::Release(l, r) => {
                l.fmt_prec(f, PREC_UNARY)?;
                f.write_str(" R ")?;
                r.fmt_prec(f, PREC_UNTIL)
            }
        }
    }
}

impl fmt::Display for Ltl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

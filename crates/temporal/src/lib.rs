//! Linear temporal logic over pipeline traces.
//!
//! The property classes of the core verifier are state predicates (crash
//! freedom, instruction bounds, reachability). This crate opens the liveness
//! dimension: formulas like "every packet is eventually forwarded or
//! dropped" or "after the checksum element, delivery is inevitable" are
//! stated in LTL over atomic propositions drawn from pipeline trace events —
//! the packet being *at* an element instance, the final disposition
//! (forwarded / dropped / crashed), and header predicates on the input
//! packet.
//!
//! The crate is self-contained and purely combinatorial; it knows nothing
//! about summaries or solvers:
//!
//! - [`ast`]: the [`Ltl`] formula type and its [`Atom`]s, with a canonical
//!   pretty-printer (parse → print → parse is the identity).
//! - [`mod@parse`]: a recursive-descent parser with byte-span errors.
//! - [`mod@nnf`]: negation normal form (the compiler front half).
//! - [`buchi`]: the LTL2BA-style compilation chain — NNF → very weak
//!   alternating automaton → transition-based generalized Büchi →
//!   degeneralized (state-based) Büchi automaton.
//! - [`search`]: nested-DFS emptiness with accepting-lasso extraction, plus
//!   the fixed-letter "fatal state" analysis used when a trace parks in a
//!   terminal self-loop.
//! - [`eval`]: a direct evaluator of LTL on ultimately periodic words
//!   (stem + cycle) — the trivially-correct oracle the Büchi chain is
//!   differentially tested against, and the predicate concrete replays are
//!   judged with.
//!
//! The verifier builds the product of the Büchi automaton for the *negated*
//! spec with its per-element summary transition system, so the check stays
//! compositional exactly like the paper's Step 2.

pub mod ast;
pub mod buchi;
pub mod eval;
pub mod nnf;
pub mod parse;
pub mod search;

pub use ast::{Atom, Ltl};
pub use buchi::{accepts_lasso, fatal_states, Buchi, Edge};
pub use eval::holds;
pub use nnf::{nnf, Nnf};
pub use parse::{parse, ParseError};
pub use search::{find_accepting_lasso, Lasso};

use std::fmt;

/// A parsed LTL specification in canonical (pretty-printed) form.
///
/// This is the value carried by the verifier's `Property::Temporal` variant
/// and shipped over the worker wire: the `source` text is the canonical
/// rendering of `formula`, so equality, hashing of report text, and wire
/// round-trips are all stable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LtlSpec {
    source: String,
    formula: Ltl,
}

impl LtlSpec {
    /// Parse `text` into a spec; the stored source is the canonical
    /// pretty-printed form (not the raw input).
    pub fn parse(text: &str) -> Result<LtlSpec, ParseError> {
        let formula = parse(text)?;
        Ok(LtlSpec {
            source: formula.to_string(),
            formula,
        })
    }

    /// The canonical source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed formula.
    pub fn formula(&self) -> &Ltl {
        &self.formula
    }
}

impl fmt::Display for LtlSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_source_is_canonical() {
        let spec = LtlSpec::parse("G ((at(chk)) -> F (forwarded|dropped))").unwrap();
        assert_eq!(spec.source(), "G (at(chk) -> F (forwarded | dropped))");
        let again = LtlSpec::parse(spec.source()).unwrap();
        assert_eq!(spec, again);
    }
}

//! Parser coverage: canonical round-trips under random formulas, and
//! span-ed rejection of malformed specs.

use dataplane_temporal::{parse, Atom, Ltl, LtlSpec};
use proptest::prelude::*;

/// Deterministically build a random formula from a stream of picks.
fn build(picks: &[u64], cursor: &mut usize, depth: u32) -> Ltl {
    let mut draw = || {
        let p = picks[*cursor % picks.len()].wrapping_add(*cursor as u64 * 0x9E37_79B9);
        *cursor += 1;
        p
    };
    let atom = |p: u64| -> Ltl {
        match p % 6 {
            0 => Ltl::Atom(Atom::At("a".into())),
            1 => Ltl::Atom(Atom::At("b".into())),
            2 => Ltl::Atom(Atom::Forwarded),
            3 => Ltl::Atom(Atom::Dropped),
            4 => Ltl::Atom(Atom::Crashed),
            _ => Ltl::Atom(Atom::Dst([10, 0, 0, 1])),
        }
    };
    let p = draw();
    if depth == 0 {
        return match p % 8 {
            6 => Ltl::True,
            7 => Ltl::False,
            _ => atom(p),
        };
    }
    let sub = |cursor: &mut usize| build(picks, cursor, depth - 1);
    match p % 12 {
        0 => Ltl::Not(Box::new(sub(cursor))),
        1 => Ltl::Next(Box::new(sub(cursor))),
        2 => Ltl::Eventually(Box::new(sub(cursor))),
        3 => Ltl::Always(Box::new(sub(cursor))),
        4 => Ltl::And(Box::new(sub(cursor)), Box::new(sub(cursor))),
        5 => Ltl::Or(Box::new(sub(cursor)), Box::new(sub(cursor))),
        6 => Ltl::Implies(Box::new(sub(cursor)), Box::new(sub(cursor))),
        7 => Ltl::Until(Box::new(sub(cursor)), Box::new(sub(cursor))),
        8 => Ltl::Release(Box::new(sub(cursor)), Box::new(sub(cursor))),
        9 => Ltl::True,
        10 => Ltl::False,
        _ => atom(p),
    }
}

proptest! {
    /// parse ∘ print is the identity on ASTs, and the printed form is a
    /// fixpoint of canonicalisation.
    #[test]
    fn roundtrip_parse_print_parse(picks in proptest::collection::vec(any::<u64>(), 1..24)) {
        let mut cursor = 0usize;
        let f = build(&picks, &mut cursor, 3);
        let printed = f.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("canonical form `{printed}` failed to parse: {e}"));
        prop_assert_eq!(&reparsed, &f, "print/parse mismatch for `{}`", printed);
        let spec = LtlSpec::parse(&printed).unwrap();
        prop_assert_eq!(spec.source(), printed.as_str());
    }
}

#[test]
fn malformed_specs_are_rejected_with_spans() {
    // (input, expected span, fragment the message must mention)
    let cases: &[(&str, (usize, usize), &str)] = &[
        ("", (0, 0), "formula"),
        ("G", (1, 1), "formula"),
        ("G (forwarded", (12, 12), "`)`"),
        ("forwarded dropped", (10, 17), "trailing"),
        ("at()", (3, 4), "element name"),
        ("at(1)", (3, 4), "element name"),
        ("dst(1.2.3)", (9, 10), "IPv4"),
        ("dst(256.0.0.1)", (4, 7), "octet"),
        ("flooded", (0, 7), "unknown atom"),
        ("forwarded & & dropped", (12, 13), "formula"),
        ("forwarded - dropped", (10, 11), "->"),
        ("forwarded # dropped", (10, 11), "unexpected character"),
        ("(forwarded | dropped))", (21, 22), "trailing"),
    ];
    for (input, span, fragment) in cases {
        let err = match parse(input) {
            Err(e) => e,
            Ok(f) => panic!("`{input}` unexpectedly parsed as {f}"),
        };
        assert_eq!(err.span, *span, "span mismatch for `{input}`: {err}");
        assert!(
            err.message.contains(fragment),
            "message for `{input}` should mention {fragment:?}: {err}"
        );
        // The Display form carries the span for the user.
        let shown = err.to_string();
        assert!(
            shown.contains(&format!("{}..{}", span.0, span.1)),
            "{shown}"
        );
    }
}

#[test]
fn spec_equality_is_structural() {
    let a = LtlSpec::parse("G ((at(chk)) -> F (forwarded | dropped))").unwrap();
    let b = LtlSpec::parse("G (at(chk) -> F (forwarded | dropped))").unwrap();
    assert_eq!(a, b);
    assert_eq!(a.source(), b.source());
}

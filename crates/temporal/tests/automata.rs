//! Differential test of the Büchi compilation chain against the direct
//! lasso evaluator: for random formulas and random ultimately periodic
//! words, `compile(f)` accepts `stem · cycle^ω` exactly when `holds(f, …)`
//! says the word satisfies `f`. This exercises NNF, the VWAA transition
//! function, the generalized acceptance sets, degeneralization, and the
//! nested-DFS emptiness check end to end.

use dataplane_temporal::{accepts_lasso, buchi, holds, Atom, Ltl};
use proptest::prelude::*;
use std::collections::BTreeSet;

const ATOMS: [Atom; 4] = [
    Atom::Forwarded,
    Atom::Dropped,
    Atom::Crashed,
    Atom::Dst([10, 0, 0, 1]),
];

fn atom(p: u64) -> Ltl {
    match p % 5 {
        0 => Ltl::Atom(Atom::At("a".into())),
        n => Ltl::Atom(ATOMS[(n - 1) as usize].clone()),
    }
}

fn build(picks: &[u64], cursor: &mut usize, depth: u32) -> Ltl {
    let mut draw = || {
        let p = picks[*cursor % picks.len()].wrapping_add(*cursor as u64 * 0x9E37_79B9);
        *cursor += 1;
        p
    };
    let p = draw();
    if depth == 0 {
        return match p % 7 {
            5 => Ltl::True,
            6 => Ltl::False,
            _ => atom(p),
        };
    }
    match p % 11 {
        0 => Ltl::Not(Box::new(build(picks, cursor, depth - 1))),
        1 => Ltl::Next(Box::new(build(picks, cursor, depth - 1))),
        2 => Ltl::Eventually(Box::new(build(picks, cursor, depth - 1))),
        3 => Ltl::Always(Box::new(build(picks, cursor, depth - 1))),
        4 => Ltl::And(
            Box::new(build(picks, cursor, depth - 1)),
            Box::new(build(picks, cursor, depth - 1)),
        ),
        5 => Ltl::Or(
            Box::new(build(picks, cursor, depth - 1)),
            Box::new(build(picks, cursor, depth - 1)),
        ),
        6 => Ltl::Implies(
            Box::new(build(picks, cursor, depth - 1)),
            Box::new(build(picks, cursor, depth - 1)),
        ),
        7 => Ltl::Until(
            Box::new(build(picks, cursor, depth - 1)),
            Box::new(build(picks, cursor, depth - 1)),
        ),
        8 => Ltl::Release(
            Box::new(build(picks, cursor, depth - 1)),
            Box::new(build(picks, cursor, depth - 1)),
        ),
        _ => atom(p),
    }
}

/// Build one letter (a set of atoms) from 5 bits.
fn letter(bits: u64) -> BTreeSet<Atom> {
    let mut l = BTreeSet::new();
    if bits & 1 != 0 {
        l.insert(Atom::At("a".into()));
    }
    for (i, a) in ATOMS.iter().enumerate() {
        if bits & (2 << i) != 0 {
            l.insert(a.clone());
        }
    }
    l
}

proptest! {
    /// The compiled automaton and the direct evaluator agree on every
    /// (formula, lasso word) pair.
    #[test]
    fn buchi_agrees_with_direct_evaluator(
        picks in proptest::collection::vec(any::<u64>(), 4..16),
        word in proptest::collection::vec(any::<u64>(), 1..7),
        stem_len in 0usize..4,
    ) {
        let mut cursor = 0usize;
        let f = build(&picks, &mut cursor, 3);
        let stem_len = stem_len.min(word.len() - 1);
        let stem: Vec<BTreeSet<Atom>> = word[..stem_len].iter().map(|&b| letter(b)).collect();
        let cycle: Vec<BTreeSet<Atom>> = word[stem_len..].iter().map(|&b| letter(b)).collect();

        let expected = holds(&f, &stem, &cycle);
        let automaton = buchi::compile(&f);
        let accepted = accepts_lasso(&automaton, &stem, &cycle).is_some();
        prop_assert_eq!(
            accepted,
            expected,
            "formula `{}` on stem {:?} cycle {:?}: automaton={}, evaluator={}",
            f, stem, cycle, accepted, expected
        );
    }
}

#[test]
fn negation_duality_on_fixed_words() {
    // For every word, exactly one of f and !f holds — checked through the
    // automaton for a handful of nontrivial formulas.
    let formulas = [
        "G (at(a) -> F forwarded)",
        "F G dropped",
        "G F at(a)",
        "(at(a) U forwarded) R !crashed",
        "X X forwarded",
    ];
    let words: [(&[u64], &[u64]); 3] = [(&[1, 2], &[4]), (&[], &[1]), (&[8, 1, 2], &[2, 1])];
    for src in formulas {
        let f = dataplane_temporal::parse(src).unwrap();
        let nf = Ltl::Not(Box::new(f.clone()));
        for (s, c) in words {
            let stem: Vec<BTreeSet<Atom>> = s.iter().map(|&b| letter(b)).collect();
            let cycle: Vec<BTreeSet<Atom>> = c.iter().map(|&b| letter(b)).collect();
            let pos = accepts_lasso(&buchi::compile(&f), &stem, &cycle).is_some();
            let neg = accepts_lasso(&buchi::compile(&nf), &stem, &cycle).is_some();
            assert_ne!(pos, neg, "duality violated for `{src}` on {s:?}/{c:?}");
            assert_eq!(pos, holds(&f, &stem, &cycle), "`{src}` on {s:?}/{c:?}");
        }
    }
}

//! # dataplane-pipeline — a Click-like software dataplane
//!
//! This crate is the dataplane framework the verifier reasons about: packet-
//! processing elements with a narrow interface, composed into pipelines, with
//! the three-way state discipline of the paper (packet state owned by one
//! element at a time, private per-element state, read-only static state).
//!
//! * [`element`] — the [`element::Element`] trait: native `process` plus an
//!   IR `model`, the two behaviours differential tests keep in lock-step.
//! * [`elements`] — the element library (the paper's router elements, the
//!   stateful NetFlow/NAT elements, support elements, and buggy fixtures).
//! * [`pipeline`] — the element graph and the native push runtime.
//! * [`config`] — the Click-like textual configuration language.
//! * [`diff`] — structural pipeline diffing by verification-relevant
//!   behaviour and wiring (what incremental re-verification plans from).
//! * [`presets`] — ready-made pipelines (the reference IP router, the
//!   stateful middlebox, the firewall, a deliberately buggy pipeline).
//! * [`runtime`] — batch runtimes: single-threaded, multi-threaded
//!   (SMPClick-style), and model-interpreting.
//!
//! ## Example
//!
//! ```
//! use dataplane_pipeline::presets::ip_router_pipeline;
//! use dataplane_net::PacketBuilder;
//! use std::net::Ipv4Addr;
//!
//! let mut router = ip_router_pipeline();
//! let packet = PacketBuilder::udp(
//!     Ipv4Addr::new(10, 0, 0, 1),
//!     Ipv4Addr::new(192, 168, 0, 1),
//!     5000,
//!     53,
//!     b"payload",
//! )
//! .build();
//! let outcome = router.push(packet);
//! // The packet traverses the full 8-element path and is accounted by the
//! // sink (the paper's pipelines drop packets at a sink element).
//! assert!(!outcome.is_crash());
//! assert_eq!(outcome.hops.len(), 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod diff;
pub mod element;
pub mod elements;
pub mod pipeline;
pub mod presets;
pub mod runtime;

pub use config::{parse_config, write_config, ConfigError, ConfigWriteError};
pub use diff::{diff_pipelines, PipelineDiff};
pub use element::{build_model_state, run_model, run_model_with_state, Action, Element};
pub use pipeline::{
    Disposition, ElementIdx, Pipeline, PipelineBuilder, PipelineError, PipelineOutcome,
};
pub use runtime::{
    model_run_fresh, run_parallel, run_single_threaded, ModelRun, ModelRuntime, RunStats, TimedRun,
};

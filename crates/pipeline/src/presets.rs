//! Pre-built pipelines used across the test suite, the examples, and the
//! benchmark harness — most importantly the reference IP router whose
//! verification the paper reports on.

use crate::element::Element;
use crate::elements::*;
use crate::pipeline::{Pipeline, PipelineBuilder};
use std::net::Ipv4Addr;

/// The Click-style configuration text for the reference IP router (also
/// exercised by the config-language tests and the examples).
pub const IP_ROUTER_CONFIG: &str = r#"
    // Reference IP router (paper: Classifier, EthDecap/EthEncap,
    // CheckIPHeader, IPLookup, DecTTL, IPOptions).
    cls   :: Classifier(12/0800);
    strip :: EthDecap();
    chk   :: CheckIPHeader();
    opts  :: IPOptions(10.255.255.254);
    rt    :: IPLookup(10.0.0.0/8 0, 192.168.0.0/16 1);
    ttl0  :: DecTTL();
    ttl1  :: DecTTL();
    enc0  :: EthEncap();
    enc1  :: EthEncap();
    out0  :: Sink();
    out1  :: Sink();

    cls[0] -> strip -> chk -> opts -> rt;
    rt[0] -> ttl0 -> enc0 -> out0;
    rt[1] -> ttl1 -> enc1 -> out1;
"#;

/// Build the reference IP-router pipeline programmatically (equivalent to
/// [`IP_ROUTER_CONFIG`]).
pub fn ip_router_pipeline() -> Pipeline {
    let mut b = Pipeline::builder();
    let cls = b.add("cls", Box::new(Classifier::ipv4_only()));
    let strip = b.add("strip", Box::new(EthDecap::new()));
    let chk = b.add("chk", Box::new(CheckIPHeader::new()));
    let opts = b.add(
        "opts",
        Box::new(IPOptions::new(Ipv4Addr::new(10, 255, 255, 254))),
    );
    let rt = b.add("rt", Box::new(IPLookup::two_port_default()));
    let ttl0 = b.add("ttl0", Box::new(DecTTL::new()));
    let ttl1 = b.add("ttl1", Box::new(DecTTL::new()));
    let enc0 = b.add("enc0", Box::new(EthEncap::ipv4_default()));
    let enc1 = b.add("enc1", Box::new(EthEncap::ipv4_default()));
    let out0 = b.add("out0", Box::new(Sink::new()));
    let out1 = b.add("out1", Box::new(Sink::new()));
    b.chain(&[cls, strip, chk, opts, rt]);
    b.connect(rt, 0, ttl0)
        .connect(ttl0, 0, enc0)
        .connect(enc0, 0, out0)
        .connect(rt, 1, ttl1)
        .connect(ttl1, 0, enc1)
        .connect(enc1, 0, out1);
    b.build().expect("reference router is a valid pipeline")
}

/// The paper's "longest pipeline": the full set of router elements arranged
/// as a single linear chain (no branching), convenient for the scaling
/// experiments where verification cost is measured against pipeline length.
pub fn linear_router_pipeline() -> Pipeline {
    let elements = router_element_chain();
    linear_pipeline(elements)
}

/// The ordered element chain of the linear router — one instance of every
/// element type the paper's evaluation uses, in processing order.
pub fn router_element_chain() -> Vec<(&'static str, Box<dyn Element>)> {
    vec![
        ("cls", Box::new(Classifier::ipv4_only()) as Box<dyn Element>),
        ("strip", Box::new(EthDecap::new())),
        ("chk", Box::new(CheckIPHeader::new())),
        (
            "opts",
            Box::new(IPOptions::new(Ipv4Addr::new(10, 255, 255, 254))),
        ),
        ("rt", Box::new(IPLookup::two_port_default())),
        ("ttl", Box::new(DecTTL::new())),
        ("enc", Box::new(EthEncap::ipv4_default())),
    ]
}

/// Build a linear pipeline from named elements, connecting port 0 of each to
/// the next and appending a final `Sink`.
pub fn linear_pipeline(elements: Vec<(&str, Box<dyn Element>)>) -> Pipeline {
    let mut b = PipelineBuilder::new();
    let mut idxs = Vec::new();
    for (name, e) in elements {
        idxs.push(b.add(name, e));
    }
    let sink = b.add("sink", Box::new(Sink::new()));
    idxs.push(sink);
    b.chain(&idxs);
    b.build().expect("linear pipeline is valid")
}

/// A stateful middlebox pipeline: header check, flow accounting, NAT, then a
/// sink — the configuration the paper describes as "currently experimenting
/// with" (NetFlow-style statistics and NAT functionality).
pub fn middlebox_pipeline() -> Pipeline {
    let mut b = Pipeline::builder();
    let strip = b.add("strip", Box::new(EthDecap::new()));
    let chk = b.add("chk", Box::new(CheckIPHeader::new()));
    let flow = b.add("flow", Box::new(NetFlow::new()));
    let nat = b.add("nat", Box::new(Nat::with_defaults()));
    let enc = b.add("enc", Box::new(EthEncap::ipv4_default()));
    let out = b.add("out", Box::new(Sink::new()));
    b.chain(&[strip, chk, flow, nat, enc, out]);
    b.build().expect("middlebox pipeline is valid")
}

/// A firewall-style pipeline with a source blocklist, used by the
/// reachability experiments.
pub fn firewall_pipeline(blocked: Vec<Ipv4Addr>) -> Pipeline {
    let mut b = Pipeline::builder();
    let strip = b.add("strip", Box::new(EthDecap::new()));
    let chk = b.add("chk", Box::new(CheckIPHeader::new()));
    let filter = b.add("filter", Box::new(SrcFilter::new(blocked)));
    let rt = b.add("rt", Box::new(IPLookup::two_port_default()));
    let ttl = b.add("ttl", Box::new(DecTTL::new()));
    let enc = b.add("enc", Box::new(EthEncap::ipv4_default()));
    let out0 = b.add("out0", Box::new(Sink::new()));
    let out1 = b.add("out1", Box::new(Sink::new()));
    b.chain(&[strip, chk, filter, rt]);
    b.connect(rt, 0, ttl)
        .connect(ttl, 0, enc)
        .connect(enc, 0, out0)
        .connect(rt, 1, out1);
    b.build().expect("firewall pipeline is valid")
}

/// A pipeline with a planted bug (an unchecked IP-options walker downstream
/// of a correct classifier but **without** the protective `CheckIPHeader`),
/// used by failure-injection tests: the verifier must find the crash and
/// produce a witness packet.
pub fn buggy_pipeline() -> Pipeline {
    let mut b = Pipeline::builder();
    let cls = b.add("cls", Box::new(Classifier::ipv4_only()));
    let strip = b.add("strip", Box::new(EthDecap::new()));
    let opts = b.add("opts", Box::new(UncheckedOptions::new()));
    let ttl = b.add("ttl", Box::new(BuggyDecTTL::new()));
    let out = b.add("out", Box::new(Sink::new()));
    b.chain(&[cls, strip, opts, ttl, out]);
    b.build().expect("buggy pipeline is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::parse_config;
    use dataplane_net::{PacketBuilder, WorkloadGen};

    #[test]
    fn programmatic_and_config_routers_agree_on_traffic() {
        let mut from_code = ip_router_pipeline();
        let mut from_config = parse_config(IP_ROUTER_CONFIG).unwrap();
        assert_eq!(from_code.len(), from_config.len());

        let mut gen = WorkloadGen::adversarial(42);
        for pkt in gen.batch(300) {
            let a = from_code.push(pkt.clone());
            let b = from_config.push(pkt);
            assert_eq!(a.is_crash(), b.is_crash());
            assert_eq!(a.is_forwarded(), b.is_forwarded());
            assert_eq!(a.hops.len(), b.hops.len());
        }
    }

    #[test]
    fn router_forwards_and_never_crashes_on_adversarial_traffic() {
        let mut router = ip_router_pipeline();
        let out0 = router.find("out0").unwrap();
        let out1 = router.find("out1").unwrap();
        let mut gen = WorkloadGen::adversarial(7);
        let mut delivered = 0;
        for pkt in gen.batch(500) {
            let out = router.push(pkt);
            assert!(!out.is_crash(), "router crashed: {:?}", out.disposition);
            // "Forwarded" in this pipeline means the packet reached one of
            // the sinks (the paper's setup drops packets at a sink element).
            let last = *out.hops.last().unwrap();
            if last == out0 || last == out1 {
                delivered += 1;
            }
        }
        // The clean fraction of the adversarial mix should reach a sink.
        assert!(delivered > 50, "only {delivered} packets delivered");
    }

    #[test]
    fn linear_router_has_the_full_chain() {
        let p = linear_router_pipeline();
        assert_eq!(p.len(), 8); // 7 elements + sink
        assert_eq!(p.longest_path_len(), 8);
    }

    #[test]
    fn middlebox_counts_and_translates() {
        let mut p = middlebox_pipeline();
        let pkt = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(8, 8, 8, 8),
            5555,
            53,
            b"q",
        )
        .build();
        let out = p.push(pkt);
        assert!(!out.is_crash());
        assert_eq!(out.hops.len(), 6);
    }

    #[test]
    fn firewall_blocks_and_forwards() {
        let mut p = firewall_pipeline(vec![Ipv4Addr::new(10, 0, 0, 66)]);
        let blocked = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 66),
            Ipv4Addr::new(192, 168, 0, 1),
            1,
            2,
            b"x",
        )
        .build();
        let allowed = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 65),
            Ipv4Addr::new(192, 168, 0, 1),
            1,
            2,
            b"x",
        )
        .build();
        let out = p.push(blocked);
        assert!(!out.is_forwarded());
        let out = p.push(allowed);
        assert!(!out.is_crash());
    }

    #[test]
    fn buggy_pipeline_crashes_on_crafted_packet() {
        let mut p = buggy_pipeline();
        // A frame whose IP header claims options but is truncated.
        let mut bytes = vec![0u8; 14 + 22];
        bytes[12] = 0x08; // IPv4 ethertype
        bytes[13] = 0x00;
        bytes[14] = 0x4a; // IHL 10
        bytes[34] = 7; // option kind
        bytes[35] = 30; // bogus length
        let out = p.push(dataplane_net::Packet::from_bytes(bytes));
        assert!(out.is_crash());

        // TTL-zero packet trips the division bug.
        let pkt = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 168, 0, 1),
            1,
            2,
            b"x",
        )
        .ttl(0)
        .build();
        let out = p.push(pkt);
        assert!(out.is_crash());
    }
}

//! Shared helpers for element implementations.
//!
//! The native implementations and the IR models of several elements need the
//! same computations (IPv4 header checksum, incremental checksum update).
//! Keeping both forms side by side in one module makes it easy to see that
//! they implement the same arithmetic, which is what the differential tests
//! then confirm.

use dataplane_ir::builder::Block;
use dataplane_ir::expr::dsl::*;
use dataplane_ir::{Expr, LocalId};

/// Offsets of IPv4 header fields relative to the start of the IP header.
pub mod ip_field {
    /// Version/IHL byte.
    pub const VER_IHL: u32 = 0;
    /// Total length (16 bits).
    pub const TOTAL_LEN: u32 = 2;
    /// TTL byte.
    pub const TTL: u32 = 8;
    /// Protocol byte.
    pub const PROTOCOL: u32 = 9;
    /// Header checksum (16 bits).
    pub const CHECKSUM: u32 = 10;
    /// Source address (32 bits).
    pub const SRC: u32 = 12;
    /// Destination address (32 bits).
    pub const DST: u32 = 16;
    /// First option byte.
    pub const OPTIONS: u32 = 20;
}

/// Native: compute the IPv4 header checksum over `header_words` 16-bit words
/// of `bytes` with the checksum field (bytes 10..12) treated as zero.
/// Returns the value to store in the checksum field.
pub fn native_ip_checksum(bytes: &[u8], header_words: usize) -> u16 {
    let mut sum: u32 = 0;
    for w in 0..header_words {
        let off = w * 2;
        // Treat the checksum field (bytes 10..12) as zero.
        let (hi, lo) = if off == 10 {
            (0u32, 0u32)
        } else {
            (bytes[off] as u32, bytes[off + 1] as u32)
        };
        sum += (hi << 8) | lo;
    }
    // Two folds suffice for at most 30 words (see the model builder below,
    // which performs exactly the same two folds).
    sum = (sum & 0xffff) + (sum >> 16);
    sum = (sum & 0xffff) + (sum >> 16);
    !(sum as u16)
}

/// Native: verify the IPv4 header checksum (header bytes including the stored
/// checksum must sum to 0xffff).
pub fn native_ip_checksum_ok(bytes: &[u8], header_words: usize) -> bool {
    let mut sum: u32 = 0;
    for w in 0..header_words {
        let off = w * 2;
        sum += ((bytes[off] as u32) << 8) | bytes[off + 1] as u32;
    }
    sum = (sum & 0xffff) + (sum >> 16);
    sum = (sum & 0xffff) + (sum >> 16);
    sum == 0xffff
}

/// Native: RFC 1624 incremental checksum update when the TTL byte is
/// decremented by one (the high byte of the TTL/protocol word decreases by
/// one, so the checksum increases by 0x0100 with end-around carry).
pub fn native_ttl_checksum_update(old: u16) -> u16 {
    let t = old as u32 + 0x0100;
    ((t & 0xffff) + (t >> 16)) as u16
}

/// Model: append statements that sum `words` 16-bit words of the packet
/// starting at `ip_base`, into 32-bit local `sum`, using `idx` as the loop
/// counter, then fold twice. `words` is an expression for the number of
/// 16-bit words (e.g. `ihl * 2`); `max_words` bounds the loop.
///
/// The checksum field (word 5) is **included**; callers that need the
/// verify-style sum (which should equal 0xffff) use this directly, callers
/// that recompute a checksum zero the field first.
pub fn model_ip_checksum_sum(
    body: &mut Block,
    ip_base: u32,
    sum: LocalId,
    idx: LocalId,
    words: Expr,
    max_words: u32,
) {
    body.assign(sum, c(32, 0));
    body.assign(idx, c(32, 0));
    body.loop_bounded(
        max_words,
        ult(l(idx), words),
        Block::with(|lb| {
            lb.assign(
                sum,
                add(
                    l(sum),
                    zext(
                        pkt_at(add(c(32, ip_base as u64), mul(l(idx), c(32, 2))), 2),
                        32,
                    ),
                ),
            );
            lb.assign(idx, add(l(idx), c(32, 1)));
        }),
    );
    // Two folds, exactly as the native helper does.
    body.assign(
        sum,
        add(and(l(sum), c(32, 0xffff)), lshr(l(sum), c(32, 16))),
    );
    body.assign(
        sum,
        add(and(l(sum), c(32, 0xffff)), lshr(l(sum), c(32, 16))),
    );
}

/// Model: the RFC 1624 incremental update used by `DecTTL`, mirroring
/// [`native_ttl_checksum_update`]. `old` must be a 32-bit expression holding
/// the old checksum; the result is a 32-bit expression holding the new one.
pub fn model_ttl_checksum_update(old: Expr) -> Expr {
    let t = add(old, c(32, 0x0100));
    add(and(t.clone(), c(32, 0xffff)), lshr(t, c(32, 16)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane_net::checksum;
    use dataplane_net::Ipv4Header;

    #[test]
    fn native_checksum_matches_net_crate() {
        let hdr = Ipv4Header::template();
        let bytes = hdr.to_bytes();
        // Our helper, told to treat the checksum field as zero, must agree
        // with the reference implementation in dataplane-net.
        let ours = native_ip_checksum(&bytes, bytes.len() / 2);
        let mut zeroed = bytes.clone();
        zeroed[10] = 0;
        zeroed[11] = 0;
        assert_eq!(ours, checksum::checksum(&zeroed));
        assert!(native_ip_checksum_ok(&bytes, bytes.len() / 2));
        let mut corrupted = bytes.clone();
        corrupted[8] ^= 0x40;
        assert!(!native_ip_checksum_ok(&corrupted, corrupted.len() / 2));
    }

    #[test]
    fn ttl_update_matches_full_recompute() {
        // For a range of headers, decrementing the TTL and applying the
        // incremental update must leave a header whose checksum verifies.
        for ttl in [2u8, 3, 10, 64, 128, 255] {
            let mut hdr = Ipv4Header::template();
            hdr.ttl = ttl;
            let mut bytes = hdr.to_bytes();
            let old = u16::from_be_bytes([bytes[10], bytes[11]]);
            bytes[8] -= 1;
            let new = native_ttl_checksum_update(old);
            bytes[10..12].copy_from_slice(&new.to_be_bytes());
            assert!(
                checksum::verify(&bytes),
                "incremental update broke checksum for ttl {ttl}"
            );
        }
    }

    #[test]
    fn model_checksum_sum_agrees_with_native() {
        use dataplane_ir::builder::ProgramBuilder;
        use dataplane_ir::interp::{execute_default, ElementState};

        // Build a tiny program that computes the verify-sum over a 20-byte
        // header at offset 0 and stores the low 16 bits at offset 20.
        let mut pb = ProgramBuilder::new("SumTest", 1);
        let sum = pb.local("sum", 32);
        let idx = pb.local("idx", 32);
        let mut body = Block::new();
        model_ip_checksum_sum(&mut body, 0, sum, idx, c(32, 10), 30);
        body.pkt_store(20, 2, trunc(l(sum), 16));
        body.emit(0);
        let prog = pb.finish(body).unwrap();

        let hdr = Ipv4Header::template();
        let mut bytes = hdr.to_bytes();
        bytes.extend_from_slice(&[0, 0]); // room for the result
        let mut state = ElementState::for_program(&prog);
        execute_default(&prog, &mut bytes, &mut state).unwrap();
        let model_sum = u16::from_be_bytes([bytes[20], bytes[21]]);
        assert_eq!(model_sum, 0xffff, "valid header must verify to 0xffff");
    }

    #[test]
    fn model_ttl_update_expression_evaluates_like_native() {
        use dataplane_ir::builder::ProgramBuilder;
        use dataplane_ir::interp::{execute_default, ElementState};

        let mut pb = ProgramBuilder::new("TtlUpd", 1);
        let old = pb.local("old", 32);
        let mut body = Block::new();
        body.assign(old, zext(pkt(0, 2), 32));
        body.pkt_store(2, 2, trunc(model_ttl_checksum_update(l(old)), 16));
        body.emit(0);
        let prog = pb.finish(body).unwrap();

        for old_val in [0x0000u16, 0x1234, 0xfeff, 0xff00, 0xffff] {
            let mut bytes = vec![0u8; 4];
            bytes[0..2].copy_from_slice(&old_val.to_be_bytes());
            let mut state = ElementState::for_program(&prog);
            execute_default(&prog, &mut bytes, &mut state).unwrap();
            let got = u16::from_be_bytes([bytes[2], bytes[3]]);
            assert_eq!(got, native_ttl_checksum_update(old_val), "old {old_val:#x}");
        }
    }
}

//! `CheckIPHeader` — validates the IPv4 header exactly as Click's
//! `CheckIPHeader` element does: version, IHL, length consistency, and
//! header checksum. Malformed packets are dropped; valid packets are emitted
//! on port 0.
//!
//! This element establishes the invariants (`packet length >= IHL*4`,
//! checksum valid) that downstream elements such as `IPOptions` rely on
//! without re-checking — the composition effect at the heart of the paper's
//! Figure 2.
//!
//! The element expects the IP header at offset 0 (i.e. it runs after
//! `EthDecap`).

use crate::element::{Action, Element};
use crate::elements::common::{self, ip_field};
use dataplane_ir::builder::{Block, ProgramBuilder};
use dataplane_ir::expr::dsl::*;
use dataplane_ir::Program;
use dataplane_net::Packet;

/// Maximum number of 16-bit words in an IPv4 header (IHL = 15).
const MAX_HEADER_WORDS: u32 = 30;

/// The CheckIPHeader element.
#[derive(Debug, Default)]
pub struct CheckIPHeader {
    dropped: u64,
}

impl CheckIPHeader {
    /// New header checker.
    pub fn new() -> Self {
        CheckIPHeader::default()
    }

    /// Number of malformed packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The pure validation logic shared by [`Element::process`]; returns
    /// `true` when the packet passes every check.
    pub fn header_ok(bytes: &[u8]) -> bool {
        if bytes.len() < 20 {
            return false;
        }
        let version = bytes[0] >> 4;
        if version != 4 {
            return false;
        }
        let ihl = (bytes[0] & 0x0f) as usize;
        if ihl < 5 {
            return false;
        }
        let hl = ihl * 4;
        if bytes.len() < hl {
            return false;
        }
        let total_len = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        if total_len < hl || total_len > bytes.len() {
            return false;
        }
        common::native_ip_checksum_ok(bytes, ihl * 2)
    }
}

impl Element for CheckIPHeader {
    fn type_name(&self) -> &'static str {
        "CheckIPHeader"
    }
    fn output_ports(&self) -> usize {
        1
    }
    fn process(&mut self, packet: Packet) -> Action {
        if CheckIPHeader::header_ok(packet.bytes()) {
            Action::Emit(0, packet)
        } else {
            self.dropped += 1;
            Action::Drop
        }
    }
    fn model(&self) -> Program {
        let mut pb = ProgramBuilder::new("CheckIPHeader", 1);
        let ver_ihl = pb.local("ver_ihl", 8);
        let ihl = pb.local("ihl", 32);
        let hl = pb.local("hl", 32);
        let total_len = pb.local("total_len", 32);
        let sum = pb.local("sum", 32);
        let idx = pb.local("idx", 32);

        let mut b = Block::new();
        // Minimum length for the fixed header.
        b.if_then(
            ult(pkt_len(), c(32, 20)),
            Block::with(|bb| {
                bb.drop_packet();
            }),
        );
        b.assign(ver_ihl, pkt(ip_field::VER_IHL, 1));
        // Version must be 4.
        b.if_then(
            ne(lshr(l(ver_ihl), c(8, 4)), c(8, 4)),
            Block::with(|bb| {
                bb.drop_packet();
            }),
        );
        b.assign(ihl, zext(and(l(ver_ihl), c(8, 0x0f)), 32));
        // IHL must be at least 5.
        b.if_then(
            ult(l(ihl), c(32, 5)),
            Block::with(|bb| {
                bb.drop_packet();
            }),
        );
        b.assign(hl, mul(l(ihl), c(32, 4)));
        // The buffer must hold the whole header.
        b.if_then(
            ult(pkt_len(), l(hl)),
            Block::with(|bb| {
                bb.drop_packet();
            }),
        );
        // Total length must cover the header and fit in the buffer.
        b.assign(total_len, zext(pkt(ip_field::TOTAL_LEN, 2), 32));
        b.if_then(
            bor(ult(l(total_len), l(hl)), ugt(l(total_len), pkt_len())),
            Block::with(|bb| {
                bb.drop_packet();
            }),
        );
        // Header checksum must verify (sum of all header words == 0xffff).
        common::model_ip_checksum_sum(&mut b, 0, sum, idx, mul(l(ihl), c(32, 2)), MAX_HEADER_WORDS);
        b.if_then(
            ne(l(sum), c(32, 0xffff)),
            Block::with(|bb| {
                bb.drop_packet();
            }),
        );
        b.emit(0);
        pb.finish(b).expect("CheckIPHeader model is valid")
    }
    fn reset(&mut self) {
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::run_model;
    use dataplane_net::ethernet::ETHERNET_HEADER_LEN;
    use dataplane_net::{PacketBuilder, WorkloadGen};
    use std::net::Ipv4Addr;

    /// A valid IP packet with the Ethernet header already stripped.
    fn ip_packet() -> Packet {
        let frame = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 168, 0, 1),
            1000,
            53,
            b"hello",
        )
        .build();
        Packet::from_bytes(frame.bytes()[ETHERNET_HEADER_LEN..].to_vec())
    }

    fn ip_packet_with_options() -> Packet {
        let frame = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 168, 0, 1),
            1000,
            53,
            b"hello",
        )
        .ip_options(&[1, 1, 7, 7, 4, 0, 0, 0]) // NOP NOP RR(len 7)
        .build();
        Packet::from_bytes(frame.bytes()[ETHERNET_HEADER_LEN..].to_vec())
    }

    #[test]
    fn accepts_valid_packets() {
        let mut e = CheckIPHeader::new();
        assert_eq!(e.process(ip_packet()).port(), Some(0));
        assert_eq!(e.process(ip_packet_with_options()).port(), Some(0));
        assert_eq!(e.dropped(), 0);
    }

    #[test]
    fn rejects_malformed_packets() {
        let mut e = CheckIPHeader::new();
        // Too short.
        assert_eq!(e.process(Packet::from_bytes(vec![0x45; 10])), Action::Drop);
        // Wrong version.
        let mut p = ip_packet();
        p.bytes_mut()[0] = 0x65;
        assert_eq!(e.process(p), Action::Drop);
        // Bad IHL.
        let mut p = ip_packet();
        p.bytes_mut()[0] = 0x43;
        assert_eq!(e.process(p), Action::Drop);
        // Corrupted checksum.
        let mut p = ip_packet();
        p.bytes_mut()[10] ^= 0xff;
        assert_eq!(e.process(p), Action::Drop);
        // Total length larger than the buffer.
        let mut p = ip_packet();
        p.bytes_mut()[2] = 0xff;
        p.bytes_mut()[3] = 0xff;
        assert_eq!(e.process(p), Action::Drop);
        // Total length smaller than the header.
        let mut p = ip_packet();
        p.bytes_mut()[2] = 0;
        p.bytes_mut()[3] = 4;
        assert_eq!(e.process(p), Action::Drop);
        assert_eq!(e.dropped(), 6);
        e.reset();
        assert_eq!(e.dropped(), 0);
    }

    #[test]
    fn model_agrees_with_native_on_crafted_packets() {
        let e = CheckIPHeader::new();
        let mut cases = vec![
            ip_packet(),
            ip_packet_with_options(),
            Packet::from_bytes(vec![]),
            Packet::from_bytes(vec![0x45; 19]),
            Packet::from_bytes(vec![0x45; 20]),
        ];
        // A few targeted corruptions.
        for (i, mask) in [
            (0usize, 0xf0u8),
            (0, 0x0f),
            (2, 0xff),
            (3, 0x7f),
            (10, 0x01),
            (8, 0x80),
        ] {
            let mut p = ip_packet();
            p.bytes_mut()[i] ^= mask;
            cases.push(p);
        }
        for p in cases {
            let mut native_e = CheckIPHeader::new();
            let native = native_e.process(p.clone());
            let (model, _) = run_model(&e, &p);
            assert_eq!(native.port(), model.port(), "packet {:?}", p.bytes());
            assert!(!model.is_crash());
        }
    }

    #[test]
    fn model_agrees_with_native_on_random_workload() {
        let e = CheckIPHeader::new();
        let mut gen = WorkloadGen::adversarial(0xC0FFEE);
        for frame in gen.batch(200) {
            // Strip the Ethernet header as EthDecap would; skip frames that
            // are too short to strip.
            if frame.len() < ETHERNET_HEADER_LEN {
                continue;
            }
            let p = Packet::from_bytes(frame.bytes()[ETHERNET_HEADER_LEN..].to_vec());
            let mut native_e = CheckIPHeader::new();
            let native = native_e.process(p.clone());
            let (model, _) = run_model(&e, &p);
            assert_eq!(native.port(), model.port());
            assert!(!model.is_crash());
        }
    }

    #[test]
    fn never_crashes_on_arbitrary_short_inputs() {
        let e = CheckIPHeader::new();
        for len in 0..64 {
            let p = Packet::from_bytes(vec![0x45u8; len]);
            let (model, _) = run_model(&e, &p);
            assert!(!model.is_crash(), "len {len}");
        }
    }

    #[test]
    fn instruction_count_grows_with_header_size() {
        let e = CheckIPHeader::new();
        let (_, no_opts) = run_model(&e, &ip_packet());
        let (_, with_opts) = run_model(&e, &ip_packet_with_options());
        assert!(
            with_opts > no_opts,
            "options header should cost more instructions ({with_opts} vs {no_opts})"
        );
    }
}

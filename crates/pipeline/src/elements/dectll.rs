//! `DecTTL` — decrements the IPv4 TTL and updates the header checksum
//! incrementally (RFC 1624), like Click's `DecIPTTL`. Packets whose TTL is 0
//! or 1 are dropped (a full router would send an ICMP time-exceeded; the
//! paper's verified pipeline drops them).
//!
//! Expects the IP header at offset 0.

use crate::element::{Action, Element};
use crate::elements::common::{self, ip_field};
use dataplane_ir::builder::{Block, ProgramBuilder};
use dataplane_ir::expr::dsl::*;
use dataplane_ir::Program;
use dataplane_net::Packet;

/// The DecTTL element.
#[derive(Debug, Default)]
pub struct DecTTL {
    expired: u64,
}

impl DecTTL {
    /// New TTL decrementer.
    pub fn new() -> Self {
        DecTTL::default()
    }

    /// Number of packets dropped because their TTL expired.
    pub fn expired(&self) -> u64 {
        self.expired
    }
}

impl Element for DecTTL {
    fn type_name(&self) -> &'static str {
        "DecTTL"
    }
    fn output_ports(&self) -> usize {
        1
    }
    fn process(&mut self, mut packet: Packet) -> Action {
        // The element itself guards the accesses it performs, so it cannot
        // crash even on packets that bypassed CheckIPHeader.
        let Some(ttl) = packet.get_u8(ip_field::TTL as usize) else {
            return Action::Drop;
        };
        if ttl <= 1 {
            self.expired += 1;
            return Action::Drop;
        }
        let Some(old_sum) = packet.get_u16(ip_field::CHECKSUM as usize) else {
            return Action::Drop;
        };
        packet.set_u8(ip_field::TTL as usize, ttl - 1);
        let new_sum = common::native_ttl_checksum_update(old_sum);
        packet.set_u16(ip_field::CHECKSUM as usize, new_sum);
        Action::Emit(0, packet)
    }
    fn model(&self) -> Program {
        let mut pb = ProgramBuilder::new("DecTTL", 1);
        let ttl = pb.local("ttl", 8);
        let old_sum = pb.local("old_sum", 32);

        let mut b = Block::new();
        // Guard: need at least the 12 bytes covering TTL and checksum.
        b.if_then(
            ult(pkt_len(), c(32, 12)),
            Block::with(|bb| {
                bb.drop_packet();
            }),
        );
        b.assign(ttl, pkt(ip_field::TTL, 1));
        b.if_then(
            ule(l(ttl), c(8, 1)),
            Block::with(|bb| {
                bb.drop_packet();
            }),
        );
        b.assign(old_sum, zext(pkt(ip_field::CHECKSUM, 2), 32));
        b.pkt_store(ip_field::TTL, 1, sub(l(ttl), c(8, 1)));
        b.pkt_store(
            ip_field::CHECKSUM,
            2,
            trunc(common::model_ttl_checksum_update(l(old_sum)), 16),
        );
        b.emit(0);
        pb.finish(b).expect("DecTTL model is valid")
    }
    fn reset(&mut self) {
        self.expired = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::run_model;
    use dataplane_net::checksum;
    use dataplane_net::ethernet::ETHERNET_HEADER_LEN;
    use dataplane_net::PacketBuilder;
    use std::net::Ipv4Addr;

    fn ip_packet(ttl: u8) -> Packet {
        let frame = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 168, 0, 1),
            1000,
            53,
            b"x",
        )
        .ttl(ttl)
        .build();
        Packet::from_bytes(frame.bytes()[ETHERNET_HEADER_LEN..].to_vec())
    }

    #[test]
    fn decrements_ttl_and_keeps_checksum_valid() {
        let mut e = DecTTL::new();
        match e.process(ip_packet(64)) {
            Action::Emit(0, p) => {
                assert_eq!(p.bytes()[8], 63);
                assert!(checksum::verify(&p.bytes()[..20]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn drops_expiring_packets() {
        let mut e = DecTTL::new();
        assert_eq!(e.process(ip_packet(0)), Action::Drop);
        assert_eq!(e.process(ip_packet(1)), Action::Drop);
        assert_eq!(e.expired(), 2);
        e.reset();
        assert_eq!(e.expired(), 0);
    }

    #[test]
    fn drops_rather_than_crashes_on_short_packets() {
        let mut e = DecTTL::new();
        for len in 0..12 {
            assert_eq!(e.process(Packet::from_bytes(vec![0u8; len])), Action::Drop);
        }
    }

    #[test]
    fn model_agrees_with_native() {
        let e = DecTTL::new();
        let mut cases: Vec<Packet> = (0..5).map(|t| ip_packet(t * 60 + 2)).collect();
        cases.push(ip_packet(0));
        cases.push(ip_packet(1));
        cases.push(Packet::from_bytes(vec![0u8; 5]));
        cases.push(Packet::from_bytes(vec![0u8; 12]));
        for p in cases {
            let mut native_e = DecTTL::new();
            let native = native_e.process(p.clone());
            let (model, _) = run_model(&e, &p);
            match (native, model) {
                (Action::Emit(0, n), Action::Emit(0, m)) => assert_eq!(n.bytes(), m.bytes()),
                (Action::Drop, Action::Drop) => {}
                other => panic!("mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn repeated_decrements_stay_consistent() {
        // Forward the same packet through DecTTL many times; the checksum
        // must stay valid the whole way down, and the last emitted packet has
        // TTL 1 (the next pass drops it).
        let mut e = DecTTL::new();
        let mut pkt = ip_packet(30);
        loop {
            match e.process(pkt.clone()) {
                Action::Emit(0, p) => {
                    assert!(checksum::verify(&p.bytes()[..20]));
                    pkt = p;
                }
                Action::Drop => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(pkt.bytes()[8], 1);
        assert_eq!(e.expired(), 1);
    }
}

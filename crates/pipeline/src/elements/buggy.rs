//! Deliberately defective elements used for **failure injection**.
//!
//! The paper's verifier exists to catch exactly these defect classes — "a
//! segmentation fault, a kernel panic, a division by 0, a failed assertion, a
//! counter overflow" — before they reach the network. The test suite and the
//! benches plant these elements into otherwise-correct pipelines and check
//! that the verifier (a) reports the violation and (b) produces a witness
//! packet that really does trigger it when replayed concretely.
//!
//! None of these elements should ever be deployed; they are test fixtures.

use crate::element::{Action, Element};
use crate::elements::common::ip_field;
use dataplane_ir::builder::{Block, ProgramBuilder};
use dataplane_ir::expr::dsl::*;
use dataplane_ir::{CrashReason, Program};
use dataplane_net::Packet;

/// A TTL decrementer that divides by the TTL before checking it, crashing on
/// TTL = 0 (division by zero — the real-world analog is a normalisation step
/// that assumes "TTL is always positive here").
#[derive(Debug, Default)]
pub struct BuggyDecTTL;

impl BuggyDecTTL {
    /// New buggy element.
    pub fn new() -> Self {
        BuggyDecTTL
    }
}

impl Element for BuggyDecTTL {
    fn type_name(&self) -> &'static str {
        "BuggyDecTTL"
    }
    fn output_ports(&self) -> usize {
        1
    }
    fn process(&mut self, mut packet: Packet) -> Action {
        let Some(ttl) = packet.get_u8(ip_field::TTL as usize) else {
            return Action::Drop;
        };
        // BUG: divides by the TTL before checking it is non-zero.
        if ttl == 0 {
            return Action::Crash(CrashReason::DivisionByZero);
        }
        let _budget = 255 / ttl;
        if ttl == 1 {
            return Action::Drop;
        }
        packet.set_u8(ip_field::TTL as usize, ttl - 1);
        Action::Emit(0, packet)
    }
    fn model(&self) -> Program {
        let mut pb = ProgramBuilder::new("BuggyDecTTL", 1);
        let ttl = pb.local("ttl", 8);
        let budget = pb.local("budget", 8);
        let mut b = Block::new();
        b.if_then(
            ult(pkt_len(), c(32, 12)),
            Block::with(|bb| {
                bb.drop_packet();
            }),
        );
        b.assign(ttl, pkt(ip_field::TTL, 1));
        // BUG: the division happens before the TTL check.
        b.assign(budget, udiv(c(8, 255), l(ttl)));
        b.if_then(
            eq(l(ttl), c(8, 1)),
            Block::with(|bb| {
                bb.drop_packet();
            }),
        );
        b.pkt_store(ip_field::TTL, 1, sub(l(ttl), c(8, 1)));
        b.emit(0);
        pb.finish(b).expect("BuggyDecTTL model is valid")
    }
}

/// An IP-options walker that trusts the option length byte without checking
/// it stays inside the header, so a crafted packet makes it read (and write)
/// past the end of the buffer — the segmentation-fault class.
#[derive(Debug, Default)]
pub struct UncheckedOptions;

impl UncheckedOptions {
    /// New buggy element.
    pub fn new() -> Self {
        UncheckedOptions
    }
}

impl Element for UncheckedOptions {
    fn type_name(&self) -> &'static str {
        "UncheckedOptions"
    }
    fn output_ports(&self) -> usize {
        1
    }
    fn process(&mut self, packet: Packet) -> Action {
        let bytes = packet.bytes();
        let Some(ver_ihl) = bytes.first().copied() else {
            return Action::Drop;
        };
        let ihl = (ver_ihl & 0x0f) as usize;
        if ihl <= 5 {
            return Action::Emit(0, packet);
        }
        let hl = ihl * 4;
        let mut i = 20usize;
        let mut iters = 0;
        while i < hl {
            iters += 1;
            if iters > 40 {
                return Action::Crash(CrashReason::LoopBoundExceeded { max_iters: 40 });
            }
            let Some(kind) = bytes.get(i).copied() else {
                return Action::Crash(CrashReason::PacketOutOfBounds {
                    offset: i as u64,
                    width_bytes: 1,
                    packet_len: bytes.len() as u64,
                });
            };
            if kind == 0 {
                break;
            }
            if kind == 1 {
                i += 1;
                continue;
            }
            // BUG: reads the length byte without checking i+1 < hl and never
            // validates the length itself.
            let Some(optlen) = bytes.get(i + 1).copied() else {
                return Action::Crash(CrashReason::PacketOutOfBounds {
                    offset: (i + 1) as u64,
                    width_bytes: 1,
                    packet_len: bytes.len() as u64,
                });
            };
            if optlen == 0 {
                // BUG: a zero length loops forever; the bounded model crashes
                // on the loop bound instead.
                return Action::Crash(CrashReason::LoopBoundExceeded { max_iters: 40 });
            }
            i += optlen as usize;
        }
        Action::Emit(0, packet)
    }
    fn model(&self) -> Program {
        let mut pb = ProgramBuilder::new("UncheckedOptions", 1);
        let ihl = pb.local("ihl", 32);
        let hl = pb.local("hl", 32);
        let i = pb.local("i", 32);
        let kind = pb.local("kind", 8);
        let optlen = pb.local("optlen", 32);
        let mut b = Block::new();
        b.if_then(
            ult(pkt_len(), c(32, 1)),
            Block::with(|bb| {
                bb.drop_packet();
            }),
        );
        b.assign(ihl, zext(and(pkt(ip_field::VER_IHL, 1), c(8, 0x0f)), 32));
        b.if_then(
            ule(l(ihl), c(32, 5)),
            Block::with(|bb| {
                bb.emit(0);
            }),
        );
        b.assign(hl, mul(l(ihl), c(32, 4)));
        b.assign(i, c(32, 20));
        b.loop_bounded(
            40,
            ult(l(i), l(hl)),
            Block::with(|lb| {
                lb.assign(kind, pkt_at(l(i), 1));
                lb.if_else(
                    eq(l(kind), c(8, 0)),
                    Block::with(|eol| {
                        eol.assign(i, l(hl));
                    }),
                    Block::with(|not_eol| {
                        not_eol.if_else(
                            eq(l(kind), c(8, 1)),
                            Block::with(|nop| {
                                nop.assign(i, add(l(i), c(32, 1)));
                            }),
                            Block::with(|multi| {
                                // BUG: no bounds or sanity checks at all.
                                multi.assign(optlen, zext(pkt_at(add(l(i), c(32, 1)), 1), 32));
                                multi.assign(i, add(l(i), l(optlen)));
                            }),
                        );
                    }),
                );
            }),
        );
        b.emit(0);
        pb.finish(b).expect("UncheckedOptions model is valid")
    }
}

/// A classifier that peeks at byte 60 of the packet without checking the
/// packet is that long — crashes on every short frame.
#[derive(Debug, Default)]
pub struct BrokenClassifier;

impl BrokenClassifier {
    /// New buggy element.
    pub fn new() -> Self {
        BrokenClassifier
    }
}

impl Element for BrokenClassifier {
    fn type_name(&self) -> &'static str {
        "BrokenClassifier"
    }
    fn output_ports(&self) -> usize {
        2
    }
    fn process(&mut self, packet: Packet) -> Action {
        // BUG: unconditional deep read.
        match packet.get_u16(60) {
            Some(0xBEEF) => Action::Emit(1, packet),
            Some(_) => Action::Emit(0, packet),
            None => Action::Crash(CrashReason::PacketOutOfBounds {
                offset: 60,
                width_bytes: 2,
                packet_len: packet.len() as u64,
            }),
        }
    }
    fn model(&self) -> Program {
        let pb = ProgramBuilder::new("BrokenClassifier", 2);
        let mut b = Block::new();
        b.if_else(
            eq(pkt(60, 2), c(16, 0xBEEF)),
            Block::with(|bb| {
                bb.emit(1);
            }),
            Block::with(|bb| {
                bb.emit(0);
            }),
        );
        pb.finish(b).expect("BrokenClassifier model is valid")
    }
}

/// A flow counter whose per-flow counter is only 8 bits wide and asserts it
/// never wraps — the "counter overflow" defect class from the paper. The
/// 257th packet of a flow fails the assertion.
#[derive(Debug, Default)]
pub struct OverflowingCounter {
    counts: std::collections::HashMap<u64, u64>,
}

impl OverflowingCounter {
    /// New buggy element.
    pub fn new() -> Self {
        OverflowingCounter::default()
    }
}

impl Element for OverflowingCounter {
    fn type_name(&self) -> &'static str {
        "OverflowingCounter"
    }
    fn output_ports(&self) -> usize {
        1
    }
    fn process(&mut self, packet: Packet) -> Action {
        let Some(src) = packet.get_u32(ip_field::SRC as usize) else {
            return Action::Drop;
        };
        let count = self.counts.entry(src as u64).or_insert(0);
        if *count >= 255 {
            return Action::Crash(CrashReason::AssertionFailed {
                message: "per-flow counter overflow".to_string(),
            });
        }
        *count += 1;
        Action::Emit(0, packet)
    }
    fn model(&self) -> Program {
        let mut pb = ProgramBuilder::new("OverflowingCounter", 1);
        let counts = pb.private_map("counts", 64, 8, 0);
        let src = pb.local("src", 32);
        let count = pb.local("count", 8);
        let mut b = Block::new();
        b.if_then(
            ult(pkt_len(), c(32, 16)),
            Block::with(|bb| {
                bb.drop_packet();
            }),
        );
        b.assign(src, pkt(ip_field::SRC, 4));
        b.assign(count, ds_read(counts, zext(l(src), 64)));
        b.assert(ult(l(count), c(8, 255)), "per-flow counter overflow");
        b.ds_write(counts, zext(l(src), 64), add(l(count), c(8, 1)));
        b.emit(0);
        pb.finish(b).expect("OverflowingCounter model is valid")
    }
    fn reset(&mut self) {
        self.counts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::run_model;
    use dataplane_net::ethernet::ETHERNET_HEADER_LEN;
    use dataplane_net::PacketBuilder;
    use std::net::Ipv4Addr;

    fn ip_packet(ttl: u8) -> Packet {
        let frame = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 168, 0, 1),
            1,
            2,
            b"x",
        )
        .ttl(ttl)
        .build();
        Packet::from_bytes(frame.bytes()[ETHERNET_HEADER_LEN..].to_vec())
    }

    #[test]
    fn buggy_dec_ttl_crashes_only_on_zero_ttl() {
        let mut e = BuggyDecTTL::new();
        assert!(e.process(ip_packet(0)).is_crash());
        assert_eq!(e.process(ip_packet(1)), Action::Drop);
        assert_eq!(e.process(ip_packet(64)).port(), Some(0));
        // Model agrees.
        let model_el = BuggyDecTTL::new();
        for ttl in [0u8, 1, 5] {
            let (m, _) = run_model(&model_el, &ip_packet(ttl));
            let mut n = BuggyDecTTL::new();
            let native = n.process(ip_packet(ttl));
            assert_eq!(m.is_crash(), native.is_crash(), "ttl {ttl}");
            assert_eq!(m.port(), native.port(), "ttl {ttl}");
        }
    }

    #[test]
    fn unchecked_options_crashes_on_crafted_header() {
        let mut e = UncheckedOptions::new();
        // Claims a 40-byte header but the buffer is only 22 bytes.
        let mut bytes = vec![0u8; 22];
        bytes[0] = 0x4a;
        bytes[20] = 7; // a multi-byte option kind
        bytes[21] = 4; // next option sits past the end of the buffer
        assert!(e.process(Packet::from_bytes(bytes.clone())).is_crash());
        let (m, _) = run_model(&UncheckedOptions::new(), &Packet::from_bytes(bytes));
        assert!(m.is_crash());
        // Well-formed packets still pass.
        assert_eq!(e.process(ip_packet(64)).port(), Some(0));
    }

    #[test]
    fn unchecked_options_zero_length_loops() {
        let mut e = UncheckedOptions::new();
        let frame = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 168, 0, 1),
            1,
            2,
            b"x",
        )
        .ip_options(&[7, 0, 0, 0])
        .build();
        let p = Packet::from_bytes(frame.bytes()[ETHERNET_HEADER_LEN..].to_vec());
        assert!(e.process(p.clone()).is_crash());
        let (m, _) = run_model(&UncheckedOptions::new(), &p);
        assert!(m.is_crash());
    }

    #[test]
    fn broken_classifier_crashes_on_short_frames() {
        let mut e = BrokenClassifier::new();
        assert!(e.process(Packet::from_bytes(vec![0u8; 40])).is_crash());
        assert_eq!(e.process(Packet::from_bytes(vec![0u8; 64])).port(), Some(0));
        let mut tagged = vec![0u8; 64];
        tagged[60] = 0xBE;
        tagged[61] = 0xEF;
        assert_eq!(e.process(Packet::from_bytes(tagged)).port(), Some(1));
        // Model agrees on both dispositions.
        for len in [10usize, 64] {
            let p = Packet::from_bytes(vec![0u8; len]);
            let (m, _) = run_model(&BrokenClassifier::new(), &p);
            let mut n = BrokenClassifier::new();
            assert_eq!(m.is_crash(), n.process(p).is_crash(), "len {len}");
        }
    }

    #[test]
    fn overflowing_counter_crashes_on_the_256th_packet() {
        let mut e = OverflowingCounter::new();
        let p = ip_packet(64);
        for i in 0..255 {
            assert_eq!(e.process(p.clone()).port(), Some(0), "packet {i}");
        }
        assert!(e.process(p.clone()).is_crash());
        e.reset();
        assert_eq!(e.process(p).port(), Some(0));
    }
}

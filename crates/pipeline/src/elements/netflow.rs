//! `NetFlow` — per-flow packet counting, the canonical *stateful* element the
//! paper uses to motivate the data-structure abstraction ("a hash table for
//! per-flow statistics").
//!
//! The flow table is **private state**: owned by this element, mutated on
//! every packet, never shared. Both the native implementation and the model
//! key the table by the same 64-bit fold of the 5-tuple so that their
//! collision behaviour is identical.
//!
//! Expects the IP header at offset 0.

use crate::element::{Action, Element};
use crate::elements::common::ip_field;
use dataplane_ir::builder::{Block, ProgramBuilder};
use dataplane_ir::expr::dsl::*;
use dataplane_ir::Program;
use dataplane_net::ipv4::{PROTO_TCP, PROTO_UDP};
use dataplane_net::Packet;
use std::collections::HashMap;

/// The NetFlow element.
#[derive(Debug, Default)]
pub struct NetFlow {
    flows: HashMap<u64, u64>,
    total: u64,
}

impl NetFlow {
    /// New flow counter.
    pub fn new() -> Self {
        NetFlow::default()
    }

    /// Number of distinct flow keys observed.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Total packets counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Packets counted for one flow key.
    pub fn count_for(&self, key: u64) -> u64 {
        self.flows.get(&key).copied().unwrap_or(0)
    }

    /// The 64-bit flow key: `(src_ip, dst_ip)` in the high/low words XORed
    /// with the ports and protocol. The model computes exactly this.
    pub fn flow_key(src: u32, dst: u32, sport: u16, dport: u16, proto: u8) -> u64 {
        let base = ((src as u64) << 32) | dst as u64;
        base ^ ((sport as u64) << 24) ^ ((dport as u64) << 8) ^ proto as u64
    }

    /// Extract the key fields from a packet the same way the model does.
    /// Ports are read only when the protocol is TCP/UDP and the packet is
    /// long enough; otherwise they are zero.
    pub fn key_of(packet: &Packet) -> Option<u64> {
        let src = packet.get_u32(ip_field::SRC as usize)?;
        let dst = packet.get_u32(ip_field::DST as usize)?;
        let proto = packet.get_u8(ip_field::PROTOCOL as usize)?;
        let ver_ihl = packet.get_u8(0)?;
        let hl = ((ver_ihl & 0x0f) as usize) * 4;
        let (sport, dport) = if (proto == PROTO_UDP || proto == PROTO_TCP) && packet.len() >= hl + 4
        {
            (
                packet.get_u16(hl).unwrap_or(0),
                packet.get_u16(hl + 2).unwrap_or(0),
            )
        } else {
            (0, 0)
        };
        Some(Self::flow_key(src, dst, sport, dport, proto))
    }
}

impl Element for NetFlow {
    fn type_name(&self) -> &'static str {
        "NetFlow"
    }
    fn output_ports(&self) -> usize {
        1
    }
    fn process(&mut self, packet: Packet) -> Action {
        if packet.len() < 20 {
            // Not an IP header we can account; pass through uncounted.
            return Action::Emit(0, packet);
        }
        if let Some(key) = Self::key_of(&packet) {
            *self.flows.entry(key).or_insert(0) += 1;
            self.total += 1;
        }
        Action::Emit(0, packet)
    }
    fn model(&self) -> Program {
        let mut pb = ProgramBuilder::new("NetFlow", 1);
        let flows = pb.private_map("flows", 64, 64, 0);
        let src = pb.local("src", 32);
        let dst = pb.local("dst", 32);
        let proto = pb.local("proto", 8);
        let hl = pb.local("hl", 32);
        let sport = pb.local("sport", 16);
        let dport = pb.local("dport", 16);
        let key = pb.local("key", 64);

        let mut b = Block::new();
        b.if_then(
            ult(pkt_len(), c(32, 20)),
            Block::with(|bb| {
                bb.emit(0);
            }),
        );
        b.assign(src, pkt(ip_field::SRC, 4));
        b.assign(dst, pkt(ip_field::DST, 4));
        b.assign(proto, pkt(ip_field::PROTOCOL, 1));
        b.assign(
            hl,
            mul(
                zext(and(pkt(ip_field::VER_IHL, 1), c(8, 0x0f)), 32),
                c(32, 4),
            ),
        );
        b.assign(sport, c(16, 0));
        b.assign(dport, c(16, 0));
        b.if_then(
            band(
                bor(
                    eq(l(proto), c(8, PROTO_UDP as u64)),
                    eq(l(proto), c(8, PROTO_TCP as u64)),
                ),
                uge(pkt_len(), add(l(hl), c(32, 4))),
            ),
            Block::with(|bb| {
                bb.assign(sport, pkt_at(l(hl), 2));
                bb.assign(dport, pkt_at(add(l(hl), c(32, 2)), 2));
            }),
        );
        // key = (src << 32 | dst) ^ (sport << 24) ^ (dport << 8) ^ proto
        b.assign(
            key,
            xor(
                xor(
                    xor(
                        or(shl(zext(l(src), 64), c(64, 32)), zext(l(dst), 64)),
                        shl(zext(l(sport), 64), c(64, 24)),
                    ),
                    shl(zext(l(dport), 64), c(64, 8)),
                ),
                zext(l(proto), 64),
            ),
        );
        b.ds_write(flows, l(key), add(ds_read(flows, l(key)), c(64, 1)));
        b.emit(0);
        pb.finish(b).expect("NetFlow model is valid")
    }
    fn reset(&mut self) {
        self.flows.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{build_model_state, run_model, run_model_with_state};
    use dataplane_ir::DsId;
    use dataplane_net::ethernet::ETHERNET_HEADER_LEN;
    use dataplane_net::PacketBuilder;
    use std::net::Ipv4Addr;

    fn udp_packet(src: Ipv4Addr, dst: Ipv4Addr, sport: u16, dport: u16) -> Packet {
        let frame = PacketBuilder::udp(src, dst, sport, dport, b"data").build();
        Packet::from_bytes(frame.bytes()[ETHERNET_HEADER_LEN..].to_vec())
    }

    #[test]
    fn counts_packets_per_flow() {
        let mut e = NetFlow::new();
        let a = udp_packet(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 1, 2);
        let b = udp_packet(Ipv4Addr::new(10, 0, 0, 3), Ipv4Addr::new(10, 0, 0, 4), 5, 6);
        e.process(a.clone());
        e.process(a.clone());
        e.process(b.clone());
        assert_eq!(e.flow_count(), 2);
        assert_eq!(e.total(), 3);
        let key_a = NetFlow::key_of(&a).unwrap();
        let key_b = NetFlow::key_of(&b).unwrap();
        assert_eq!(e.count_for(key_a), 2);
        assert_eq!(e.count_for(key_b), 1);
        assert_eq!(e.count_for(12345), 0);
        e.reset();
        assert_eq!(e.flow_count(), 0);
        assert_eq!(e.total(), 0);
    }

    #[test]
    fn flow_key_distinguishes_directions_and_ports() {
        let k1 = NetFlow::flow_key(1, 2, 10, 20, 17);
        let k2 = NetFlow::flow_key(2, 1, 20, 10, 17);
        let k3 = NetFlow::flow_key(1, 2, 10, 21, 17);
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
    }

    #[test]
    fn short_and_non_transport_packets_pass_through() {
        let mut e = NetFlow::new();
        assert_eq!(
            e.process(Packet::from_bytes(vec![0x45; 10])).port(),
            Some(0)
        );
        let frame =
            PacketBuilder::icmp_echo(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2)).build();
        let icmp = Packet::from_bytes(frame.bytes()[ETHERNET_HEADER_LEN..].to_vec());
        assert_eq!(e.process(icmp).port(), Some(0));
        assert_eq!(e.total(), 1); // ICMP counted (ports zero), short packet not
    }

    #[test]
    fn model_counts_like_native_across_a_stream() {
        let e = NetFlow::new();
        let mut native = NetFlow::new();
        let mut model_state = build_model_state(&e);

        let packets: Vec<Packet> = (0..20)
            .map(|i| {
                udp_packet(
                    Ipv4Addr::new(10, 0, 0, (i % 3) as u8 + 1),
                    Ipv4Addr::new(192, 168, 0, 1),
                    1000 + (i % 3) as u16,
                    53,
                )
            })
            .collect();

        for p in &packets {
            let n = native.process(p.clone());
            let (m, _) = run_model_with_state(&e, p, &mut model_state);
            assert_eq!(n.port(), m.port());
        }
        // The model's flow map and the native map agree on every key.
        let store = model_state.store(DsId(0)).unwrap();
        assert_eq!(store.populated_entries(), native.flow_count());
        for (key, count) in store.iter_populated() {
            assert_eq!(native.count_for(key), count);
        }
    }

    #[test]
    fn single_packet_model_matches_native_disposition() {
        let e = NetFlow::new();
        let p = udp_packet(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 9, 9);
        let (m, instructions) = run_model(&e, &p);
        assert_eq!(m.port(), Some(0));
        assert!(instructions > 10);
    }
}

//! `IPOptions` — walks and processes the IPv4 options area (record-route
//! handling), the loop-heavy element the paper singles out: symbolically
//! executing it naively "would take months", which is what motivates loop
//! decomposition.
//!
//! Deliberate design point for the reproduction: like the Click original,
//! this element **relies on `CheckIPHeader` having already validated** that
//! the packet really contains `IHL * 4` header bytes. In isolation its
//! segments can therefore read past the end of a short packet (a crash); in
//! the composed pipeline those segments are infeasible — exactly the
//! suspect-then-discharged pattern of Figure 2 of the paper.
//!
//! Expects the IP header at offset 0.

use crate::element::{Action, Element};
use crate::elements::common::{self, ip_field};
use dataplane_ir::builder::{Block, ProgramBuilder};
use dataplane_ir::expr::dsl::*;
use dataplane_ir::{CrashReason, Program};
use dataplane_net::ipv4::{IPOPT_EOL, IPOPT_NOP, IPOPT_RR};
use dataplane_net::Packet;
use std::net::Ipv4Addr;

/// Upper bound on option-walk iterations: options occupy at most 40 bytes
/// (IHL 15 → 60-byte header, minus the 20 fixed bytes) and every iteration
/// advances by at least one byte.
const MAX_OPTION_ITERS: u32 = 40;
/// Maximum number of 16-bit words in an IPv4 header.
const MAX_HEADER_WORDS: u32 = 30;

/// The IPOptions element.
#[derive(Debug)]
pub struct IPOptions {
    /// Address written into record-route slots (the router's own address).
    router_addr: Ipv4Addr,
    malformed: u64,
}

impl IPOptions {
    /// Create the element with the router address used to fill record-route
    /// slots.
    pub fn new(router_addr: Ipv4Addr) -> Self {
        IPOptions {
            router_addr,
            malformed: 0,
        }
    }

    /// Default router address used by the reference pipeline.
    pub fn with_default_addr() -> Self {
        IPOptions::new(Ipv4Addr::new(10, 255, 255, 254))
    }

    /// Number of packets dropped because their options were malformed.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    fn read_u8(bytes: &[u8], off: usize) -> Result<u8, CrashReason> {
        bytes
            .get(off)
            .copied()
            .ok_or(CrashReason::PacketOutOfBounds {
                offset: off as u64,
                width_bytes: 1,
                packet_len: bytes.len() as u64,
            })
    }

    fn write_u8(bytes: &mut [u8], off: usize, v: u8) -> Result<(), CrashReason> {
        match bytes.get_mut(off) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(CrashReason::PacketOutOfBounds {
                offset: off as u64,
                width_bytes: 1,
                packet_len: bytes.len() as u64,
            }),
        }
    }

    /// The option-walking logic. Mirrors the IR model statement for
    /// statement; returns the action the element takes.
    fn walk(&mut self, packet: &mut Packet) -> Result<Option<Action>, CrashReason> {
        let router = u32::from(self.router_addr);
        let bytes = packet.bytes_mut();
        let ver_ihl = Self::read_u8(bytes, ip_field::VER_IHL as usize)?;
        let ihl = (ver_ihl & 0x0f) as usize;
        let hl = ihl * 4;
        if ihl <= 5 {
            return Ok(None); // no options: pass through untouched
        }
        let mut modified = false;
        let mut i = 20usize;
        let mut iters = 0u32;
        while i < hl {
            iters += 1;
            if iters > MAX_OPTION_ITERS {
                return Err(CrashReason::LoopBoundExceeded {
                    max_iters: MAX_OPTION_ITERS,
                });
            }
            let kind = Self::read_u8(bytes, i)?;
            if kind == IPOPT_EOL {
                i = hl;
            } else if kind == IPOPT_NOP {
                i += 1;
            } else {
                if i + 1 >= hl {
                    self.malformed += 1;
                    return Ok(Some(Action::Drop));
                }
                let optlen = Self::read_u8(bytes, i + 1)? as usize;
                if optlen < 2 {
                    self.malformed += 1;
                    return Ok(Some(Action::Drop));
                }
                if i + optlen > hl {
                    self.malformed += 1;
                    return Ok(Some(Action::Drop));
                }
                if kind == IPOPT_RR && optlen >= 3 {
                    let ptr = Self::read_u8(bytes, i + 2)? as usize;
                    if ptr >= 4 && ptr + 3 <= optlen {
                        let slot = i + ptr - 1;
                        for (j, b) in router.to_be_bytes().iter().enumerate() {
                            Self::write_u8(bytes, slot + j, *b)?;
                        }
                        Self::write_u8(bytes, i + 2, (ptr + 4) as u8)?;
                        modified = true;
                    }
                }
                i += optlen;
            }
        }
        if modified {
            // Recompute the header checksum over the (possibly rewritten)
            // header, mirroring Click's SetIPChecksum behaviour.
            if bytes.len() < hl {
                return Err(CrashReason::PacketOutOfBounds {
                    offset: hl as u64 - 1,
                    width_bytes: 1,
                    packet_len: bytes.len() as u64,
                });
            }
            let c = common::native_ip_checksum(bytes, ihl * 2);
            bytes[10..12].copy_from_slice(&c.to_be_bytes());
        }
        Ok(None)
    }
}

impl Element for IPOptions {
    fn type_name(&self) -> &'static str {
        "IPOptions"
    }
    fn config_key(&self) -> String {
        self.router_addr.to_string()
    }
    fn config_args(&self) -> Option<String> {
        Some(self.router_addr.to_string())
    }
    fn output_ports(&self) -> usize {
        1
    }
    fn process(&mut self, mut packet: Packet) -> Action {
        match self.walk(&mut packet) {
            Ok(Some(action)) => action,
            Ok(None) => Action::Emit(0, packet),
            Err(reason) => Action::Crash(reason),
        }
    }
    fn model(&self) -> Program {
        let router = u32::from(self.router_addr) as u64;
        let mut pb = ProgramBuilder::new("IPOptions", 1);
        let ihl = pb.local("ihl", 32);
        let hl = pb.local("hl", 32);
        let i = pb.local("i", 32);
        let kind = pb.local("kind", 8);
        let optlen = pb.local("optlen", 32);
        let ptr = pb.local("ptr", 32);
        let modified = pb.local("modified", 1);
        let sum = pb.local("sum", 32);
        let idx = pb.local("idx", 32);

        let mut b = Block::new();
        b.assign(ihl, zext(and(pkt(ip_field::VER_IHL, 1), c(8, 0x0f)), 32));
        b.assign(hl, mul(l(ihl), c(32, 4)));
        b.if_then(
            ule(l(ihl), c(32, 5)),
            Block::with(|bb| {
                bb.emit(0);
            }),
        );
        b.assign(i, c(32, 20));
        b.assign(modified, cbool(false));
        b.loop_bounded(
            MAX_OPTION_ITERS,
            ult(l(i), l(hl)),
            Block::with(|lb| {
                lb.assign(kind, pkt_at(l(i), 1));
                lb.if_else(
                    eq(l(kind), c(8, IPOPT_EOL as u64)),
                    Block::with(|eol| {
                        eol.assign(i, l(hl));
                    }),
                    Block::with(|not_eol| {
                        not_eol.if_else(
                            eq(l(kind), c(8, IPOPT_NOP as u64)),
                            Block::with(|nop| {
                                nop.assign(i, add(l(i), c(32, 1)));
                            }),
                            Block::with(|multi| {
                                // Multi-byte option: need a length byte inside
                                // the header.
                                multi.if_then(
                                    uge(add(l(i), c(32, 1)), l(hl)),
                                    Block::with(|bb| {
                                        bb.drop_packet();
                                    }),
                                );
                                multi.assign(optlen, zext(pkt_at(add(l(i), c(32, 1)), 1), 32));
                                multi.if_then(
                                    ult(l(optlen), c(32, 2)),
                                    Block::with(|bb| {
                                        bb.drop_packet();
                                    }),
                                );
                                multi.if_then(
                                    ugt(add(l(i), l(optlen)), l(hl)),
                                    Block::with(|bb| {
                                        bb.drop_packet();
                                    }),
                                );
                                // Record-route processing.
                                multi.if_then(
                                    band(
                                        eq(l(kind), c(8, IPOPT_RR as u64)),
                                        uge(l(optlen), c(32, 3)),
                                    ),
                                    Block::with(|rr| {
                                        rr.assign(ptr, zext(pkt_at(add(l(i), c(32, 2)), 1), 32));
                                        rr.if_then(
                                            band(
                                                uge(l(ptr), c(32, 4)),
                                                ule(add(l(ptr), c(32, 3)), l(optlen)),
                                            ),
                                            Block::with(|write| {
                                                write.pkt_store_at(
                                                    sub(add(l(i), l(ptr)), c(32, 1)),
                                                    4,
                                                    c(32, router),
                                                );
                                                write.pkt_store_at(
                                                    add(l(i), c(32, 2)),
                                                    1,
                                                    trunc(add(l(ptr), c(32, 4)), 8),
                                                );
                                                write.assign(modified, cbool(true));
                                            }),
                                        );
                                    }),
                                );
                                multi.assign(i, add(l(i), l(optlen)));
                            }),
                        );
                    }),
                );
            }),
        );
        // Recompute the checksum if we rewrote any option bytes.
        b.if_then(
            l(modified),
            Block::with(|fix| {
                fix.pkt_store(ip_field::CHECKSUM, 2, c(16, 0));
                common::model_ip_checksum_sum(
                    fix,
                    0,
                    sum,
                    idx,
                    mul(l(ihl), c(32, 2)),
                    MAX_HEADER_WORDS,
                );
                fix.pkt_store(ip_field::CHECKSUM, 2, trunc(not(l(sum)), 16));
            }),
        );
        b.emit(0);
        pb.finish(b).expect("IPOptions model is valid")
    }
    fn reset(&mut self) {
        self.malformed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::run_model;
    use dataplane_net::checksum;
    use dataplane_net::ethernet::ETHERNET_HEADER_LEN;
    use dataplane_net::PacketBuilder;

    fn ip_packet_with_options(options: &[u8]) -> Packet {
        let frame = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 168, 0, 1),
            1000,
            53,
            b"payload",
        )
        .ip_options(options)
        .build();
        Packet::from_bytes(frame.bytes()[ETHERNET_HEADER_LEN..].to_vec())
    }

    fn plain_ip_packet() -> Packet {
        let frame = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 168, 0, 1),
            1000,
            53,
            b"payload",
        )
        .build();
        Packet::from_bytes(frame.bytes()[ETHERNET_HEADER_LEN..].to_vec())
    }

    #[test]
    fn passes_through_packets_without_options() {
        let mut e = IPOptions::with_default_addr();
        let p = plain_ip_packet();
        match e.process(p.clone()) {
            Action::Emit(0, out) => assert_eq!(out.bytes(), p.bytes()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nop_and_eol_options_pass_through() {
        let mut e = IPOptions::with_default_addr();
        let p = ip_packet_with_options(&[IPOPT_NOP, IPOPT_NOP, IPOPT_NOP, IPOPT_EOL]);
        assert_eq!(e.process(p).port(), Some(0));
    }

    #[test]
    fn record_route_written_and_checksum_fixed() {
        let mut e = IPOptions::new(Ipv4Addr::new(1, 2, 3, 4));
        // RR option: kind 7, len 11, ptr 4, room for two 4-byte slots.
        let p = ip_packet_with_options(&[IPOPT_RR, 11, 4, 0, 0, 0, 0, 0, 0, 0, 0, IPOPT_NOP]);
        match e.process(p) {
            Action::Emit(0, out) => {
                // The first slot (header offset 23 = 20 + ptr-1) now holds 1.2.3.4.
                assert_eq!(&out.bytes()[23..27], &[1, 2, 3, 4]);
                // The pointer advanced by 4.
                assert_eq!(out.bytes()[22], 8);
                // The rewritten header still has a valid checksum.
                let hl = ((out.bytes()[0] & 0xf) * 4) as usize;
                assert!(checksum::verify(&out.bytes()[..hl]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn full_record_route_is_not_modified() {
        let mut e = IPOptions::new(Ipv4Addr::new(1, 2, 3, 4));
        // ptr = 8 but optlen = 7: no room, option is left alone.
        let p = ip_packet_with_options(&[IPOPT_RR, 7, 8, 9, 9, 9, 9, IPOPT_NOP]);
        match e.process(p.clone()) {
            Action::Emit(0, out) => assert_eq!(out.bytes(), p.bytes()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_options_are_dropped_not_crashed() {
        let mut e = IPOptions::with_default_addr();
        // Option length 0.
        let p = ip_packet_with_options(&[IPOPT_RR, 0, 0, 0]);
        assert_eq!(e.process(p), Action::Drop);
        // Option length running past the header.
        let p = ip_packet_with_options(&[IPOPT_RR, 40, 0, 0]);
        assert_eq!(e.process(p), Action::Drop);
        // Option kind with a missing length byte (kind in the last slot).
        let p = ip_packet_with_options(&[IPOPT_NOP, IPOPT_NOP, IPOPT_NOP, IPOPT_RR]);
        assert_eq!(e.process(p), Action::Drop);
        assert_eq!(e.malformed(), 3);
        e.reset();
        assert_eq!(e.malformed(), 0);
    }

    #[test]
    fn truncated_packet_with_options_crashes_in_isolation() {
        // This is the paper's Figure-2 situation: a packet that claims a
        // 40-byte header but is only 22 bytes long makes the isolated element
        // read out of bounds. CheckIPHeader upstream would have dropped it.
        let mut e = IPOptions::with_default_addr();
        let mut bytes = vec![0u8; 22];
        bytes[0] = 0x4a; // version 4, IHL 10 (40-byte header)
        bytes[20] = IPOPT_RR;
        bytes[21] = 10;
        let p = Packet::from_bytes(bytes);
        assert!(e.process(p.clone()).is_crash());
        let (model, _) = run_model(&e, &p);
        assert!(model.is_crash());
    }

    #[test]
    fn model_agrees_with_native_on_assorted_packets() {
        let e = IPOptions::with_default_addr();
        let cases = vec![
            plain_ip_packet(),
            ip_packet_with_options(&[IPOPT_NOP; 8]),
            ip_packet_with_options(&[IPOPT_RR, 11, 4, 0, 0, 0, 0, 0, 0, 0, 0, IPOPT_NOP]),
            ip_packet_with_options(&[IPOPT_RR, 7, 8, 9, 9, 9, 9, IPOPT_NOP]),
            ip_packet_with_options(&[IPOPT_RR, 0, 0, 0]),
            ip_packet_with_options(&[IPOPT_RR, 40, 0, 0]),
            ip_packet_with_options(&[68, 4, 0, 0]), // timestamp option, ignored
            ip_packet_with_options(&[IPOPT_EOL, 0, 0, 0]),
        ];
        for p in cases {
            let mut native_e = IPOptions::with_default_addr();
            let native = native_e.process(p.clone());
            let (model, _) = run_model(&e, &p);
            match (&native, &model) {
                (Action::Emit(0, n), Action::Emit(0, m)) => {
                    assert_eq!(n.bytes(), m.bytes(), "payload mismatch")
                }
                (Action::Drop, Action::Drop) => {}
                (a, b) => assert_eq!(a.is_crash(), b.is_crash(), "disposition mismatch"),
            }
        }
    }

    #[test]
    fn instruction_count_scales_with_option_count() {
        let e = IPOptions::with_default_addr();
        let (_, few) = run_model(&e, &ip_packet_with_options(&[IPOPT_NOP; 4]));
        let (_, many) = run_model(&e, &ip_packet_with_options(&[IPOPT_NOP; 36]));
        assert!(many > few);
    }
}

//! The element library.
//!
//! Every element here provides both a native implementation and an IR model
//! (see [`crate::element::Element`]). The set mirrors the elements the paper
//! verifies — the default Click IP-router elements (`Classifier`,
//! `EthEncap`/`EthDecap`, `CheckIPHeader`, `IPLookup`, `DecTTL`, `IPOptions`)
//! plus the stateful elements it was "currently experimenting with"
//! (`NetFlow`, `Nat`) — along with supporting elements (`Generator`, `Sink`,
//! `Counter`, `CheckLength`, `Strip`, `Paint`, `SrcFilter`) and deliberately
//! buggy fixtures for failure-injection tests ([`buggy`]).

pub mod basic;
pub mod buggy;
pub mod checkipheader;
pub mod classifier;
pub mod common;
pub mod dectll;
pub mod ethernet;
pub mod filter;
pub mod iplookup;
pub mod ipoptions;
pub mod nat;
pub mod netflow;

pub use basic::{CheckLength, Counter, Generator, Paint, Sink, Strip};
pub use buggy::{BrokenClassifier, BuggyDecTTL, OverflowingCounter, UncheckedOptions};
pub use checkipheader::CheckIPHeader;
pub use classifier::{Classifier, ClassifierRule, MatchField};
pub use dectll::DecTTL;
pub use ethernet::{EthDecap, EthEncap};
pub use filter::SrcFilter;
pub use iplookup::{IPLookup, Route};
pub use ipoptions::IPOptions;
pub use nat::Nat;
pub use netflow::NetFlow;

//! `Nat` — source network address and port translation for outbound UDP/TCP
//! traffic, the second stateful element the paper mentions ("a map in an
//! element that performs Network Address Translation").
//!
//! Translation state (flow → allocated external port, plus the next-port
//! allocator) is private state; the external address is configuration. Both
//! the native implementation and the model:
//!
//! 1. compute the same 64-bit flow key as `NetFlow`,
//! 2. allocate external ports sequentially from a base,
//! 3. rewrite the source address and source port,
//! 4. recompute the IPv4 header checksum, and
//! 5. zero the UDP checksum (legal per RFC 768) / leave TCP checksums to a
//!    downstream element (documented limitation).
//!
//! Non-TCP/UDP packets and packets too short to carry ports pass through
//! unmodified. Expects the IP header at offset 0.

use crate::element::{Action, Element};
use crate::elements::common::{self, ip_field};
use crate::elements::netflow::NetFlow;
use dataplane_ir::builder::{Block, ProgramBuilder};
use dataplane_ir::expr::dsl::*;
use dataplane_ir::Program;
use dataplane_net::ipv4::{PROTO_TCP, PROTO_UDP};
use dataplane_net::Packet;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Maximum number of 16-bit words in an IPv4 header.
const MAX_HEADER_WORDS: u32 = 30;

/// The NAT element.
#[derive(Debug)]
pub struct Nat {
    external_ip: Ipv4Addr,
    port_base: u16,
    table: HashMap<u64, u16>,
    next_port: u16,
}

impl Nat {
    /// Create a NAT that rewrites sources to `external_ip` and allocates
    /// external ports starting at `port_base`.
    pub fn new(external_ip: Ipv4Addr, port_base: u16) -> Self {
        Nat {
            external_ip,
            port_base,
            table: HashMap::new(),
            next_port: 0,
        }
    }

    /// A default configuration used by tests and examples.
    pub fn with_defaults() -> Self {
        Nat::new(Ipv4Addr::new(203, 0, 113, 1), 20000)
    }

    /// Number of active translations.
    pub fn translation_count(&self) -> usize {
        self.table.len()
    }

    /// The external port assigned to a flow key, if any.
    pub fn translation_for(&self, key: u64) -> Option<u16> {
        self.table.get(&key).copied()
    }
}

impl Element for Nat {
    fn type_name(&self) -> &'static str {
        "Nat"
    }
    fn config_key(&self) -> String {
        format!("{}:{}", self.external_ip, self.port_base)
    }
    fn config_args(&self) -> Option<String> {
        Some(format!("{}, {}", self.external_ip, self.port_base))
    }
    fn output_ports(&self) -> usize {
        1
    }
    fn process(&mut self, mut packet: Packet) -> Action {
        if packet.len() < 20 {
            return Action::Emit(0, packet);
        }
        let proto = packet.get_u8(ip_field::PROTOCOL as usize).unwrap_or(0);
        let ver_ihl = packet.get_u8(0).unwrap_or(0);
        let ihl = (ver_ihl & 0x0f) as usize;
        let hl = ihl * 4;
        let translatable =
            (proto == PROTO_UDP || proto == PROTO_TCP) && ihl >= 5 && packet.len() >= hl + 4;
        if !translatable {
            return Action::Emit(0, packet);
        }
        let key = NetFlow::key_of(&packet).expect("length checked above");
        let ext_port = match self.table.get(&key) {
            Some(p) => *p,
            None => {
                let p = self.port_base.wrapping_add(self.next_port);
                self.next_port = self.next_port.wrapping_add(1);
                self.table.insert(key, p);
                p
            }
        };
        // Rewrite source address and source port.
        packet.set_u32(ip_field::SRC as usize, u32::from(self.external_ip));
        packet.set_u16(hl, ext_port);
        if proto == PROTO_UDP && packet.len() >= hl + 8 {
            // Zero the UDP checksum (permitted for IPv4 UDP).
            packet.set_u16(hl + 6, 0);
        }
        // Recompute the IP header checksum.
        if packet.len() >= hl {
            packet.set_u16(ip_field::CHECKSUM as usize, 0);
            let c = common::native_ip_checksum(packet.bytes(), ihl * 2);
            packet.set_u16(ip_field::CHECKSUM as usize, c);
        }
        Action::Emit(0, packet)
    }
    fn model(&self) -> Program {
        let external = u32::from(self.external_ip) as u64;
        let mut pb = ProgramBuilder::new("Nat", 1);
        let table = pb.private_map("nat_table", 64, 16, 0);
        let allocator = pb.private_array("next_port", 1, 8, 16, 0);
        let src = pb.local("src", 32);
        let dst = pb.local("dst", 32);
        let proto = pb.local("proto", 8);
        let ihl = pb.local("ihl", 32);
        let hl = pb.local("hl", 32);
        let sport = pb.local("sport", 16);
        let dport = pb.local("dport", 16);
        let key = pb.local("key", 64);
        let ext_port = pb.local("ext_port", 16);
        let sum = pb.local("sum", 32);
        let idx = pb.local("idx", 32);

        let mut b = Block::new();
        b.if_then(
            ult(pkt_len(), c(32, 20)),
            Block::with(|bb| {
                bb.emit(0);
            }),
        );
        b.assign(proto, pkt(ip_field::PROTOCOL, 1));
        b.assign(ihl, zext(and(pkt(ip_field::VER_IHL, 1), c(8, 0x0f)), 32));
        b.assign(hl, mul(l(ihl), c(32, 4)));
        // Pass through anything we do not translate.
        b.if_then(
            bnot(band(
                band(
                    bor(
                        eq(l(proto), c(8, PROTO_UDP as u64)),
                        eq(l(proto), c(8, PROTO_TCP as u64)),
                    ),
                    uge(l(ihl), c(32, 5)),
                ),
                uge(pkt_len(), add(l(hl), c(32, 4))),
            )),
            Block::with(|bb| {
                bb.emit(0);
            }),
        );
        b.assign(src, pkt(ip_field::SRC, 4));
        b.assign(dst, pkt(ip_field::DST, 4));
        b.assign(sport, pkt_at(l(hl), 2));
        b.assign(dport, pkt_at(add(l(hl), c(32, 2)), 2));
        // Same key as NetFlow::flow_key.
        b.assign(
            key,
            xor(
                xor(
                    xor(
                        or(shl(zext(l(src), 64), c(64, 32)), zext(l(dst), 64)),
                        shl(zext(l(sport), 64), c(64, 24)),
                    ),
                    shl(zext(l(dport), 64), c(64, 8)),
                ),
                zext(l(proto), 64),
            ),
        );
        b.assign(ext_port, ds_read(table, l(key)));
        b.if_then(
            eq(l(ext_port), c(16, 0)),
            Block::with(|alloc| {
                alloc.assign(
                    ext_port,
                    add(c(16, self.port_base as u64), ds_read(allocator, c(8, 0))),
                );
                alloc.ds_write(
                    allocator,
                    c(8, 0),
                    add(ds_read(allocator, c(8, 0)), c(16, 1)),
                );
                alloc.ds_write(table, l(key), l(ext_port));
            }),
        );
        // Rewrite source address and port.
        b.pkt_store(ip_field::SRC, 4, c(32, external));
        b.pkt_store_at(l(hl), 2, l(ext_port));
        // Zero the UDP checksum when present.
        b.if_then(
            band(
                eq(l(proto), c(8, PROTO_UDP as u64)),
                uge(pkt_len(), add(l(hl), c(32, 8))),
            ),
            Block::with(|bb| {
                bb.pkt_store_at(add(l(hl), c(32, 6)), 2, c(16, 0));
            }),
        );
        // Recompute the IP header checksum.
        b.pkt_store(ip_field::CHECKSUM, 2, c(16, 0));
        common::model_ip_checksum_sum(&mut b, 0, sum, idx, mul(l(ihl), c(32, 2)), MAX_HEADER_WORDS);
        b.pkt_store(ip_field::CHECKSUM, 2, trunc(not(l(sum)), 16));
        b.emit(0);
        pb.finish(b).expect("Nat model is valid")
    }
    fn reset(&mut self) {
        self.table.clear();
        self.next_port = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{build_model_state, run_model_with_state};
    use dataplane_net::checksum;
    use dataplane_net::ethernet::ETHERNET_HEADER_LEN;
    use dataplane_net::PacketBuilder;

    fn udp_packet(src: Ipv4Addr, sport: u16) -> Packet {
        let frame = PacketBuilder::udp(src, Ipv4Addr::new(8, 8, 8, 8), sport, 53, b"q").build();
        Packet::from_bytes(frame.bytes()[ETHERNET_HEADER_LEN..].to_vec())
    }

    #[test]
    fn rewrites_source_and_allocates_sequential_ports() {
        let mut nat = Nat::new(Ipv4Addr::new(203, 0, 113, 9), 40000);
        let out1 = match nat.process(udp_packet(Ipv4Addr::new(10, 0, 0, 1), 1111)) {
            Action::Emit(0, p) => p,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(
            out1.get_u32(12).unwrap(),
            u32::from(Ipv4Addr::new(203, 0, 113, 9))
        );
        assert_eq!(out1.get_u16(20).unwrap(), 40000);
        assert!(checksum::verify(&out1.bytes()[..20]));

        let out2 = match nat.process(udp_packet(Ipv4Addr::new(10, 0, 0, 2), 2222)) {
            Action::Emit(0, p) => p,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(out2.get_u16(20).unwrap(), 40001);
        assert_eq!(nat.translation_count(), 2);
    }

    #[test]
    fn same_flow_reuses_translation() {
        let mut nat = Nat::with_defaults();
        let p = udp_packet(Ipv4Addr::new(10, 0, 0, 1), 5555);
        let a = nat.process(p.clone());
        let b = nat.process(p.clone());
        match (a, b) {
            (Action::Emit(0, x), Action::Emit(0, y)) => {
                assert_eq!(x.get_u16(20), y.get_u16(20));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(nat.translation_count(), 1);
        nat.reset();
        assert_eq!(nat.translation_count(), 0);
    }

    #[test]
    fn non_transport_packets_pass_unmodified() {
        let mut nat = Nat::with_defaults();
        let frame =
            PacketBuilder::icmp_echo(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(8, 8, 8, 8)).build();
        let p = Packet::from_bytes(frame.bytes()[ETHERNET_HEADER_LEN..].to_vec());
        match nat.process(p.clone()) {
            Action::Emit(0, out) => assert_eq!(out.bytes(), p.bytes()),
            other => panic!("unexpected {other:?}"),
        }
        let short = Packet::from_bytes(vec![0x45; 10]);
        match nat.process(short.clone()) {
            Action::Emit(0, out) => assert_eq!(out.bytes(), short.bytes()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn model_matches_native_across_a_flow_sequence() {
        let element = Nat::with_defaults();
        let mut native = Nat::with_defaults();
        let mut model_state = build_model_state(&element);

        let packets: Vec<Packet> = vec![
            udp_packet(Ipv4Addr::new(10, 0, 0, 1), 1111),
            udp_packet(Ipv4Addr::new(10, 0, 0, 2), 2222),
            udp_packet(Ipv4Addr::new(10, 0, 0, 1), 1111), // repeat of flow 1
            udp_packet(Ipv4Addr::new(10, 0, 0, 3), 3333),
        ];
        for p in &packets {
            let n = native.process(p.clone());
            let (m, _) = run_model_with_state(&element, p, &mut model_state);
            match (n, m) {
                (Action::Emit(0, x), Action::Emit(0, y)) => {
                    assert_eq!(x.bytes(), y.bytes(), "rewritten packets differ");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn translated_packet_keeps_valid_ip_checksum() {
        let mut nat = Nat::with_defaults();
        for i in 0..10u8 {
            let p = udp_packet(Ipv4Addr::new(10, 0, 0, i + 1), 1000 + i as u16);
            match nat.process(p) {
                Action::Emit(0, out) => assert!(checksum::verify(&out.bytes()[..20])),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(nat.translation_for(0).is_none());
        assert!(nat.config_key().contains("203.0.113.1"));
    }
}

//! `EthDecap` and `EthEncap` — Ethernet de-/re-encapsulation, the
//! counterparts of Click's `Strip(14)` and `EtherEncap`.

use crate::element::{Action, Element};
use dataplane_ir::builder::{Block, ProgramBuilder};
use dataplane_ir::expr::dsl::*;
use dataplane_ir::Program;
use dataplane_net::ethernet::{EthernetHeader, MacAddr, ETHERNET_HEADER_LEN, ETHERTYPE_IPV4};
use dataplane_net::Packet;

/// Removes the 14-byte Ethernet header. Packets too short to contain one are
/// dropped.
#[derive(Debug, Default)]
pub struct EthDecap;

impl EthDecap {
    /// New decapsulator.
    pub fn new() -> Self {
        EthDecap
    }
}

impl Element for EthDecap {
    fn type_name(&self) -> &'static str {
        "EthDecap"
    }
    fn output_ports(&self) -> usize {
        1
    }
    fn process(&mut self, mut packet: Packet) -> Action {
        if packet.len() < ETHERNET_HEADER_LEN {
            return Action::Drop;
        }
        packet.strip_front(ETHERNET_HEADER_LEN);
        Action::Emit(0, packet)
    }
    fn model(&self) -> Program {
        let pb = ProgramBuilder::new("EthDecap", 1);
        let mut b = Block::new();
        b.if_then(
            ult(pkt_len(), c(32, ETHERNET_HEADER_LEN as u64)),
            Block::with(|bb| {
                bb.drop_packet();
            }),
        );
        b.strip_front(ETHERNET_HEADER_LEN as u32);
        b.emit(0);
        pb.finish(b).expect("EthDecap model is valid")
    }
}

/// Prepends a fresh Ethernet header with configured addresses and EtherType,
/// like Click's `EtherEncap(0x0800, src, dst)`.
#[derive(Debug)]
pub struct EthEncap {
    src: MacAddr,
    dst: MacAddr,
    ethertype: u16,
}

impl EthEncap {
    /// Encapsulate with the given source/destination MAC addresses and
    /// EtherType.
    pub fn new(src: MacAddr, dst: MacAddr, ethertype: u16) -> Self {
        EthEncap {
            src,
            dst,
            ethertype,
        }
    }

    /// IPv4 encapsulation with locally-administered test addresses.
    pub fn ipv4_default() -> Self {
        EthEncap::new(MacAddr::local(1), MacAddr::local(2), ETHERTYPE_IPV4)
    }

    fn mac_as_u64(mac: MacAddr) -> u64 {
        let o = mac.octets();
        ((o[0] as u64) << 40)
            | ((o[1] as u64) << 32)
            | ((o[2] as u64) << 24)
            | ((o[3] as u64) << 16)
            | ((o[4] as u64) << 8)
            | o[5] as u64
    }
}

impl Element for EthEncap {
    fn type_name(&self) -> &'static str {
        "EthEncap"
    }
    fn config_key(&self) -> String {
        format!("{}>{}@{:04x}", self.src, self.dst, self.ethertype)
    }
    fn config_args(&self) -> Option<String> {
        // The factory only builds the default IPv4 encapsulation
        // (`EthEncap()`); any other MAC/EtherType configuration has no
        // config-language spelling.
        let default = EthEncap::ipv4_default();
        if self.src == default.src && self.dst == default.dst && self.ethertype == default.ethertype
        {
            Some(String::new())
        } else {
            None
        }
    }
    fn output_ports(&self) -> usize {
        1
    }
    fn process(&mut self, mut packet: Packet) -> Action {
        let hdr = EthernetHeader {
            dst: self.dst,
            src: self.src,
            ethertype: self.ethertype,
        };
        packet.push_front(&hdr.to_bytes());
        Action::Emit(0, packet)
    }
    fn model(&self) -> Program {
        let pb = ProgramBuilder::new("EthEncap", 1);
        let mut b = Block::new();
        b.push_front(ETHERNET_HEADER_LEN as u32);
        // dst MAC at 0..6, src MAC at 6..12, ethertype at 12..14.
        b.pkt_store(0, 6, c(48, Self::mac_as_u64(self.dst)));
        b.pkt_store(6, 6, c(48, Self::mac_as_u64(self.src)));
        b.pkt_store(12, 2, c(16, self.ethertype as u64));
        b.emit(0);
        pb.finish(b).expect("EthEncap model is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::run_model;
    use dataplane_net::PacketBuilder;
    use std::net::Ipv4Addr;

    fn ip_frame() -> Packet {
        PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            b"payload",
        )
        .build()
    }

    #[test]
    fn decap_strips_header() {
        let mut e = EthDecap::new();
        let frame = ip_frame();
        let expected_len = frame.len() - ETHERNET_HEADER_LEN;
        match e.process(frame) {
            Action::Emit(0, p) => {
                assert_eq!(p.len(), expected_len);
                assert_eq!(p.bytes()[0] >> 4, 4, "IP version nibble now first");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(e.process(Packet::from_bytes(vec![0u8; 10])), Action::Drop);
    }

    #[test]
    fn decap_model_matches_native() {
        let e = EthDecap::new();
        for pkt in [
            ip_frame(),
            Packet::from_bytes(vec![0u8; 3]),
            Packet::from_bytes(vec![1u8; 14]),
        ] {
            let mut native_e = EthDecap::new();
            let native = native_e.process(pkt.clone());
            let (model, _) = run_model(&e, &pkt);
            match (native, model) {
                (Action::Emit(np, n), Action::Emit(mp, m)) => {
                    assert_eq!(np, mp);
                    assert_eq!(n.bytes(), m.bytes());
                }
                (Action::Drop, Action::Drop) => {}
                other => panic!("mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn encap_prepends_configured_header() {
        let mut e = EthEncap::new(MacAddr::local(7), MacAddr::local(8), ETHERTYPE_IPV4);
        let inner = Packet::from_bytes(vec![0x45, 0, 0, 20]);
        match e.process(inner.clone()) {
            Action::Emit(0, p) => {
                assert_eq!(p.len(), inner.len() + ETHERNET_HEADER_LEN);
                let hdr = EthernetHeader::parse(p.bytes()).unwrap();
                assert_eq!(hdr.src, MacAddr::local(7));
                assert_eq!(hdr.dst, MacAddr::local(8));
                assert_eq!(hdr.ethertype, ETHERTYPE_IPV4);
                assert_eq!(&p.bytes()[14..], inner.bytes());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn encap_model_matches_native() {
        let e = EthEncap::ipv4_default();
        for pkt in [
            Packet::from_bytes(vec![]),
            Packet::from_bytes(vec![1, 2, 3]),
            ip_frame(),
        ] {
            let mut native_e = EthEncap::ipv4_default();
            let native = native_e.process(pkt.clone());
            let (model, _) = run_model(&e, &pkt);
            match (native, model) {
                (Action::Emit(0, n), Action::Emit(0, m)) => assert_eq!(n.bytes(), m.bytes()),
                other => panic!("mismatch {other:?}"),
            }
        }
        assert!(e.config_key().contains("0800"));
    }

    #[test]
    fn decap_then_encap_round_trips_payload() {
        let mut decap = EthDecap::new();
        let mut encap = EthEncap::ipv4_default();
        let frame = ip_frame();
        let original_payload = frame.bytes()[14..].to_vec();
        let stripped = match decap.process(frame) {
            Action::Emit(0, p) => p,
            other => panic!("unexpected {other:?}"),
        };
        let rebuilt = match encap.process(stripped) {
            Action::Emit(0, p) => p,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(&rebuilt.bytes()[14..], &original_payload[..]);
    }
}

//! `Classifier` — dispatches packets to output ports by matching 16-bit
//! values at fixed offsets, a simplified form of Click's `Classifier`
//! element (patterns like `12/0800` meaning "bytes 12..14 equal 0x0800").

use crate::element::{Action, Element};
use dataplane_ir::builder::{Block, ProgramBuilder};
use dataplane_ir::expr::dsl::*;
use dataplane_ir::{Expr, Program};
use dataplane_net::Packet;

/// A single 16-bit match at a byte offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatchField {
    /// Byte offset of the 16-bit big-endian field.
    pub offset: u32,
    /// Value the field must equal.
    pub value: u16,
}

/// One classification rule: all fields must match. The rule's position in the
/// classifier's rule list is the output port it forwards to.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ClassifierRule {
    /// Fields that must all match.
    pub fields: Vec<MatchField>,
}

impl ClassifierRule {
    /// A rule matching a single 16-bit field.
    pub fn field(offset: u32, value: u16) -> Self {
        ClassifierRule {
            fields: vec![MatchField { offset, value }],
        }
    }

    /// A rule that matches every packet (useful as a final catch-all port).
    pub fn any() -> Self {
        ClassifierRule { fields: Vec::new() }
    }

    fn matches(&self, packet: &Packet) -> bool {
        self.fields.iter().all(|f| {
            packet
                .get_u16(f.offset as usize)
                .map(|v| v == f.value)
                .unwrap_or(false)
        })
    }
}

/// The classifier element. Packets matching rule `i` are emitted on port `i`;
/// packets matching no rule are dropped.
#[derive(Debug)]
pub struct Classifier {
    rules: Vec<ClassifierRule>,
}

impl Classifier {
    /// Build a classifier from rules (one output port per rule).
    ///
    /// # Panics
    /// Panics if `rules` is empty or has more than 255 entries.
    pub fn new(rules: Vec<ClassifierRule>) -> Self {
        assert!(
            !rules.is_empty() && rules.len() <= 255,
            "Classifier needs 1..=255 rules"
        );
        Classifier { rules }
    }

    /// The classic router front-end: IPv4 traffic to port 0 (identified by
    /// EtherType 0x0800 at offset 12), everything else dropped.
    pub fn ipv4_only() -> Self {
        Classifier::new(vec![ClassifierRule::field(12, 0x0800)])
    }

    /// The three-way split of Click's reference IP-router configuration:
    /// ARP requests → port 0, ARP replies → port 1, IPv4 → port 2.
    pub fn arp_ip_split() -> Self {
        Classifier::new(vec![
            ClassifierRule {
                fields: vec![
                    MatchField {
                        offset: 12,
                        value: 0x0806,
                    },
                    MatchField {
                        offset: 20,
                        value: 0x0001,
                    },
                ],
            },
            ClassifierRule {
                fields: vec![
                    MatchField {
                        offset: 12,
                        value: 0x0806,
                    },
                    MatchField {
                        offset: 20,
                        value: 0x0002,
                    },
                ],
            },
            ClassifierRule::field(12, 0x0800),
        ])
    }
}

impl Element for Classifier {
    fn type_name(&self) -> &'static str {
        "Classifier"
    }

    fn config_key(&self) -> String {
        let mut parts = Vec::new();
        for r in &self.rules {
            let fields: Vec<String> = r
                .fields
                .iter()
                .map(|f| format!("{}/{:04x}", f.offset, f.value))
                .collect();
            parts.push(if fields.is_empty() {
                "-".to_string()
            } else {
                fields.join(",")
            });
        }
        parts.join(";")
    }

    fn config_args(&self) -> Option<String> {
        // Factory syntax: patterns separated by commas, fields within a
        // pattern by whitespace, the match-anything pattern written `-`.
        let patterns: Vec<String> = self
            .rules
            .iter()
            .map(|r| {
                if r.fields.is_empty() {
                    "-".to_string()
                } else {
                    r.fields
                        .iter()
                        .map(|f| format!("{}/{:04x}", f.offset, f.value))
                        .collect::<Vec<_>>()
                        .join(" ")
                }
            })
            .collect();
        Some(patterns.join(", "))
    }

    fn output_ports(&self) -> usize {
        self.rules.len()
    }

    fn process(&mut self, packet: Packet) -> Action {
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.matches(&packet) {
                return Action::Emit(i as u8, packet);
            }
        }
        Action::Drop
    }

    fn model(&self) -> Program {
        let pb = ProgramBuilder::new("Classifier", self.rules.len() as u8);
        let mut body = Block::new();
        for (i, rule) in self.rules.iter().enumerate() {
            // A rule matches when, for every field, the packet is long enough
            // AND the field equals the expected value. An empty rule matches
            // unconditionally. The bounds check guards the packet load via a
            // lazy `select` (the IR's `&&` evaluates both sides, which would
            // read out of bounds on short packets).
            let cond = rule.fields.iter().fold(None::<Expr>, |acc, f| {
                let in_bounds = uge(pkt_len(), c(32, f.offset as u64 + 2));
                let equals = eq(pkt(f.offset, 2), c(16, f.value as u64));
                let field_ok = select(in_bounds, equals, cbool(false));
                Some(match acc {
                    None => field_ok,
                    Some(prev) => band(prev, field_ok),
                })
            });
            let cond = cond.unwrap_or_else(|| cbool(true));
            body.if_then(
                cond,
                Block::with(|b| {
                    b.emit(i as u8);
                }),
            );
        }
        body.drop_packet();
        pb.finish(body).expect("Classifier model is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::run_model;
    use dataplane_net::PacketBuilder;
    use std::net::Ipv4Addr;

    fn ipv4_packet() -> Packet {
        PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            2000,
            b"data",
        )
        .build()
    }

    fn arp_packet(op: u16) -> Packet {
        // Minimal ARP-shaped frame: ethertype 0x0806 at 12, opcode at 20.
        let mut bytes = vec![0u8; 42];
        bytes[12] = 0x08;
        bytes[13] = 0x06;
        bytes[20] = (op >> 8) as u8;
        bytes[21] = (op & 0xff) as u8;
        Packet::from_bytes(bytes)
    }

    #[test]
    fn ipv4_only_accepts_ip_and_drops_rest() {
        let mut c = Classifier::ipv4_only();
        assert_eq!(c.process(ipv4_packet()).port(), Some(0));
        assert_eq!(c.process(arp_packet(1)), Action::Drop);
        assert_eq!(c.process(Packet::from_bytes(vec![0u8; 5])), Action::Drop);
        assert_eq!(c.output_ports(), 1);
    }

    #[test]
    fn arp_ip_split_routes_to_three_ports() {
        let mut c = Classifier::arp_ip_split();
        assert_eq!(c.output_ports(), 3);
        assert_eq!(c.process(arp_packet(1)).port(), Some(0));
        assert_eq!(c.process(arp_packet(2)).port(), Some(1));
        assert_eq!(c.process(ipv4_packet()).port(), Some(2));
        assert_eq!(c.process(Packet::from_bytes(vec![0u8; 64])), Action::Drop);
    }

    #[test]
    fn model_agrees_with_native_on_assorted_packets() {
        let mut c = Classifier::arp_ip_split();
        let packets = vec![
            ipv4_packet(),
            arp_packet(1),
            arp_packet(2),
            arp_packet(9),
            Packet::from_bytes(vec![0u8; 3]),
            Packet::from_bytes(vec![0xff; 64]),
            Packet::from_bytes(vec![]),
        ];
        for p in packets {
            let native = c.process(p.clone());
            let (model, _) = run_model(&c, &p);
            assert_eq!(native.port(), model.port(), "packet {:?}", p);
            assert_eq!(native.is_crash(), model.is_crash());
        }
    }

    #[test]
    fn short_packets_never_crash_the_classifier() {
        let mut c = Classifier::arp_ip_split();
        for len in 0..24 {
            let p = Packet::from_bytes(vec![0x08; len]);
            assert!(!c.process(p.clone()).is_crash());
            let (model, _) = run_model(&c, &p);
            assert!(!model.is_crash(), "len {len}");
        }
    }

    #[test]
    fn catch_all_rule_matches_everything() {
        let mut c = Classifier::new(vec![
            ClassifierRule::field(12, 0x0800),
            ClassifierRule::any(),
        ]);
        assert_eq!(c.process(ipv4_packet()).port(), Some(0));
        assert_eq!(c.process(arp_packet(1)).port(), Some(1));
        assert_eq!(c.process(Packet::from_bytes(vec![])).port(), Some(1));
    }

    #[test]
    fn config_key_reflects_rules() {
        let c = Classifier::arp_ip_split();
        let key = c.config_key();
        assert!(key.contains("12/0806"));
        assert!(key.contains("12/0800"));
        let c2 = Classifier::new(vec![ClassifierRule::any()]);
        assert_eq!(c2.config_key(), "-");
    }

    #[test]
    #[should_panic]
    fn empty_rule_list_rejected() {
        Classifier::new(vec![]);
    }
}

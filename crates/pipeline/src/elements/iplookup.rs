//! `IPLookup` — longest-prefix-match forwarding using pre-allocated arrays,
//! the array-based lookup structure the paper points to (Gupta, Lin, McKeown:
//! "Routing Lookups in Hardware at Memory Access Speeds") as the kind of
//! data structure that keeps stateful elements statically verifiable.
//!
//! The implementation is a two-level DIR-16-8-style table:
//!
//! * **Level 1** — a 65 536-entry array indexed by the top 16 bits of the
//!   destination address. An entry is either `0` (no route), `0xFE` marker
//!   ("consult level 2"), or `port + 1`.
//! * **Level 2** — a map indexed by the top 24 bits, holding `port + 1` for
//!   prefixes longer than /16 (up to /24).
//!
//! Both levels are *static state*: read-only at forwarding time, installed
//! from the routing configuration when the element is built.
//!
//! Expects the IP header at offset 0.

use crate::element::{Action, DsContents, Element};
use dataplane_ir::builder::{Block, ProgramBuilder};
use dataplane_ir::expr::dsl::*;
use dataplane_ir::{DsId, Program};
use dataplane_net::Packet;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Marker stored in level 1 meaning "this /16 block has longer prefixes;
/// consult level 2".
const EXTEND_MARKER: u64 = 0xFE;
/// Offset of the destination address within the IP header.
const DST_OFFSET: u32 = 16;

/// One route: prefix, prefix length (0..=24), output port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// Network prefix.
    pub prefix: Ipv4Addr,
    /// Prefix length in bits; 0..=24 supported by the two-level table.
    pub prefix_len: u8,
    /// Output port for matching packets.
    pub port: u8,
}

impl Route {
    /// Construct a route.
    pub fn new(prefix: Ipv4Addr, prefix_len: u8, port: u8) -> Self {
        Route {
            prefix,
            prefix_len,
            port,
        }
    }
}

/// The IPLookup element.
#[derive(Debug)]
pub struct IPLookup {
    routes: Vec<Route>,
    /// Level-1 table: 65 536 entries.
    level1: Vec<u8>,
    /// Level-2 table keyed by the top 24 bits of the destination.
    level2: BTreeMap<u32, u8>,
    ports: usize,
    misses: u64,
}

impl IPLookup {
    /// Build the lookup element from a route list.
    ///
    /// # Panics
    /// Panics if a prefix length exceeds 24 (not representable in the
    /// two-level table; see the module docs), if the route list is empty, or
    /// if a port exceeds 253.
    pub fn new(routes: Vec<Route>) -> Self {
        assert!(!routes.is_empty(), "IPLookup needs at least one route");
        for r in &routes {
            assert!(
                r.prefix_len <= 24,
                "prefix length {} not supported (max /24)",
                r.prefix_len
            );
            assert!(r.port < 0xFE - 1, "port {} too large", r.port);
        }
        let ports = routes.iter().map(|r| r.port as usize + 1).max().unwrap();

        // Longest-prefix semantics: install shorter prefixes first so longer
        // ones overwrite them.
        let mut sorted = routes.clone();
        sorted.sort_by_key(|r| r.prefix_len);

        let mut level1 = vec![0u8; 65536];
        let mut level2: BTreeMap<u32, u8> = BTreeMap::new();

        for r in &sorted {
            let addr = u32::from(r.prefix);
            if r.prefix_len <= 16 {
                let span = 1u32 << (16 - r.prefix_len as u32);
                let start = (addr >> 16) & !(span - 1);
                for idx in start..start + span {
                    // Overwrite plain entries; keep EXTEND markers but update
                    // the level-2 fallback below them.
                    if level1[idx as usize] == EXTEND_MARKER as u8 {
                        for low in 0u32..256 {
                            let key24 = (idx << 8) | low;
                            level2.entry(key24).or_insert(r.port + 1);
                        }
                    } else {
                        level1[idx as usize] = r.port + 1;
                    }
                }
            } else {
                let block16 = (addr >> 16) as usize;
                // Turn the block into an extended block, seeding level 2 with
                // the previous level-1 answer as the fallback.
                if level1[block16] != EXTEND_MARKER as u8 {
                    let fallback = level1[block16];
                    for low in 0u32..256 {
                        let key24 = ((block16 as u32) << 8) | low;
                        level2.insert(key24, fallback);
                    }
                    level1[block16] = EXTEND_MARKER as u8;
                }
                let span = 1u32 << (24 - r.prefix_len as u32);
                let start = (addr >> 8) & !(span - 1);
                for key24 in start..start + span {
                    level2.insert(key24, r.port + 1);
                }
            }
        }

        IPLookup {
            routes,
            level1,
            level2,
            ports,
            misses: 0,
        }
    }

    /// A two-port router configuration used throughout the tests, examples,
    /// and benches: `10.0.0.0/8 → port 0`, `192.168.0.0/16 → port 1`.
    pub fn two_port_default() -> Self {
        IPLookup::new(vec![
            Route::new(Ipv4Addr::new(10, 0, 0, 0), 8, 0),
            Route::new(Ipv4Addr::new(192, 168, 0, 0), 16, 1),
        ])
    }

    /// The configured routes.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Number of packets that matched no route.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Perform the lookup exactly as the model does. Returns `Some(port)` or
    /// `None` for a miss.
    pub fn lookup(&self, dst: u32) -> Option<u8> {
        let v1 = self.level1[(dst >> 16) as usize];
        let v = if v1 as u64 == EXTEND_MARKER {
            self.level2.get(&(dst >> 8)).copied().unwrap_or(0)
        } else {
            v1
        };
        if v == 0 {
            None
        } else {
            Some(v - 1)
        }
    }
}

impl Element for IPLookup {
    fn type_name(&self) -> &'static str {
        "IPLookup"
    }
    fn config_key(&self) -> String {
        self.routes
            .iter()
            .map(|r| format!("{}/{}→{}", r.prefix, r.prefix_len, r.port))
            .collect::<Vec<_>>()
            .join(",")
    }
    fn config_args(&self) -> Option<String> {
        Some(
            self.routes
                .iter()
                .map(|r| format!("{}/{} {}", r.prefix, r.prefix_len, r.port))
                .collect::<Vec<_>>()
                .join(", "),
        )
    }
    fn output_ports(&self) -> usize {
        self.ports
    }
    fn process(&mut self, packet: Packet) -> Action {
        // Guard the read the same way the model does.
        let Some(dst) = packet.get_u32(DST_OFFSET as usize) else {
            return Action::Drop;
        };
        match self.lookup(dst) {
            Some(port) => Action::Emit(port, packet),
            None => {
                self.misses += 1;
                Action::Drop
            }
        }
    }
    fn model(&self) -> Program {
        let mut pb = ProgramBuilder::new("IPLookup", self.ports as u8);
        let fib16 = pb.static_array("fib16", 65536, 32, 8, 0);
        let fib24 = pb.static_map("fib24", 32, 8, 0);
        let dst = pb.local("dst", 32);
        let v = pb.local("v", 8);

        let mut b = Block::new();
        b.if_then(
            ult(pkt_len(), c(32, DST_OFFSET as u64 + 4)),
            Block::with(|bb| {
                bb.drop_packet();
            }),
        );
        b.assign(dst, pkt(DST_OFFSET, 4));
        b.assign(v, ds_read(fib16, lshr(l(dst), c(32, 16))));
        b.if_then(
            eq(l(v), c(8, EXTEND_MARKER)),
            Block::with(|bb| {
                bb.assign(v, ds_read(fib24, lshr(l(dst), c(32, 8))));
            }),
        );
        b.if_then(
            eq(l(v), c(8, 0)),
            Block::with(|bb| {
                bb.drop_packet();
            }),
        );
        // Dispatch to the (dynamically chosen) output port via a chain of
        // constant-port emits, since the IR's emit takes a literal port.
        for port in 0..self.ports {
            b.if_then(
                eq(l(v), c(8, port as u64 + 1)),
                Block::with(|bb| {
                    bb.emit(port as u8);
                }),
            );
        }
        b.drop_packet();
        pb.finish(b).expect("IPLookup model is valid")
    }
    fn model_state(&self) -> BTreeMap<DsId, DsContents> {
        let mut m = BTreeMap::new();
        let l1: DsContents = self
            .level1
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(k, &v)| (k as u64, v as u64))
            .collect();
        let l2: DsContents = self
            .level2
            .iter()
            .filter(|(_, &v)| v != 0)
            .map(|(&k, &v)| (k as u64, v as u64))
            .collect();
        m.insert(DsId(0), l1);
        m.insert(DsId(1), l2);
        m
    }
    fn reset(&mut self) {
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::run_model;
    use dataplane_net::ethernet::ETHERNET_HEADER_LEN;
    use dataplane_net::PacketBuilder;

    fn ip_packet_to(dst: Ipv4Addr) -> Packet {
        let frame = PacketBuilder::udp(Ipv4Addr::new(10, 0, 0, 1), dst, 1000, 53, b"x").build();
        Packet::from_bytes(frame.bytes()[ETHERNET_HEADER_LEN..].to_vec())
    }

    #[test]
    fn two_port_default_routes_correctly() {
        let mut e = IPLookup::two_port_default();
        assert_eq!(e.output_ports(), 2);
        assert_eq!(
            e.process(ip_packet_to(Ipv4Addr::new(10, 9, 8, 7))).port(),
            Some(0)
        );
        assert_eq!(
            e.process(ip_packet_to(Ipv4Addr::new(192, 168, 3, 4)))
                .port(),
            Some(1)
        );
        assert_eq!(
            e.process(ip_packet_to(Ipv4Addr::new(8, 8, 8, 8))),
            Action::Drop
        );
        assert_eq!(e.misses(), 1);
        e.reset();
        assert_eq!(e.misses(), 0);
    }

    #[test]
    fn longest_prefix_wins() {
        let e = IPLookup::new(vec![
            Route::new(Ipv4Addr::new(10, 0, 0, 0), 8, 0),
            Route::new(Ipv4Addr::new(10, 1, 0, 0), 16, 1),
            Route::new(Ipv4Addr::new(10, 1, 2, 0), 24, 2),
        ]);
        assert_eq!(e.lookup(u32::from(Ipv4Addr::new(10, 5, 5, 5))), Some(0));
        assert_eq!(e.lookup(u32::from(Ipv4Addr::new(10, 1, 9, 9))), Some(1));
        assert_eq!(e.lookup(u32::from(Ipv4Addr::new(10, 1, 2, 200))), Some(2));
        assert_eq!(e.lookup(u32::from(Ipv4Addr::new(11, 0, 0, 1))), None);
    }

    #[test]
    fn default_route_matches_everything() {
        let e = IPLookup::new(vec![
            Route::new(Ipv4Addr::new(0, 0, 0, 0), 0, 3),
            Route::new(Ipv4Addr::new(10, 0, 0, 0), 8, 0),
        ]);
        assert_eq!(e.lookup(u32::from(Ipv4Addr::new(1, 2, 3, 4))), Some(3));
        assert_eq!(e.lookup(u32::from(Ipv4Addr::new(10, 2, 3, 4))), Some(0));
        assert_eq!(e.output_ports(), 4);
    }

    #[test]
    fn longer_prefix_after_shorter_in_same_block() {
        // /24 carved out of a /12; addresses outside the /24 but inside the
        // /12 must still use the /12's port.
        let e = IPLookup::new(vec![
            Route::new(Ipv4Addr::new(172, 16, 0, 0), 12, 0),
            Route::new(Ipv4Addr::new(172, 16, 5, 0), 24, 1),
        ]);
        assert_eq!(e.lookup(u32::from(Ipv4Addr::new(172, 16, 5, 77))), Some(1));
        assert_eq!(e.lookup(u32::from(Ipv4Addr::new(172, 16, 6, 77))), Some(0));
        assert_eq!(e.lookup(u32::from(Ipv4Addr::new(172, 20, 6, 77))), Some(0));
        assert_eq!(e.lookup(u32::from(Ipv4Addr::new(172, 32, 0, 1))), None);
    }

    #[test]
    fn model_agrees_with_native() {
        let e = IPLookup::new(vec![
            Route::new(Ipv4Addr::new(10, 0, 0, 0), 8, 0),
            Route::new(Ipv4Addr::new(192, 168, 0, 0), 16, 1),
            Route::new(Ipv4Addr::new(192, 168, 7, 0), 24, 2),
        ]);
        let destinations = [
            Ipv4Addr::new(10, 1, 1, 1),
            Ipv4Addr::new(192, 168, 1, 1),
            Ipv4Addr::new(192, 168, 7, 200),
            Ipv4Addr::new(8, 8, 8, 8),
            Ipv4Addr::new(255, 255, 255, 255),
        ];
        for dst in destinations {
            let mut native_e = IPLookup::new(e.routes().to_vec());
            let p = ip_packet_to(dst);
            let native = native_e.process(p.clone());
            let (model, _) = run_model(&e, &p);
            assert_eq!(native.port(), model.port(), "dst {dst}");
        }
        // Short packet: both drop, neither crashes.
        let short = Packet::from_bytes(vec![0x45; 10]);
        let mut native_e = IPLookup::two_port_default();
        assert_eq!(native_e.process(short.clone()), Action::Drop);
        let (model, _) = run_model(&IPLookup::two_port_default(), &short);
        assert_eq!(model, Action::Drop);
    }

    #[test]
    fn config_key_lists_routes() {
        let e = IPLookup::two_port_default();
        let key = e.config_key();
        assert!(key.contains("10.0.0.0/8"));
        assert!(key.contains("192.168.0.0/16"));
    }

    #[test]
    #[should_panic]
    fn prefix_longer_than_24_rejected() {
        IPLookup::new(vec![Route::new(Ipv4Addr::new(10, 0, 0, 1), 32, 0)]);
    }

    #[test]
    #[should_panic]
    fn empty_route_list_rejected() {
        IPLookup::new(vec![]);
    }
}

//! `SrcFilter` — drops packets from blocked source addresses, a minimal
//! firewall-style element with *static* state (the blocklist), used by the
//! reachability experiments ("any packet with destination IP X will never be
//! dropped unless it is malformed" needs a pipeline with a filter whose rules
//! the verifier can reason about for a specific configuration).
//!
//! Expects the IP header at offset 0.

use crate::element::{Action, DsContents, Element};
use crate::elements::common::ip_field;
use dataplane_ir::builder::{Block, ProgramBuilder};
use dataplane_ir::expr::dsl::*;
use dataplane_ir::{DsId, Program};
use dataplane_net::Packet;
use std::collections::BTreeMap;
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// The source-address filter element.
#[derive(Debug, Default)]
pub struct SrcFilter {
    blocked: HashSet<u32>,
    dropped: u64,
}

impl SrcFilter {
    /// Create a filter that blocks the given source addresses.
    pub fn new(blocked: impl IntoIterator<Item = Ipv4Addr>) -> Self {
        SrcFilter {
            blocked: blocked.into_iter().map(u32::from).collect(),
            dropped: 0,
        }
    }

    /// A filter that blocks nothing.
    pub fn allow_all() -> Self {
        SrcFilter::default()
    }

    /// Number of packets dropped by the filter.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The blocked addresses, sorted (useful for reports).
    pub fn blocked(&self) -> Vec<Ipv4Addr> {
        let mut v: Vec<u32> = self.blocked.iter().copied().collect();
        v.sort_unstable();
        v.into_iter().map(Ipv4Addr::from).collect()
    }
}

impl Element for SrcFilter {
    fn type_name(&self) -> &'static str {
        "SrcFilter"
    }
    fn config_key(&self) -> String {
        self.blocked()
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
    fn config_args(&self) -> Option<String> {
        Some(
            self.blocked()
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        )
    }
    fn output_ports(&self) -> usize {
        1
    }
    fn process(&mut self, packet: Packet) -> Action {
        let Some(src) = packet.get_u32(ip_field::SRC as usize) else {
            return Action::Drop;
        };
        if self.blocked.contains(&src) {
            self.dropped += 1;
            Action::Drop
        } else {
            Action::Emit(0, packet)
        }
    }
    fn model(&self) -> Program {
        let mut pb = ProgramBuilder::new("SrcFilter", 1);
        let blocklist = pb.static_map("blocklist", 32, 8, 0);
        let src = pb.local("src", 32);
        let mut b = Block::new();
        b.if_then(
            ult(pkt_len(), c(32, ip_field::SRC as u64 + 4)),
            Block::with(|bb| {
                bb.drop_packet();
            }),
        );
        b.assign(src, pkt(ip_field::SRC, 4));
        b.if_then(
            eq(ds_read(blocklist, l(src)), c(8, 1)),
            Block::with(|bb| {
                bb.drop_packet();
            }),
        );
        b.emit(0);
        pb.finish(b).expect("SrcFilter model is valid")
    }
    fn model_state(&self) -> BTreeMap<DsId, DsContents> {
        // Sorted, not HashSet iteration order: the contents feed
        // `fingerprint_material`, which must be deterministic across
        // instances and processes for content-addressed summary caching.
        let mut contents: DsContents = self.blocked.iter().map(|&a| (a as u64, 1u64)).collect();
        contents.sort_unstable();
        let mut m = BTreeMap::new();
        m.insert(DsId(0), contents);
        m
    }
    fn reset(&mut self) {
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::run_model;
    use dataplane_net::ethernet::ETHERNET_HEADER_LEN;
    use dataplane_net::PacketBuilder;

    fn packet_from(src: Ipv4Addr) -> Packet {
        let frame = PacketBuilder::udp(src, Ipv4Addr::new(192, 168, 0, 1), 1000, 53, b"x").build();
        Packet::from_bytes(frame.bytes()[ETHERNET_HEADER_LEN..].to_vec())
    }

    #[test]
    fn blocks_configured_sources_only() {
        let mut f = SrcFilter::new([Ipv4Addr::new(10, 0, 0, 66), Ipv4Addr::new(10, 0, 0, 67)]);
        assert_eq!(
            f.process(packet_from(Ipv4Addr::new(10, 0, 0, 66))),
            Action::Drop
        );
        assert_eq!(
            f.process(packet_from(Ipv4Addr::new(10, 0, 0, 67))),
            Action::Drop
        );
        assert_eq!(
            f.process(packet_from(Ipv4Addr::new(10, 0, 0, 68))).port(),
            Some(0)
        );
        assert_eq!(f.dropped(), 2);
        f.reset();
        assert_eq!(f.dropped(), 0);
        assert_eq!(f.blocked().len(), 2);
    }

    #[test]
    fn allow_all_passes_everything() {
        let mut f = SrcFilter::allow_all();
        assert_eq!(
            f.process(packet_from(Ipv4Addr::new(1, 2, 3, 4))).port(),
            Some(0)
        );
        assert_eq!(f.config_key(), "");
    }

    #[test]
    fn short_packets_dropped_not_crashed() {
        let mut f = SrcFilter::allow_all();
        for len in 0..16 {
            assert_eq!(f.process(Packet::from_bytes(vec![0u8; len])), Action::Drop);
        }
    }

    #[test]
    fn model_agrees_with_native() {
        let f = SrcFilter::new([Ipv4Addr::new(10, 0, 0, 66)]);
        let cases = vec![
            packet_from(Ipv4Addr::new(10, 0, 0, 66)),
            packet_from(Ipv4Addr::new(10, 0, 0, 65)),
            Packet::from_bytes(vec![0u8; 10]),
        ];
        for p in cases {
            let mut native = SrcFilter::new([Ipv4Addr::new(10, 0, 0, 66)]);
            let n = native.process(p.clone());
            let (m, _) = run_model(&f, &p);
            assert_eq!(n.port(), m.port());
            assert!(!m.is_crash());
        }
    }
}

//! A Click-like textual configuration language for building pipelines.
//!
//! The grammar is a practical subset of the Click language the paper's
//! pipelines are written in:
//!
//! ```text
//! // declarations
//! cls  :: Classifier(12/0800);
//! strip:: EthDecap();
//! chk  :: CheckIPHeader();
//! rt   :: IPLookup(10.0.0.0/8 0, 192.168.0.0/16 1);
//! ttl  :: DecTTL();
//! out  :: Sink();
//!
//! // connections ("a[port] -> [inport]b"; ports default to 0, the input
//! // port is accepted for Click compatibility and ignored)
//! cls[0] -> strip;
//! strip -> chk;
//! chk -> rt;
//! rt[0] -> ttl;
//! rt[1] -> ttl;
//! ttl -> out;
//! ```
//!
//! `//` comments and blank lines are ignored. The first declared element is
//! the pipeline entry.

use crate::element::Element;
use crate::elements::*;
use crate::pipeline::{Pipeline, PipelineError};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Errors raised while parsing a configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A statement is neither a declaration nor a connection.
    Syntax {
        /// 1-based statement number.
        statement: usize,
        /// What went wrong.
        message: String,
    },
    /// An element type the factory does not know.
    UnknownType(String),
    /// Bad arguments for a known element type.
    BadArguments {
        /// Element type.
        element: String,
        /// What went wrong.
        message: String,
    },
    /// The same instance name was declared twice.
    DuplicateName(String),
    /// A connection references an undeclared instance.
    UnknownInstance(String),
    /// The finished graph is invalid (cycle, bad port, ...).
    Graph(PipelineError),
    /// The configuration declares no elements.
    Empty,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Syntax { statement, message } => {
                write!(f, "syntax error in statement {statement}: {message}")
            }
            ConfigError::UnknownType(t) => write!(f, "unknown element type '{t}'"),
            ConfigError::BadArguments { element, message } => {
                write!(f, "bad arguments for {element}: {message}")
            }
            ConfigError::DuplicateName(n) => write!(f, "duplicate instance name '{n}'"),
            ConfigError::UnknownInstance(n) => write!(f, "unknown instance '{n}'"),
            ConfigError::Graph(e) => write!(f, "invalid pipeline graph: {e}"),
            ConfigError::Empty => write!(f, "configuration declares no elements"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Parse a configuration string and build the pipeline it describes.
pub fn parse_config(text: &str) -> Result<Pipeline, ConfigError> {
    // Strip comments, then split into ';'-terminated statements.
    let mut cleaned = String::new();
    for line in text.lines() {
        let line = match line.find("//") {
            Some(pos) => &line[..pos],
            None => line,
        };
        cleaned.push_str(line);
        cleaned.push('\n');
    }

    let statements: Vec<String> = cleaned
        .split(';')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();

    let mut builder = Pipeline::builder();
    let mut names: HashMap<String, usize> = HashMap::new();
    let mut connections: Vec<(String, u8, String)> = Vec::new();

    for (i, stmt) in statements.iter().enumerate() {
        let stmt_no = i + 1;
        if stmt.contains("::") {
            // Declaration: name :: Type(args)
            let (name, rest) = stmt.split_once("::").expect("checked contains");
            let name = name.trim().to_string();
            let rest = rest.trim();
            if name.is_empty() || !is_identifier(&name) {
                return Err(ConfigError::Syntax {
                    statement: stmt_no,
                    message: format!("'{name}' is not a valid instance name"),
                });
            }
            if names.contains_key(&name) {
                return Err(ConfigError::DuplicateName(name));
            }
            let (ty, args) = split_type_args(rest).ok_or_else(|| ConfigError::Syntax {
                statement: stmt_no,
                message: format!("cannot parse declaration '{rest}'"),
            })?;
            let element = instantiate(&ty, &args)?;
            let idx = builder.add(name.clone(), element);
            names.insert(name, idx);
        } else if stmt.contains("->") {
            // Connection chain: a[p] -> [q]b [r] -> c ...
            let parts: Vec<&str> = stmt.split("->").map(|s| s.trim()).collect();
            if parts.len() < 2 {
                return Err(ConfigError::Syntax {
                    statement: stmt_no,
                    message: "connection needs a source and a destination".to_string(),
                });
            }
            for pair in parts.windows(2) {
                let (src_name, src_port) =
                    parse_endpoint_source(pair[0]).ok_or_else(|| ConfigError::Syntax {
                        statement: stmt_no,
                        message: format!("cannot parse connection source '{}'", pair[0]),
                    })?;
                let dst_name = parse_endpoint_dest(pair[1]).ok_or_else(|| ConfigError::Syntax {
                    statement: stmt_no,
                    message: format!("cannot parse connection destination '{}'", pair[1]),
                })?;
                connections.push((src_name, src_port, dst_name));
            }
        } else {
            return Err(ConfigError::Syntax {
                statement: stmt_no,
                message: format!("'{stmt}' is neither a declaration nor a connection"),
            });
        }
    }

    if names.is_empty() {
        return Err(ConfigError::Empty);
    }

    for (src, port, dst) in connections {
        let &from = names
            .get(&src)
            .ok_or_else(|| ConfigError::UnknownInstance(src.clone()))?;
        let &to = names
            .get(&dst)
            .ok_or_else(|| ConfigError::UnknownInstance(dst.clone()))?;
        builder.connect(from, port, to);
    }

    builder.build().map_err(ConfigError::Graph)
}

/// Errors raised while serialising a pipeline to configuration text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigWriteError {
    /// An element cannot be expressed in the config language (its
    /// [`Element::config_args`] returned `None`).
    NotExpressible {
        /// Instance name of the inexpressible element.
        instance: String,
        /// Its element type.
        type_name: String,
    },
    /// An instance name is not a valid config-language identifier.
    BadName(String),
    /// Re-instantiating an element from its emitted `Type(args)` produced
    /// different verification behaviour (a `config_args` implementation is
    /// out of sync with the factory).
    RoundTrip {
        /// Instance name of the drifting element.
        instance: String,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ConfigWriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigWriteError::NotExpressible {
                instance,
                type_name,
            } => write!(
                f,
                "element '{instance}' ({type_name}) cannot be expressed in the config language"
            ),
            ConfigWriteError::BadName(name) => {
                write!(f, "'{name}' is not a valid config-language instance name")
            }
            ConfigWriteError::RoundTrip { instance, message } => {
                write!(f, "element '{instance}' does not round-trip: {message}")
            }
        }
    }
}

impl std::error::Error for ConfigWriteError {}

/// Serialise a pipeline to configuration text that [`parse_config`] parses
/// back into a pipeline with the same instance names, the same wiring, and
/// element-for-element identical verification behaviour (equal
/// [`Element::fingerprint_material`] — checked here, so a drifting
/// [`Element::config_args`] implementation fails loudly at write time
/// instead of silently shipping the wrong element).
///
/// This is what makes a pipeline a *wire* type: the orchestrator's
/// serialisable job plans carry pipelines in exactly this form.
pub fn write_config(pipeline: &Pipeline) -> Result<String, ConfigWriteError> {
    let mut out = String::new();
    // `parse_config` makes the first declared element the entry, so the
    // entry is emitted first and the remaining elements follow in index
    // order.
    let entry = pipeline.entry();
    let order: Vec<usize> = std::iter::once(entry)
        .chain((0..pipeline.len()).filter(|&i| i != entry))
        .collect();
    for &idx in &order {
        let node = pipeline.node(idx);
        if !is_identifier(&node.name) {
            return Err(ConfigWriteError::BadName(node.name.clone()));
        }
        let element = node.element.as_ref();
        let args = element
            .config_args()
            .ok_or_else(|| ConfigWriteError::NotExpressible {
                instance: node.name.clone(),
                type_name: element.type_name().to_string(),
            })?;
        let rebuilt =
            instantiate(element.type_name(), &args).map_err(|e| ConfigWriteError::RoundTrip {
                instance: node.name.clone(),
                message: format!("{}({args}) does not instantiate: {e}", element.type_name()),
            })?;
        if rebuilt.fingerprint_material() != element.fingerprint_material() {
            return Err(ConfigWriteError::RoundTrip {
                instance: node.name.clone(),
                message: format!(
                    "{}({args}) instantiates to different behaviour",
                    element.type_name()
                ),
            });
        }
        out.push_str(&format!(
            "{} :: {}({});\n",
            node.name,
            element.type_name(),
            args
        ));
    }
    for &idx in &order {
        let node = pipeline.node(idx);
        for (port, succ) in node.successors.iter().enumerate() {
            if let Some(succ) = succ {
                out.push_str(&format!(
                    "{}[{}] -> {};\n",
                    node.name,
                    port,
                    pipeline.node(*succ).name
                ));
            }
        }
    }
    Ok(out)
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Split `Type(arg, arg)` into the type name and the raw argument string.
fn split_type_args(s: &str) -> Option<(String, String)> {
    if let Some(open) = s.find('(') {
        let close = s.rfind(')')?;
        if close < open {
            return None;
        }
        let ty = s[..open].trim().to_string();
        let args = s[open + 1..close].trim().to_string();
        if !is_identifier(&ty) {
            return None;
        }
        Some((ty, args))
    } else {
        let ty = s.trim().to_string();
        if !is_identifier(&ty) {
            return None;
        }
        Some((ty, String::new()))
    }
}

/// Parse `name` or `name[port]` on the source side of a connection.
fn parse_endpoint_source(s: &str) -> Option<(String, u8)> {
    let s = s.trim();
    if let Some(open) = s.find('[') {
        let close = s.rfind(']')?;
        let name = s[..open].trim().to_string();
        let port: u8 = s[open + 1..close].trim().parse().ok()?;
        if !is_identifier(&name) {
            return None;
        }
        Some((name, port))
    } else {
        if !is_identifier(s) {
            return None;
        }
        Some((s.to_string(), 0))
    }
}

/// Parse `name`, `[inport]name`, or `name[outport]` (when this endpoint is in
/// the middle of a chain) on the destination side. The input port is ignored;
/// a trailing `[outport]` is also ignored here because the same token will be
/// re-parsed as the source of the following hop.
fn parse_endpoint_dest(s: &str) -> Option<String> {
    let mut s = s.trim();
    // Strip a leading "[n]" (the Click input port).
    if s.starts_with('[') {
        let close = s.find(']')?;
        s = s[close + 1..].trim();
    }
    // Strip a trailing "[n]" (this endpoint's own output port, used by the
    // next hop of the chain).
    if let Some(open) = s.find('[') {
        let name = s[..open].trim();
        if !is_identifier(name) {
            return None;
        }
        return Some(name.to_string());
    }
    if !is_identifier(s) {
        return None;
    }
    Some(s.to_string())
}

/// Instantiate an element from its type name and argument string.
pub fn instantiate(ty: &str, args: &str) -> Result<Box<dyn Element>, ConfigError> {
    let arg_list: Vec<String> = if args.trim().is_empty() {
        Vec::new()
    } else {
        args.split(',').map(|a| a.trim().to_string()).collect()
    };
    let bad = |message: &str| ConfigError::BadArguments {
        element: ty.to_string(),
        message: message.to_string(),
    };

    match ty {
        "Generator" => Ok(Box::new(Generator::new())),
        "Sink" => Ok(Box::new(Sink::new())),
        "Counter" => Ok(Box::new(Counter::new())),
        "CheckIPHeader" => Ok(Box::new(CheckIPHeader::new())),
        "DecTTL" | "DecIPTTL" => Ok(Box::new(DecTTL::new())),
        "EthDecap" => Ok(Box::new(EthDecap::new())),
        "EthEncap" | "EtherEncap" => Ok(Box::new(EthEncap::ipv4_default())),
        "NetFlow" => Ok(Box::new(NetFlow::new())),
        "Paint" => {
            let colour: u8 = arg_list
                .first()
                .ok_or_else(|| bad("expected a colour"))?
                .parse()
                .map_err(|_| bad("colour must be 0..=255"))?;
            Ok(Box::new(Paint::new(colour)))
        }
        "Strip" => {
            let n: u32 = arg_list
                .first()
                .ok_or_else(|| bad("expected a byte count"))?
                .parse()
                .map_err(|_| bad("byte count must be an integer"))?;
            if n == 0 {
                return Err(bad("byte count must be positive"));
            }
            Ok(Box::new(Strip::new(n)))
        }
        "CheckLength" => {
            if arg_list.len() != 2 {
                return Err(bad("expected min, max"));
            }
            let min: u32 = arg_list[0]
                .parse()
                .map_err(|_| bad("min must be an integer"))?;
            let max: u32 = arg_list[1]
                .parse()
                .map_err(|_| bad("max must be an integer"))?;
            if min > max {
                return Err(bad("min must not exceed max"));
            }
            Ok(Box::new(CheckLength::new(min, max)))
        }
        "IPOptions" => {
            let addr = match arg_list.first() {
                Some(a) => a
                    .parse::<Ipv4Addr>()
                    .map_err(|_| bad("router address must be an IPv4 address"))?,
                None => Ipv4Addr::new(10, 255, 255, 254),
            };
            Ok(Box::new(IPOptions::new(addr)))
        }
        "Classifier" => {
            if arg_list.is_empty() {
                return Err(bad("expected at least one pattern"));
            }
            let mut rules = Vec::new();
            for pattern in &arg_list {
                if pattern == "-" {
                    rules.push(ClassifierRule::any());
                    continue;
                }
                let mut fields = Vec::new();
                for field in pattern.split_whitespace() {
                    let (off, val) = field
                        .split_once('/')
                        .ok_or_else(|| bad("pattern fields look like offset/hexvalue"))?;
                    let offset: u32 = off.parse().map_err(|_| bad("offset must be an integer"))?;
                    let value = u16::from_str_radix(val, 16)
                        .map_err(|_| bad("value must be 16-bit hex"))?;
                    fields.push(MatchField { offset, value });
                }
                rules.push(ClassifierRule { fields });
            }
            Ok(Box::new(Classifier::new(rules)))
        }
        "IPLookup" | "LookupIPRoute" => {
            if arg_list.is_empty() {
                return Err(bad("expected at least one route"));
            }
            let mut routes = Vec::new();
            for route in &arg_list {
                let parts: Vec<&str> = route.split_whitespace().collect();
                if parts.len() != 2 {
                    return Err(bad("routes look like prefix/len port"));
                }
                let (prefix, len) = parts[0]
                    .split_once('/')
                    .ok_or_else(|| bad("routes look like prefix/len port"))?;
                let prefix: Ipv4Addr = prefix
                    .parse()
                    .map_err(|_| bad("prefix must be an IPv4 address"))?;
                let prefix_len: u8 = len
                    .parse()
                    .map_err(|_| bad("prefix length must be an integer"))?;
                if prefix_len > 24 {
                    return Err(bad("prefix length above /24 is not supported"));
                }
                let port: u8 = parts[1]
                    .parse()
                    .map_err(|_| bad("port must be an integer"))?;
                routes.push(Route::new(prefix, prefix_len, port));
            }
            Ok(Box::new(IPLookup::new(routes)))
        }
        "SrcFilter" => {
            let mut blocked = Vec::new();
            for a in &arg_list {
                blocked.push(
                    a.parse::<Ipv4Addr>()
                        .map_err(|_| bad("blocked entries must be IPv4 addresses"))?,
                );
            }
            Ok(Box::new(SrcFilter::new(blocked)))
        }
        "Nat" => {
            if arg_list.len() != 2 {
                return Err(bad("expected external-ip, port-base"));
            }
            let ip: Ipv4Addr = arg_list[0]
                .parse()
                .map_err(|_| bad("external IP must be an IPv4 address"))?;
            let base: u16 = arg_list[1]
                .parse()
                .map_err(|_| bad("port base must be a 16-bit integer"))?;
            Ok(Box::new(Nat::new(ip, base)))
        }
        // Buggy fixtures are instantiable from configs so failure-injection
        // scenarios can be described textually in tests and benches.
        "BuggyDecTTL" => Ok(Box::new(BuggyDecTTL::new())),
        "UncheckedOptions" => Ok(Box::new(UncheckedOptions::new())),
        "BrokenClassifier" => Ok(Box::new(BrokenClassifier::new())),
        "OverflowingCounter" => Ok(Box::new(OverflowingCounter::new())),
        other => Err(ConfigError::UnknownType(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane_net::PacketBuilder;
    use std::net::Ipv4Addr;

    const ROUTER: &str = r#"
        // The reference IP router of the paper's evaluation.
        cls   :: Classifier(12/0800);
        strip :: EthDecap();
        chk   :: CheckIPHeader();
        opts  :: IPOptions(10.255.255.254);
        rt    :: IPLookup(10.0.0.0/8 0, 192.168.0.0/16 1);
        ttl0  :: DecTTL();
        ttl1  :: DecTTL();
        enc0  :: EthEncap();
        enc1  :: EthEncap();
        out0  :: Sink();
        out1  :: Sink();

        cls[0] -> strip -> chk -> opts -> rt;
        rt[0] -> ttl0 -> enc0 -> out0;
        rt[1] -> ttl1 -> enc1 -> out1;
    "#;

    #[test]
    fn parses_the_reference_router() {
        let mut p = parse_config(ROUTER).unwrap();
        assert_eq!(p.len(), 11);
        assert_eq!(p.entry(), p.find("cls").unwrap());
        assert_eq!(p.longest_path_len(), 8);

        // A packet destined to 192.168/16 ends up at out1.
        let frame = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 168, 0, 9),
            1000,
            53,
            b"hello",
        )
        .build();
        let out = p.push(frame);
        let last = *out.hops.last().unwrap();
        assert_eq!(p.node(last).name, "out1");
        assert!(!out.is_crash());
    }

    #[test]
    fn comments_and_whitespace_are_tolerated() {
        let cfg = "a :: Generator();\n// a comment line\n\n b::Sink() ;\n a -> b;";
        let p = parse_config(cfg).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn chained_connections_with_ports() {
        let cfg = r#"
            c :: Classifier(12/0800, -);
            s0 :: Sink();
            s1 :: Sink();
            c[0] -> s0;
            c[1] -> [0]s1;
        "#;
        let p = parse_config(cfg).unwrap();
        assert_eq!(p.node(p.find("c").unwrap()).successors.len(), 2);
    }

    #[test]
    fn unknown_type_and_instance_errors() {
        assert!(matches!(
            parse_config("x :: Warp();"),
            Err(ConfigError::UnknownType(_))
        ));
        assert!(matches!(
            parse_config("a :: Sink(); a -> b;"),
            Err(ConfigError::UnknownInstance(_))
        ));
        assert!(matches!(
            parse_config("a :: Sink(); a :: Sink();"),
            Err(ConfigError::DuplicateName(_))
        ));
        assert!(matches!(parse_config("   "), Err(ConfigError::Empty)));
        assert!(matches!(
            parse_config("a :: Generator(); nonsense here"),
            Err(ConfigError::Syntax { .. })
        ));
    }

    #[test]
    fn bad_arguments_are_reported() {
        for cfg in [
            "a :: Strip();",
            "a :: Strip(zero);",
            "a :: Strip(0);",
            "a :: CheckLength(10);",
            "a :: CheckLength(100, 10);",
            "a :: Classifier();",
            "a :: Classifier(nonsense);",
            "a :: IPLookup();",
            "a :: IPLookup(10.0.0.0/33 0);",
            "a :: IPLookup(10.0.0.0 0);",
            "a :: Nat(10.0.0.1);",
            "a :: Nat(notanip, 99);",
            "a :: Paint();",
            "a :: SrcFilter(notanip);",
            "a :: IPOptions(notanip);",
        ] {
            match parse_config(cfg) {
                Err(ConfigError::BadArguments { .. }) => {}
                other => panic!("expected BadArguments for '{cfg}', got {other:?}"),
            }
        }
    }

    #[test]
    fn graph_errors_are_propagated() {
        let cfg = "a :: Generator(); b :: Generator(); a -> b; b -> a;";
        assert!(matches!(
            parse_config(cfg),
            Err(ConfigError::Graph(PipelineError::CyclicGraph))
        ));
    }

    #[test]
    fn all_factory_types_instantiable() {
        for (ty, args) in [
            ("Generator", ""),
            ("Sink", ""),
            ("Counter", ""),
            ("CheckIPHeader", ""),
            ("DecTTL", ""),
            ("DecIPTTL", ""),
            ("EthDecap", ""),
            ("EthEncap", ""),
            ("EtherEncap", ""),
            ("NetFlow", ""),
            ("Paint", "3"),
            ("Strip", "14"),
            ("CheckLength", "64, 1500"),
            ("IPOptions", ""),
            ("IPOptions", "10.0.0.1"),
            ("Classifier", "12/0800"),
            ("IPLookup", "10.0.0.0/8 0"),
            ("LookupIPRoute", "10.0.0.0/8 0"),
            ("SrcFilter", "10.0.0.1"),
            ("SrcFilter", ""),
            ("Nat", "203.0.113.1, 20000"),
            ("BuggyDecTTL", ""),
            ("UncheckedOptions", ""),
            ("BrokenClassifier", ""),
            ("OverflowingCounter", ""),
        ] {
            let e = instantiate(ty, args);
            assert!(e.is_ok(), "failed to instantiate {ty}({args}): {e:?}");
        }
    }

    #[test]
    fn write_config_round_trips_every_preset() {
        use crate::presets;
        type PresetRow = (&'static str, fn() -> Pipeline);
        let presets: Vec<PresetRow> = vec![
            ("ip_router", presets::ip_router_pipeline),
            ("linear_router", presets::linear_router_pipeline),
            ("middlebox", presets::middlebox_pipeline),
            ("firewall", || presets::firewall_pipeline(vec![])),
            ("buggy", presets::buggy_pipeline),
        ];
        for (name, make) in presets {
            let original = make();
            let text = write_config(&original)
                .unwrap_or_else(|e| panic!("{name} does not serialise: {e}"));
            let reparsed =
                parse_config(&text).unwrap_or_else(|e| panic!("{name} does not re-parse: {e}"));
            assert_eq!(reparsed.len(), original.len(), "{name}: element count");
            assert_eq!(
                reparsed.node(reparsed.entry()).name,
                original.node(original.entry()).name,
                "{name}: entry"
            );
            for idx in 0..original.len() {
                let a = original.node(idx);
                let b = reparsed
                    .find(&a.name)
                    .map(|i| reparsed.node(i))
                    .unwrap_or_else(|| panic!("{name}: instance '{}' lost", a.name));
                assert_eq!(
                    a.element.fingerprint_material(),
                    b.element.fingerprint_material(),
                    "{name}: behaviour of '{}' drifted",
                    a.name
                );
                let succ_names =
                    |p: &Pipeline, n: &crate::pipeline::ElementNode| -> Vec<Option<String>> {
                        n.successors
                            .iter()
                            .map(|s| s.map(|i| p.node(i).name.clone()))
                            .collect()
                    };
                assert_eq!(
                    succ_names(&original, a),
                    succ_names(&reparsed, b),
                    "{name}: wiring of '{}' drifted",
                    a.name
                );
            }
            // Serialising the reparsed pipeline is byte-stable.
            assert_eq!(write_config(&reparsed).unwrap(), text, "{name}");
        }
    }

    #[test]
    fn write_config_round_trips_every_factory_type() {
        // Every element the factory can build must also serialise back to
        // arguments the factory accepts, with identical behaviour.
        for (ty, args) in [
            ("Generator", ""),
            ("Sink", ""),
            ("Counter", ""),
            ("CheckIPHeader", ""),
            ("DecTTL", ""),
            ("EthDecap", ""),
            ("EthEncap", ""),
            ("NetFlow", ""),
            ("Paint", "3"),
            ("Strip", "14"),
            ("CheckLength", "64, 1500"),
            ("IPOptions", "10.0.0.1"),
            ("Classifier", "12/0800 20/0001, -"),
            ("IPLookup", "10.0.0.0/8 0, 192.168.0.0/16 1"),
            ("SrcFilter", "10.0.0.1, 192.0.2.7"),
            ("SrcFilter", ""),
            ("Nat", "203.0.113.1, 20000"),
            ("BuggyDecTTL", ""),
            ("UncheckedOptions", ""),
            ("BrokenClassifier", ""),
            ("OverflowingCounter", ""),
        ] {
            let element = instantiate(ty, args).unwrap();
            let rendered = element
                .config_args()
                .unwrap_or_else(|| panic!("{ty}({args}) renders no config args"));
            let rebuilt = instantiate(ty, &rendered)
                .unwrap_or_else(|e| panic!("{ty}({rendered}) does not re-instantiate: {e}"));
            assert_eq!(
                rebuilt.fingerprint_material(),
                element.fingerprint_material(),
                "{ty}({args}) -> ({rendered}) drifted"
            );
        }
    }

    #[test]
    fn write_config_rejects_inexpressible_elements() {
        use dataplane_net::MacAddr;
        let mut b = Pipeline::builder();
        let enc = b.add(
            "enc",
            Box::new(EthEncap::new(MacAddr::local(9), MacAddr::local(8), 0x86dd)),
        );
        let out = b.add("out", Box::new(Sink::new()));
        b.connect(enc, 0, out);
        let p = b.build().unwrap();
        assert!(matches!(
            write_config(&p),
            Err(ConfigWriteError::NotExpressible { .. })
        ));
    }

    #[test]
    fn error_display() {
        let errs: Vec<ConfigError> = vec![
            ConfigError::Syntax {
                statement: 1,
                message: "x".into(),
            },
            ConfigError::UnknownType("T".into()),
            ConfigError::BadArguments {
                element: "E".into(),
                message: "m".into(),
            },
            ConfigError::DuplicateName("n".into()),
            ConfigError::UnknownInstance("i".into()),
            ConfigError::Graph(PipelineError::CyclicGraph),
            ConfigError::Empty,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! Concrete pipeline runtimes: single-threaded and multi-threaded
//! (SMPClick-style) execution of packet streams, plus a model-interpreting
//! runtime used for differential testing and instruction accounting.

use crate::element::{build_model_state, run_model_with_state, Action};
use crate::pipeline::{Disposition, Pipeline, PipelineOutcome};
use dataplane_ir::ElementState;
use dataplane_net::Packet;
use parking_lot::Mutex;
use std::fmt;
use std::time::{Duration, Instant};

/// Aggregate statistics from running a packet stream through a pipeline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Packets injected.
    pub injected: u64,
    /// Packets that exited the pipeline through an unconnected port.
    pub forwarded: u64,
    /// Packets dropped by some element.
    pub dropped: u64,
    /// Packets whose processing crashed.
    pub crashed: u64,
    /// Total element hops (a proxy for per-packet work).
    pub hops: u64,
}

impl RunStats {
    fn absorb(&mut self, outcome: &PipelineOutcome) {
        self.injected += 1;
        self.hops += outcome.hops.len() as u64;
        match outcome.disposition {
            Disposition::Exited { .. } => self.forwarded += 1,
            Disposition::Dropped { .. } => self.dropped += 1,
            Disposition::Crashed { .. } => self.crashed += 1,
        }
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &RunStats) {
        self.injected += other.injected;
        self.forwarded += other.forwarded;
        self.dropped += other.dropped;
        self.crashed += other.crashed;
        self.hops += other.hops;
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {}, forwarded {}, dropped {}, crashed {}, hops {}",
            self.injected, self.forwarded, self.dropped, self.crashed, self.hops
        )
    }
}

/// Result of a timed run: statistics plus wall-clock duration.
#[derive(Clone, Debug)]
pub struct TimedRun {
    /// Aggregate packet statistics.
    pub stats: RunStats,
    /// Wall-clock time the run took.
    pub elapsed: Duration,
}

impl TimedRun {
    /// Packets per second achieved.
    pub fn packets_per_second(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.stats.injected as f64 / self.elapsed.as_secs_f64()
    }
}

/// Run a batch of packets through the pipeline on the calling thread.
pub fn run_single_threaded(pipeline: &mut Pipeline, packets: Vec<Packet>) -> TimedRun {
    let start = Instant::now();
    let mut stats = RunStats::default();
    for pkt in packets {
        let outcome = pipeline.push(pkt);
        stats.absorb(&outcome);
    }
    TimedRun {
        stats,
        elapsed: start.elapsed(),
    }
}

/// Run a batch of packets using `threads` worker threads, each with its own
/// replica of the pipeline (built by `make_pipeline`).
///
/// This mirrors how SMPClick parallelises packet processing: because elements
/// share no mutable state with each other, the only cross-thread state is the
/// packet queue itself. Per-element private state (flow tables, NAT maps) is
/// replicated per thread, exactly as a thread-partitioned dataplane would.
pub fn run_parallel<F>(make_pipeline: F, packets: Vec<Packet>, threads: usize) -> TimedRun
where
    F: Fn() -> Pipeline + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let start = Instant::now();
    let queue: crossbeam::queue::SegQueue<Packet> = crossbeam::queue::SegQueue::new();
    for p in packets {
        queue.push(p);
    }
    let total_stats = Mutex::new(RunStats::default());

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let mut pipeline = make_pipeline();
                let mut local = RunStats::default();
                while let Some(pkt) = queue.pop() {
                    let outcome = pipeline.push(pkt);
                    local.absorb(&outcome);
                }
                total_stats.lock().merge(&local);
            });
        }
    })
    .expect("worker thread panicked");

    TimedRun {
        stats: total_stats.into_inner(),
        elapsed: start.elapsed(),
    }
}

/// Push one packet through a *fresh* model state: the replay primitive of
/// differential conformance, where no prior packet's element state may
/// influence the verdict. Equivalent to `ModelRuntime::new(pipeline).push(p)`
/// but names the intent at the call site.
pub fn model_run_fresh(pipeline: &Pipeline, packet: Packet) -> ModelRun {
    ModelRuntime::new(pipeline).push(packet)
}

/// How one packet fared when executed through the pipeline *via the element
/// models* (IR interpretation) rather than the native implementations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelRun {
    /// Terminal disposition (same shape as the native runtime's).
    pub disposition: Disposition,
    /// The sequence of elements visited.
    pub hops: Vec<usize>,
    /// Total IR instructions executed across all visited elements — the
    /// "number of instructions per packet" metric of the paper's bounded-
    /// latency experiment.
    pub instructions: u64,
}

/// A model-interpreting runtime: executes every element's IR model instead of
/// its native code, maintaining per-element model state across packets.
///
/// Used (a) by differential tests that check native ≡ model at the pipeline
/// level, and (b) to measure concrete per-packet instruction counts that the
/// verifier's bounded-instruction proof can be compared against.
pub struct ModelRuntime<'p> {
    pipeline: &'p Pipeline,
    states: Vec<ElementState>,
}

impl<'p> ModelRuntime<'p> {
    /// Build the model runtime for a pipeline (instantiating each element's
    /// model state).
    pub fn new(pipeline: &'p Pipeline) -> Self {
        let states = pipeline
            .iter()
            .map(|(_, node)| build_model_state(node.element.as_ref()))
            .collect();
        ModelRuntime { pipeline, states }
    }

    /// Execute one packet through the element models.
    pub fn push(&mut self, packet: Packet) -> ModelRun {
        let mut current = self.pipeline.entry();
        let mut pkt = packet;
        let mut hops = Vec::new();
        let mut instructions = 0u64;
        loop {
            hops.push(current);
            let node = self.pipeline.node(current);
            let (action, count) =
                run_model_with_state(node.element.as_ref(), &pkt, &mut self.states[current]);
            instructions += count;
            match action {
                Action::Drop => {
                    return ModelRun {
                        disposition: Disposition::Dropped { at: current },
                        hops,
                        instructions,
                    }
                }
                Action::Crash(reason) => {
                    return ModelRun {
                        disposition: Disposition::Crashed {
                            at: current,
                            reason,
                        },
                        hops,
                        instructions,
                    }
                }
                Action::Emit(port, out) => match node.successors.get(port as usize) {
                    Some(Some(next)) => {
                        current = *next;
                        pkt = out;
                    }
                    _ => {
                        return ModelRun {
                            disposition: Disposition::Exited {
                                at: current,
                                port,
                                packet: out,
                            },
                            hops,
                            instructions,
                        }
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{ip_router_pipeline, middlebox_pipeline};
    use dataplane_net::WorkloadGen;

    #[test]
    fn single_threaded_run_counts_everything() {
        let mut pipeline = ip_router_pipeline();
        let packets = WorkloadGen::adversarial(11).batch(200);
        let run = run_single_threaded(&mut pipeline, packets);
        assert_eq!(run.stats.injected, 200);
        assert_eq!(
            run.stats.injected,
            run.stats.forwarded + run.stats.dropped + run.stats.crashed
        );
        assert_eq!(run.stats.crashed, 0);
        assert!(run.stats.hops >= run.stats.injected);
        assert!(run.packets_per_second() > 0.0);
        assert!(!run.stats.to_string().is_empty());
    }

    #[test]
    fn parallel_run_processes_all_packets() {
        let packets = WorkloadGen::clean(5).batch(400);
        let run = run_parallel(ip_router_pipeline, packets, 4);
        assert_eq!(run.stats.injected, 400);
        assert_eq!(run.stats.crashed, 0);
        // Every packet ends at a Sink (which drops) or is dropped earlier;
        // clean traffic must traverse the full 8-element path on average.
        assert_eq!(run.stats.dropped, 400);
        assert!(run.stats.hops > 400 * 6);
    }

    #[test]
    #[should_panic]
    fn parallel_run_needs_a_thread() {
        run_parallel(ip_router_pipeline, vec![], 0);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = RunStats {
            injected: 1,
            forwarded: 1,
            dropped: 0,
            crashed: 0,
            hops: 3,
        };
        let b = RunStats {
            injected: 2,
            forwarded: 0,
            dropped: 1,
            crashed: 1,
            hops: 4,
        };
        a.merge(&b);
        assert_eq!(a.injected, 3);
        assert_eq!(a.hops, 7);
    }

    #[test]
    fn model_runtime_agrees_with_native_runtime() {
        let mut native = ip_router_pipeline();
        let model_pipeline = ip_router_pipeline();
        let mut model = ModelRuntime::new(&model_pipeline);
        let packets = WorkloadGen::adversarial(23).batch(150);
        for pkt in packets {
            let n = native.push(pkt.clone());
            let m = model.push(pkt);
            assert_eq!(n.hops, m.hops, "element paths diverged");
            match (&n.disposition, &m.disposition) {
                (
                    Disposition::Exited { packet: np, .. },
                    Disposition::Exited { packet: mp, .. },
                ) => {
                    assert_eq!(np.bytes(), mp.bytes(), "output packets diverged");
                }
                (Disposition::Dropped { at: na }, Disposition::Dropped { at: ma }) => {
                    assert_eq!(na, ma)
                }
                (Disposition::Crashed { .. }, Disposition::Crashed { .. }) => {}
                other => panic!("dispositions diverged: {other:?}"),
            }
            assert!(m.instructions > 0);
        }
    }

    #[test]
    fn model_runtime_keeps_stateful_elements_consistent() {
        // Through the middlebox (NetFlow + NAT) the model runtime must match
        // the native pipeline packet-for-packet even though behaviour depends
        // on accumulated private state.
        let mut native = middlebox_pipeline();
        let model_pipeline = middlebox_pipeline();
        let mut model = ModelRuntime::new(&model_pipeline);
        let packets = WorkloadGen::clean(99).batch(100);
        for pkt in packets {
            let n = native.push(pkt.clone());
            let m = model.push(pkt);
            match (&n.disposition, &m.disposition) {
                (
                    Disposition::Exited { packet: np, .. },
                    Disposition::Exited { packet: mp, .. },
                ) => {
                    assert_eq!(np.bytes(), mp.bytes());
                }
                (a, b) => assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "dispositions diverged"
                ),
            }
        }
    }

    #[test]
    fn instruction_counts_reflect_packet_complexity() {
        let pipeline = ip_router_pipeline();
        let mut model = ModelRuntime::new(&pipeline);
        use dataplane_net::PacketBuilder;
        use std::net::Ipv4Addr;
        let plain = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            b"x",
        )
        .build();
        let with_options = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            b"x",
        )
        .ip_options(&[7, 15, 4, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1])
        .build();
        let a = model.push(plain);
        let b = model.push(with_options);
        assert!(
            b.instructions > a.instructions,
            "options packet must execute more instructions ({} vs {})",
            b.instructions,
            a.instructions
        );
    }
}

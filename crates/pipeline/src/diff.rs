//! Structural diffing of pipelines, the foundation of incremental
//! re-verification.
//!
//! Two pipelines are compared instance-by-instance (matched by instance
//! name) on their **verification-relevant behaviour** — the
//! [`crate::Element::fingerprint_material`] text, i.e. type, configuration,
//! IR model, and initial table contents — and on their wiring (entry point
//! and port-level connections). The verifier's summaries are keyed by
//! exactly that behaviour text, so:
//!
//! * an unchanged instance's summary is reusable verbatim,
//! * a wiring-only diff needs no re-exploration at all (composition only),
//! * and only behaviour-changed instances force fresh Step-1 work.

use crate::pipeline::Pipeline;
use std::collections::BTreeMap;

/// What changed between two pipelines.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineDiff {
    /// Instances present in both pipelines whose verification-relevant
    /// behaviour differs (sorted by name).
    pub changed: Vec<String>,
    /// Instances only the new pipeline has (sorted).
    pub added: Vec<String>,
    /// Instances only the old pipeline has (sorted).
    pub removed: Vec<String>,
    /// The connection graph (entry point or port-level edges) differs.
    pub wiring_changed: bool,
}

impl PipelineDiff {
    /// True if the set of element behaviours differs (any change, addition,
    /// or removal — the diffs that require new Step-1 exploration).
    pub fn elements_changed(&self) -> bool {
        !self.changed.is_empty() || !self.added.is_empty() || !self.removed.is_empty()
    }

    /// True if nothing verification-relevant differs at all.
    pub fn is_identical(&self) -> bool {
        !self.elements_changed() && !self.wiring_changed
    }

    /// True if only the wiring differs: every instance's behaviour is
    /// unchanged, so re-verification needs no element exploration.
    pub fn is_wiring_only(&self) -> bool {
        !self.elements_changed() && self.wiring_changed
    }
}

/// The wiring of `pipeline` as comparable data: the entry instance plus
/// every `(source, port) -> destination` edge, by instance name.
fn wiring(pipeline: &Pipeline) -> (String, Vec<(String, u8, String)>) {
    let entry = pipeline.node(pipeline.entry()).name.clone();
    let mut edges = Vec::new();
    for (_, node) in pipeline.iter() {
        for (port, successor) in node.successors.iter().enumerate() {
            if let Some(dst) = successor {
                edges.push((
                    node.name.clone(),
                    port as u8,
                    pipeline.node(*dst).name.clone(),
                ));
            }
        }
    }
    edges.sort();
    (entry, edges)
}

/// Compare two pipelines instance-by-instance and on wiring.
pub fn diff_pipelines(old: &Pipeline, new: &Pipeline) -> PipelineDiff {
    let materials = |p: &Pipeline| -> BTreeMap<String, String> {
        p.iter()
            .map(|(_, node)| (node.name.clone(), node.element.fingerprint_material()))
            .collect()
    };
    let old_materials = materials(old);
    let new_materials = materials(new);

    let mut diff = PipelineDiff::default();
    for (name, material) in &new_materials {
        match old_materials.get(name) {
            None => diff.added.push(name.clone()),
            Some(old_material) if old_material != material => diff.changed.push(name.clone()),
            Some(_) => {}
        }
    }
    for name in old_materials.keys() {
        if !new_materials.contains_key(name) {
            diff.removed.push(name.clone());
        }
    }
    diff.wiring_changed = wiring(old) != wiring(new);
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::parse_config;

    const BASE: &str = r#"
        cls :: Classifier(12/0800);
        strip :: EthDecap();
        chk :: CheckIPHeader();
        rt :: IPLookup(10.0.0.0/8 0, 192.168.0.0/16 1);
        ttl :: DecTTL();
        out0 :: Sink();
        out1 :: Sink();
        cls -> strip -> chk -> rt;
        rt[0] -> ttl -> out0;
        rt[1] -> out1;
    "#;

    #[test]
    fn identical_configs_diff_empty() {
        let a = parse_config(BASE).unwrap();
        let b = parse_config(BASE).unwrap();
        let diff = diff_pipelines(&a, &b);
        assert!(diff.is_identical(), "{diff:?}");
        assert!(!diff.is_wiring_only());
        assert!(!diff.elements_changed());
    }

    #[test]
    fn one_edited_element_is_the_only_change() {
        let a = parse_config(BASE).unwrap();
        let b = parse_config(&BASE.replace("10.0.0.0/8 0", "10.0.0.0/8 1")).unwrap();
        let diff = diff_pipelines(&a, &b);
        assert_eq!(diff.changed, vec!["rt".to_string()]);
        assert!(diff.added.is_empty() && diff.removed.is_empty());
        assert!(diff.elements_changed());
        // Changing a route's output port changes behaviour, not wiring.
        assert!(!diff.wiring_changed);
    }

    #[test]
    fn rerouted_edge_is_wiring_only() {
        let rewired = BASE.replace("rt[1] -> out1;", "rt[1] -> ttl;");
        let a = parse_config(BASE).unwrap();
        let b = parse_config(&rewired).unwrap();
        let diff = diff_pipelines(&a, &b);
        assert!(diff.is_wiring_only(), "{diff:?}");
        assert!(!diff.elements_changed());
    }

    #[test]
    fn added_and_removed_instances_are_reported() {
        let grown = BASE.replace("ttl :: DecTTL();", "ttl :: DecTTL();\nflow :: NetFlow();");
        let a = parse_config(BASE).unwrap();
        let b = parse_config(&grown).unwrap();
        let diff = diff_pipelines(&a, &b);
        assert_eq!(diff.added, vec!["flow".to_string()]);
        assert_eq!(diff_pipelines(&b, &a).removed, vec!["flow".to_string()]);
    }
}

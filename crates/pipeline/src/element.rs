//! The element abstraction: the unit of packet processing and of
//! verification.
//!
//! An element owns the packet while processing it (packet state), may own
//! private state, may read static state, and hands the packet to exactly one
//! downstream element per emission — the structure §3 of the paper argues is
//! what makes dataplanes verifiable.
//!
//! Every element exposes **two** behaviours that must agree:
//!
//! * [`Element::process`] — the native Rust fast path used by the concrete
//!   runtime;
//! * [`Element::model`] — the element's IR program, which the symbolic engine
//!   explores and the verifier composes.
//!
//! The test suite checks the two agree packet-by-packet (differential
//! testing), which is this reproduction's analog of the paper trusting S2E to
//! faithfully execute the compiled C++.

use dataplane_ir::{CrashReason, DsId, ElementState, Program};
use dataplane_net::Packet;
use std::collections::BTreeMap;
use std::fmt;

/// What an element did with a packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Push the (possibly rewritten) packet to the given output port.
    Emit(u8, Packet),
    /// Drop the packet.
    Drop,
    /// The element would have crashed processing this packet (the native
    /// implementation detected the same condition the model treats as a
    /// crash, e.g. an out-of-bounds read in equivalent C code).
    Crash(CrashReason),
}

impl Action {
    /// True if the action is a crash.
    pub fn is_crash(&self) -> bool {
        matches!(self, Action::Crash(_))
    }

    /// The output port, if the packet was emitted.
    pub fn port(&self) -> Option<u8> {
        match self {
            Action::Emit(p, _) => Some(*p),
            _ => None,
        }
    }
}

/// Initial contents for one data structure of an element's model:
/// `(key, value)` pairs to install before execution or verification.
pub type DsContents = Vec<(u64, u64)>;

/// A packet-processing element.
///
/// `Send + Sync` so a pipeline can move between orchestrator workers *and* be
/// shared by reference across the threads of a parallel Step-2 run (all
/// native state is mutated only through `&mut self`).
pub trait Element: Send + Sync {
    /// The element type name (e.g. `"CheckIPHeader"`). Used by the config
    /// language, reports, and summary caching (one summary per type name +
    /// configuration).
    fn type_name(&self) -> &'static str;

    /// A configuration string that, together with [`Element::type_name`],
    /// identifies this element's behaviour for summary caching. Elements with
    /// the same type name and config key share a verification summary.
    fn config_key(&self) -> String {
        String::new()
    }

    /// Number of output ports.
    fn output_ports(&self) -> usize;

    /// Process one packet natively.
    fn process(&mut self, packet: Packet) -> Action;

    /// The element's verification model.
    fn model(&self) -> Program;

    /// Initial data-structure contents for the model (e.g. a forwarding table
    /// compiled from the element's configuration). Keys are [`DsId`] indexes
    /// into the model's declarations.
    fn model_state(&self) -> BTreeMap<DsId, DsContents> {
        BTreeMap::new()
    }

    /// Reset the element's private state (e.g. between benchmark runs).
    fn reset(&mut self) {}

    /// The argument string that, passed to the config-language factory
    /// ([`crate::config::instantiate`]) together with [`Element::type_name`],
    /// reconstructs an element with identical verification behaviour.
    /// `None` means this element cannot be expressed in the config language
    /// (then a pipeline containing it cannot be serialised to config text —
    /// see [`crate::config::write_config`]).
    ///
    /// The default covers configuration-free elements; every element with a
    /// non-empty [`Element::config_key`] must override it.
    fn config_args(&self) -> Option<String> {
        if self.config_key().is_empty() {
            Some(String::new())
        } else {
            None
        }
    }

    /// Canonical text describing this element's verification-relevant
    /// behaviour: type name, configuration key, the pretty-printed IR model,
    /// and the model's initial data-structure contents. Two elements with
    /// equal fingerprint material have identical summaries, so the material
    /// is what content-addressed summary caches hash.
    fn fingerprint_material(&self) -> String {
        let mut material = String::new();
        material.push_str(self.type_name());
        material.push('\u{1f}');
        material.push_str(&self.config_key());
        material.push('\u{1f}');
        material.push_str(&dataplane_ir::pretty::program_to_string(&self.model()));
        for (ds, contents) in self.model_state() {
            material.push_str(&format!("\u{1f}ds{}:", ds.0));
            for (k, v) in contents {
                material.push_str(&format!("{k}={v},"));
            }
        }
        material
    }
}

/// Build the concrete [`ElementState`] for an element's model, with the
/// model's static/private tables populated from [`Element::model_state`].
pub fn build_model_state(element: &dyn Element) -> ElementState {
    let program = element.model();
    let mut state = ElementState::for_program(&program);
    for (ds, contents) in element.model_state() {
        if let Some(store) = state.store_mut(ds) {
            let width = store.decl().value_width;
            for (k, v) in contents {
                store.write(k, dataplane_ir::BitVec::new(width, v));
            }
        }
    }
    state
}

impl fmt::Debug for dyn Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}) [{} ports]",
            self.type_name(),
            self.config_key(),
            self.output_ports()
        )
    }
}

/// Run an element's **model** on a packet: interpret the IR program with the
/// model's initial state. Returns the action derived from the model's
/// outcome together with the instruction count. This is the reference
/// semantics that `process` must match.
pub fn run_model(element: &dyn Element, packet: &Packet) -> (Action, u64) {
    run_model_with_state(element, packet, &mut build_model_state(element))
}

/// Like [`run_model`], but against caller-managed state (so private state
/// persists across packets, as it does in the native element).
pub fn run_model_with_state(
    element: &dyn Element,
    packet: &Packet,
    state: &mut ElementState,
) -> (Action, u64) {
    let program = element.model();
    let mut bytes = packet.bytes().to_vec();
    let result = dataplane_ir::execute_default(&program, &mut bytes, state)
        .expect("element model exceeded the interpreter instruction limit");
    let action = match result.outcome {
        dataplane_ir::Outcome::Emitted(port) => {
            let mut out = packet.clone();
            *out.bytes_mut() = bytes;
            Action::Emit(port, out)
        }
        dataplane_ir::Outcome::Dropped => Action::Drop,
        dataplane_ir::Outcome::Crashed(reason) => Action::Crash(reason),
    };
    (action, result.instructions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane_ir::builder::{Block, ProgramBuilder};
    use dataplane_ir::expr::dsl::*;

    /// A minimal element used to exercise the trait plumbing: forwards
    /// packets whose first byte is even to port 0 and odd ones to port 1.
    struct ParityFork;

    impl Element for ParityFork {
        fn type_name(&self) -> &'static str {
            "ParityFork"
        }
        fn output_ports(&self) -> usize {
            2
        }
        fn process(&mut self, packet: Packet) -> Action {
            match packet.get_u8(0) {
                Some(b) if b % 2 == 0 => Action::Emit(0, packet),
                Some(_) => Action::Emit(1, packet),
                None => Action::Crash(CrashReason::PacketOutOfBounds {
                    offset: 0,
                    width_bytes: 1,
                    packet_len: 0,
                }),
            }
        }
        fn model(&self) -> Program {
            let mut pb = ProgramBuilder::new("ParityFork", 2);
            let b0 = pb.local("b0", 8);
            let mut body = Block::new();
            body.assign(b0, pkt(0, 1));
            body.if_else(
                eq(and(l(b0), c(8, 1)), c(8, 0)),
                Block::with(|b| {
                    b.emit(0);
                }),
                Block::with(|b| {
                    b.emit(1);
                }),
            );
            pb.finish(body).unwrap()
        }
    }

    #[test]
    fn native_and_model_agree() {
        let mut e = ParityFork;
        for first in [0u8, 1, 2, 3, 250, 255] {
            let pkt = Packet::from_bytes(vec![first, 9, 9, 9]);
            let native = e.process(pkt.clone());
            let (model, instructions) = run_model(&e, &pkt);
            assert_eq!(native.port(), model.port(), "first byte {first}");
            assert!(instructions > 0);
        }
    }

    #[test]
    fn empty_packet_crashes_both_ways() {
        let mut e = ParityFork;
        let pkt = Packet::from_bytes(vec![]);
        assert!(e.process(pkt.clone()).is_crash());
        let (model, _) = run_model(&e, &pkt);
        assert!(model.is_crash());
    }

    #[test]
    fn action_helpers() {
        let pkt = Packet::from_bytes(vec![1]);
        assert_eq!(Action::Emit(3, pkt).port(), Some(3));
        assert_eq!(Action::Drop.port(), None);
        assert!(Action::Crash(CrashReason::DivisionByZero).is_crash());
        assert!(!Action::Drop.is_crash());
    }

    #[test]
    fn debug_formatting_mentions_type() {
        let e = ParityFork;
        let d: &dyn Element = &e;
        let s = format!("{:?}", d);
        assert!(s.contains("ParityFork"));
        assert!(s.contains("2 ports"));
    }

    #[test]
    fn default_model_state_is_empty() {
        let e = ParityFork;
        assert!(e.model_state().is_empty());
        let state = build_model_state(&e);
        assert!(state.is_empty());
        assert_eq!(e.config_key(), "");
    }
}

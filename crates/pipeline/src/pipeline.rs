//! Pipeline graphs: directed graphs of element instances connected port to
//! port.
//!
//! Following the paper, a pipeline is a DAG of elements in which a packet is
//! pushed from the entry element downstream until it is emitted by an element
//! with an unconnected port (leaves the pipeline), dropped, or the pipeline
//! crashes. Each output port connects to at most one downstream element;
//! multiple upstream ports may feed the same element.

use crate::element::{Action, Element};
use dataplane_ir::CrashReason;
use dataplane_net::Packet;
use std::fmt;

/// Identifies an element instance within a pipeline.
pub type ElementIdx = usize;

/// One element instance plus its wiring.
pub struct ElementNode {
    /// Instance name (unique within the pipeline).
    pub name: String,
    /// The element implementation.
    pub element: Box<dyn Element>,
    /// Downstream connection per output port: `successors[p]` is the element
    /// that receives packets emitted on port `p`, or `None` if port `p` exits
    /// the pipeline.
    pub successors: Vec<Option<ElementIdx>>,
}

impl fmt::Debug for ElementNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} :: {:?} -> {:?}",
            self.name, self.element, self.successors
        )
    }
}

/// Errors building a pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipelineError {
    /// Two elements share a name.
    DuplicateName(String),
    /// A connection references an element name that was never declared.
    UnknownElement(String),
    /// A connection references an output port the element does not have.
    InvalidPort {
        /// Element instance name.
        element: String,
        /// The port that was out of range.
        port: u8,
        /// How many output ports the element actually has.
        available: usize,
    },
    /// An output port was connected twice.
    PortAlreadyConnected {
        /// Element instance name.
        element: String,
        /// The port connected twice.
        port: u8,
    },
    /// The element graph contains a cycle (packets could loop forever).
    CyclicGraph,
    /// The pipeline has no elements.
    Empty,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::DuplicateName(n) => write!(f, "duplicate element name '{n}'"),
            PipelineError::UnknownElement(n) => write!(f, "unknown element '{n}'"),
            PipelineError::InvalidPort {
                element,
                port,
                available,
            } => write!(
                f,
                "element '{element}' has {available} output ports, port {port} does not exist"
            ),
            PipelineError::PortAlreadyConnected { element, port } => {
                write!(f, "output port {port} of '{element}' is already connected")
            }
            PipelineError::CyclicGraph => write!(f, "element graph contains a cycle"),
            PipelineError::Empty => write!(f, "pipeline has no elements"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Builder for [`Pipeline`].
#[derive(Default)]
pub struct PipelineBuilder {
    nodes: Vec<ElementNode>,
}

impl PipelineBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        PipelineBuilder { nodes: Vec::new() }
    }

    /// Add an element instance under `name` and return its index.
    pub fn add(&mut self, name: impl Into<String>, element: Box<dyn Element>) -> ElementIdx {
        let ports = element.output_ports();
        self.nodes.push(ElementNode {
            name: name.into(),
            element,
            successors: vec![None; ports],
        });
        self.nodes.len() - 1
    }

    /// Connect output port `port` of `from` to `to`.
    pub fn connect(&mut self, from: ElementIdx, port: u8, to: ElementIdx) -> &mut Self {
        self.nodes[from].successors[port as usize] = Some(to);
        self
    }

    /// Convenience: connect port 0 of each element to the next, forming a
    /// linear chain.
    pub fn chain(&mut self, elements: &[ElementIdx]) -> &mut Self {
        for pair in elements.windows(2) {
            self.connect(pair[0], 0, pair[1]);
        }
        self
    }

    /// Finish building: validate names, ports, and acyclicity. The first
    /// element added is the pipeline entry.
    pub fn build(self) -> Result<Pipeline, PipelineError> {
        Pipeline::from_nodes(self.nodes, 0)
    }

    /// Finish building with an explicit entry element.
    pub fn build_with_entry(self, entry: ElementIdx) -> Result<Pipeline, PipelineError> {
        Pipeline::from_nodes(self.nodes, entry)
    }
}

/// A validated pipeline.
pub struct Pipeline {
    nodes: Vec<ElementNode>,
    entry: ElementIdx,
}

impl Pipeline {
    /// Start building a pipeline.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::new()
    }

    fn from_nodes(nodes: Vec<ElementNode>, entry: ElementIdx) -> Result<Pipeline, PipelineError> {
        if nodes.is_empty() {
            return Err(PipelineError::Empty);
        }
        // Unique names.
        for (i, a) in nodes.iter().enumerate() {
            for b in nodes.iter().skip(i + 1) {
                if a.name == b.name {
                    return Err(PipelineError::DuplicateName(a.name.clone()));
                }
            }
        }
        // Cycle detection (DFS colouring).
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        fn dfs(
            nodes: &[ElementNode],
            colours: &mut [Colour],
            i: ElementIdx,
        ) -> Result<(), PipelineError> {
            colours[i] = Colour::Grey;
            for succ in nodes[i].successors.iter().flatten() {
                match colours[*succ] {
                    Colour::Grey => return Err(PipelineError::CyclicGraph),
                    Colour::White => dfs(nodes, colours, *succ)?,
                    Colour::Black => {}
                }
            }
            colours[i] = Colour::Black;
            Ok(())
        }
        let mut colours = vec![Colour::White; nodes.len()];
        for i in 0..nodes.len() {
            if colours[i] == Colour::White {
                dfs(&nodes, &mut colours, i)?;
            }
        }
        Ok(Pipeline { nodes, entry })
    }

    /// Number of element instances.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the pipeline has no elements (never true for a built pipeline).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The entry element index.
    pub fn entry(&self) -> ElementIdx {
        self.entry
    }

    /// Access a node.
    pub fn node(&self, idx: ElementIdx) -> &ElementNode {
        &self.nodes[idx]
    }

    /// Mutable access to a node's element (e.g. to reset private state).
    pub fn element_mut(&mut self, idx: ElementIdx) -> &mut dyn Element {
        self.nodes[idx].element.as_mut()
    }

    /// Iterate over `(index, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ElementIdx, &ElementNode)> {
        self.nodes.iter().enumerate()
    }

    /// Find an element index by instance name.
    pub fn find(&self, name: &str) -> Option<ElementIdx> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// The indices of elements in a topological order starting from the
    /// entry (elements unreachable from the entry are appended at the end).
    pub fn topological_order(&self) -> Vec<ElementIdx> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut visited = vec![false; self.nodes.len()];
        fn visit(
            nodes: &[ElementNode],
            visited: &mut [bool],
            order: &mut Vec<ElementIdx>,
            i: ElementIdx,
        ) {
            if visited[i] {
                return;
            }
            visited[i] = true;
            for succ in nodes[i].successors.iter().flatten() {
                visit(nodes, visited, order, *succ);
            }
            order.push(i);
        }
        visit(&self.nodes, &mut visited, &mut order, self.entry);
        for i in 0..self.nodes.len() {
            visit(&self.nodes, &mut visited, &mut order, i);
        }
        order.reverse();
        order
    }

    /// The maximum number of elements a packet can traverse (longest path
    /// from the entry). Used by reports and by the verifier's path budget.
    pub fn longest_path_len(&self) -> usize {
        fn depth(nodes: &[ElementNode], memo: &mut [Option<usize>], i: ElementIdx) -> usize {
            if let Some(d) = memo[i] {
                return d;
            }
            let d = 1 + nodes[i]
                .successors
                .iter()
                .flatten()
                .map(|s| depth(nodes, memo, *s))
                .max()
                .unwrap_or(0);
            memo[i] = Some(d);
            d
        }
        let mut memo = vec![None; self.nodes.len()];
        depth(&self.nodes, &mut memo, self.entry)
    }

    /// Reset the private state of every element.
    pub fn reset(&mut self) {
        for n in &mut self.nodes {
            n.element.reset();
        }
    }

    /// Push one packet into the pipeline at the entry element and process it
    /// natively to completion.
    pub fn push(&mut self, packet: Packet) -> PipelineOutcome {
        self.push_at(self.entry, packet)
    }

    /// Push one packet into the pipeline at a specific element.
    pub fn push_at(&mut self, start: ElementIdx, packet: Packet) -> PipelineOutcome {
        let mut current = start;
        let mut pkt = packet;
        let mut hops = Vec::new();
        // A packet can visit each element at most once in a DAG, so the hop
        // count is bounded by the pipeline length.
        loop {
            hops.push(current);
            let action = self.nodes[current].element.process(pkt);
            match action {
                Action::Drop => {
                    return PipelineOutcome {
                        disposition: Disposition::Dropped { at: current },
                        hops,
                    }
                }
                Action::Crash(reason) => {
                    return PipelineOutcome {
                        disposition: Disposition::Crashed {
                            at: current,
                            reason,
                        },
                        hops,
                    }
                }
                Action::Emit(port, out_pkt) => {
                    match self.nodes[current].successors.get(port as usize) {
                        Some(Some(next)) => {
                            current = *next;
                            pkt = out_pkt;
                        }
                        _ => {
                            return PipelineOutcome {
                                disposition: Disposition::Exited {
                                    at: current,
                                    port,
                                    packet: out_pkt,
                                },
                                hops,
                            }
                        }
                    }
                }
            }
        }
    }
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Pipeline({} elements, entry={})",
            self.nodes.len(),
            self.entry
        )?;
        for (i, n) in self.nodes.iter().enumerate() {
            writeln!(f, "  [{i}] {:?}", n)?;
        }
        Ok(())
    }
}

/// How a packet's traversal of the pipeline ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// The packet left the pipeline through an unconnected output port.
    Exited {
        /// Element it exited from.
        at: ElementIdx,
        /// Output port it exited on.
        port: u8,
        /// The final packet.
        packet: Packet,
    },
    /// The packet was dropped.
    Dropped {
        /// Element that dropped it.
        at: ElementIdx,
    },
    /// An element crashed.
    Crashed {
        /// Element that crashed.
        at: ElementIdx,
        /// Why it crashed.
        reason: CrashReason,
    },
}

/// Result of pushing one packet through the pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineOutcome {
    /// Terminal disposition.
    pub disposition: Disposition,
    /// The sequence of elements the packet visited.
    pub hops: Vec<ElementIdx>,
}

impl PipelineOutcome {
    /// True if the traversal ended in a crash.
    pub fn is_crash(&self) -> bool {
        matches!(self.disposition, Disposition::Crashed { .. })
    }

    /// True if the packet exited the pipeline (was forwarded).
    pub fn is_forwarded(&self) -> bool {
        matches!(self.disposition, Disposition::Exited { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Action;
    use dataplane_ir::builder::{Block, ProgramBuilder};
    use dataplane_ir::Program;

    /// Pass-through element with a configurable number of ports; emits on
    /// port (first byte % ports).
    struct Spread {
        ports: usize,
    }

    impl Element for Spread {
        fn type_name(&self) -> &'static str {
            "Spread"
        }
        fn output_ports(&self) -> usize {
            self.ports
        }
        fn process(&mut self, packet: Packet) -> Action {
            let port = packet.get_u8(0).unwrap_or(0) as usize % self.ports;
            Action::Emit(port as u8, packet)
        }
        fn model(&self) -> Program {
            let pb = ProgramBuilder::new("Spread", self.ports as u8);
            let mut b = Block::new();
            b.emit(0);
            pb.finish(b).unwrap()
        }
    }

    fn spread(ports: usize) -> Box<dyn Element> {
        Box::new(Spread { ports })
    }

    #[test]
    fn linear_chain_forwards_to_exit() {
        let mut pb = Pipeline::builder();
        let a = pb.add("a", spread(1));
        let b = pb.add("b", spread(1));
        let c = pb.add("c", spread(1));
        pb.chain(&[a, b, c]);
        let mut pipeline = pb.build().unwrap();
        assert_eq!(pipeline.len(), 3);
        assert_eq!(pipeline.longest_path_len(), 3);
        assert_eq!(pipeline.topological_order(), vec![a, b, c]);
        assert_eq!(pipeline.find("b"), Some(b));
        assert_eq!(pipeline.find("zzz"), None);

        let out = pipeline.push(Packet::from_bytes(vec![0, 1, 2]));
        assert!(out.is_forwarded());
        assert_eq!(out.hops, vec![a, b, c]);
        match out.disposition {
            Disposition::Exited { at, port, .. } => {
                assert_eq!(at, c);
                assert_eq!(port, 0);
            }
            _ => panic!("expected exit"),
        }
    }

    #[test]
    fn branching_routes_by_port() {
        let mut pb = Pipeline::builder();
        let fork = pb.add("fork", spread(2));
        let left = pb.add("left", spread(1));
        let right = pb.add("right", spread(1));
        pb.connect(fork, 0, left).connect(fork, 1, right);
        let mut pipeline = pb.build().unwrap();

        let out = pipeline.push(Packet::from_bytes(vec![0]));
        assert_eq!(out.hops, vec![fork, left]);
        let out = pipeline.push(Packet::from_bytes(vec![1]));
        assert_eq!(out.hops, vec![fork, right]);
    }

    #[test]
    fn cycle_rejected() {
        let mut pb = Pipeline::builder();
        let a = pb.add("a", spread(1));
        let b = pb.add("b", spread(1));
        pb.connect(a, 0, b).connect(b, 0, a);
        assert_eq!(pb.build().unwrap_err(), PipelineError::CyclicGraph);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut pb = Pipeline::builder();
        pb.add("x", spread(1));
        pb.add("x", spread(1));
        assert_eq!(
            pb.build().unwrap_err(),
            PipelineError::DuplicateName("x".into())
        );
    }

    #[test]
    fn empty_pipeline_rejected() {
        assert_eq!(
            PipelineBuilder::new().build().unwrap_err(),
            PipelineError::Empty
        );
    }

    #[test]
    fn explicit_entry_and_push_at() {
        let mut pb = Pipeline::builder();
        let a = pb.add("a", spread(1));
        let b = pb.add("b", spread(1));
        pb.connect(a, 0, b);
        let mut pipeline = pb.build_with_entry(b).unwrap();
        assert_eq!(pipeline.entry(), b);
        let out = pipeline.push(Packet::from_bytes(vec![5]));
        assert_eq!(out.hops, vec![b]);
        let out = pipeline.push_at(a, Packet::from_bytes(vec![5]));
        assert_eq!(out.hops, vec![a, b]);
    }

    #[test]
    fn error_display_all_variants() {
        let errs: Vec<PipelineError> = vec![
            PipelineError::DuplicateName("a".into()),
            PipelineError::UnknownElement("b".into()),
            PipelineError::InvalidPort {
                element: "c".into(),
                port: 3,
                available: 1,
            },
            PipelineError::PortAlreadyConnected {
                element: "d".into(),
                port: 0,
            },
            PipelineError::CyclicGraph,
            PipelineError::Empty,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn debug_output_lists_elements() {
        let mut pb = Pipeline::builder();
        pb.add("first", spread(1));
        let p = pb.build().unwrap();
        let s = format!("{:?}", p);
        assert!(s.contains("first"));
        assert!(s.contains("1 elements"));
        assert!(!p.is_empty());
        assert!(p.node(0).name == "first");
    }
}

//! [`WorkerFleet`] — the remote [`Executor`]: a set of worker
//! [`Connector`]s (spawned subprocesses over stdio, or socket workers by
//! address), a [`WorkerRegistry`], and the pull-based dispatch queue
//! (see [`super::dispatch`]'s module docs).
//! Both Step-1 explorations and Step-2 compositions execute on the fleet;
//! results fold back by job index, so the report is byte-identical to an
//! in-process run.

use super::dispatch::{dispatch, dispatch_with_cancel, CancelSpec, HeartbeatConfig, StealSpec};
use super::registry::{DispatchStats, WorkerRegistry};
use super::transport::{Connector, SocketConnector, SpawnConnector, WorkerAddr};
use super::worker::WORKER_SCHEMA;
use super::{ExecError, Executor};
use crate::conformance::{shard_report_from_json, FuzzShardReport};
use crate::fingerprint::Fingerprint;
use crate::json::Json;
use crate::persist::{summary_from_json, summary_to_json};
use crate::wire::{
    job_to_json, report_from_json, shard_result_from_json, shard_result_to_json, ComposeJob,
    ComposeShardJob, ExploreJob, FuzzJob, JobSpec,
};
use dataplane_verifier::{ComposeShardResult, ElementSummary, Property, Report, VerifierOptions};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The remote-worker executor. See the module docs.
pub struct WorkerFleet {
    connectors: Vec<Box<dyn Connector>>,
    registry: WorkerRegistry,
    label: String,
    heartbeat: HeartbeatConfig,
    /// Serialised sizes of summaries seen by this fleet, so the dedup
    /// stats can price a slot the wire never carried (a worker holding a
    /// summary it explored itself) without re-serialising per frame.
    summary_sizes: Mutex<BTreeMap<Fingerprint, u64>>,
}

impl WorkerFleet {
    /// A fleet of `workers` subprocess workers running `program args...`
    /// over stdio (0 workers = one per available core).
    pub fn subprocess(program: impl Into<PathBuf>, args: Vec<String>, workers: usize) -> Self {
        let workers = super::default_parallelism(workers);
        let program = program.into();
        let label = format!("subprocess workers ({} × {})", workers, program.display());
        WorkerFleet {
            connectors: (0..workers)
                .map(|i| {
                    Box::new(SpawnConnector {
                        program: program.clone(),
                        args: args.clone(),
                        label: format!("stdio#{i}"),
                    }) as Box<dyn Connector>
                })
                .collect(),
            registry: WorkerRegistry::new(),
            label,
            heartbeat: HeartbeatConfig::default(),
            summary_sizes: Mutex::new(BTreeMap::new()),
        }
    }

    /// The fleet that spawns the current executable with the `worker`
    /// argument — how `vericlick exec-plan --workers N` reaches its own
    /// worker mode.
    pub fn current_exe(workers: usize) -> Result<Self, ExecError> {
        let exe = std::env::current_exe()
            .map_err(|e| ExecError::Spawn(format!("cannot locate current executable: {e}")))?;
        Ok(WorkerFleet::subprocess(
            exe,
            vec!["worker".to_string()],
            workers,
        ))
    }

    /// A fleet of socket workers, one per address (TCP `host:port` or
    /// Unix-socket path) — how `vericlick exec-plan --workers addr,...`
    /// reaches `vericlick worker --listen addr`.
    pub fn sockets(addrs: Vec<WorkerAddr>) -> Self {
        let label = format!(
            "socket workers ({})",
            addrs
                .iter()
                .map(WorkerAddr::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
        WorkerFleet {
            connectors: addrs
                .into_iter()
                .map(|addr| Box::new(SocketConnector { addr }) as Box<dyn Connector>)
                .collect(),
            registry: WorkerRegistry::new(),
            label,
            heartbeat: HeartbeatConfig::default(),
            summary_sizes: Mutex::new(BTreeMap::new()),
        }
    }

    /// Replace the fleet's heartbeat tuning (read-deadline probing of
    /// socket workers; see [`HeartbeatConfig`]).
    pub fn with_heartbeat(mut self, heartbeat: HeartbeatConfig) -> Self {
        self.heartbeat = heartbeat;
        self
    }

    /// The number of workers this fleet dispatches to.
    pub fn workers(&self) -> usize {
        self.connectors.len()
    }

    /// The fleet's registry (per-worker liveness and work counts).
    pub fn registry(&self) -> &WorkerRegistry {
        &self.registry
    }

    /// What `fp`'s summary would cost on the wire, for dedup accounting —
    /// cached so slots a worker already held (including ones this fleet
    /// never shipped, like a worker's own explore results) are priced
    /// without re-serialising per frame.
    fn summary_size(&self, fp: Fingerprint, summary: &ElementSummary) -> u64 {
        if let Some(bytes) = self.summary_sizes.lock().expect("summary sizes").get(&fp) {
            return *bytes;
        }
        let bytes = summary_to_json(summary).to_text().len() as u64;
        self.summary_sizes
            .lock()
            .expect("summary sizes")
            .insert(fp, bytes);
        bytes
    }

    /// Build a job frame's `summaries` attachment against one worker's
    /// held set: full documents for summaries the worker is missing,
    /// `"held"` markers for ones it already holds (the protocol-v4 dedup),
    /// `null` for budget-exceeded explorations. Records the transfer
    /// split in the registry.
    fn summary_slots(
        &self,
        fingerprints: &[Fingerprint],
        summaries: &(dyn Fn(Fingerprint) -> Option<Arc<ElementSummary>> + Sync),
        held: &mut std::collections::BTreeSet<Fingerprint>,
    ) -> Json {
        let (mut shipped_n, mut shipped_b) = (0usize, 0u64);
        let (mut deduped_n, mut deduped_b) = (0usize, 0u64);
        let slots = Json::Arr(
            fingerprints
                .iter()
                .map(|fp| match summaries(*fp) {
                    None => Json::Null,
                    Some(summary) => {
                        if held.contains(fp) {
                            deduped_n += 1;
                            deduped_b += self.summary_size(*fp, &summary);
                            Json::str("held")
                        } else {
                            let doc = summary_to_json(&summary);
                            let bytes = doc.to_text().len() as u64;
                            self.summary_sizes
                                .lock()
                                .expect("summary sizes")
                                .insert(*fp, bytes);
                            shipped_n += 1;
                            shipped_b += bytes;
                            held.insert(*fp);
                            doc
                        }
                    }
                })
                .collect(),
        );
        self.registry
            .record_summaries(shipped_n, shipped_b, deduped_n, deduped_b);
        slots
    }
}

/// Does a compose-shard result frame carry a violation check? This is the
/// sibling-group early-exit trigger, decided on the raw frame without a
/// full decode.
fn shard_frame_has_violation(frame: &Json) -> bool {
    let Some(records) = frame
        .get("shard")
        .and_then(|s| s.get("records"))
        .and_then(Json::as_arr)
    else {
        return false;
    };
    records.iter().any(|rec| {
        rec.get("checks")
            .and_then(Json::as_arr)
            .is_some_and(|checks| {
                checks.iter().any(|c| {
                    c.get("outcome")
                        .and_then(|o| o.get("kind"))
                        .and_then(Json::as_str)
                        == Some("violation")
                })
            })
    })
}

fn job_frame(id: usize, job: &JobSpec, summaries: Option<Json>) -> Json {
    let mut fields = vec![
        ("schema", Json::int(WORKER_SCHEMA)),
        ("kind", Json::str("job")),
        ("id", Json::int(id as u64)),
        ("job", job_to_json(job)),
    ];
    if let Some(summaries) = summaries {
        fields.push(("summaries", summaries));
    }
    Json::obj(fields)
}

impl Executor for WorkerFleet {
    fn describe(&self) -> String {
        self.label.clone()
    }

    fn explore_jobs(
        &self,
        jobs: &[ExploreJob],
        options: &VerifierOptions,
    ) -> Result<Vec<Option<ElementSummary>>, ExecError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        self.registry.record_offered(jobs.len(), 0, 0);
        let frame_for = |id: usize, _held: &mut std::collections::BTreeSet<Fingerprint>| {
            job_frame(id, &JobSpec::Explore(jobs[id].clone()), None)
        };
        let results = dispatch(
            &self.connectors,
            &self.registry,
            options,
            self.heartbeat,
            jobs.len(),
            &frame_for,
        )?;
        results
            .iter()
            .map(|frame| match frame.get("summary") {
                Some(Json::Null) => Ok(None),
                Some(doc) => summary_from_json(doc)
                    .map(Some)
                    .map_err(|e| ExecError::Protocol(format!("undecodable summary: {e}"))),
                None => Err(ExecError::Protocol(
                    "explore result without a summary".into(),
                )),
            })
            .collect()
    }

    fn compose_jobs(
        &self,
        jobs: &[ComposeJob],
        options: &VerifierOptions,
        summaries: &(dyn Fn(Fingerprint) -> Option<Arc<ElementSummary>> + Sync),
    ) -> Option<Result<Vec<Report>, ExecError>> {
        if jobs.is_empty() {
            return Some(Ok(Vec::new()));
        }
        let temporal = jobs
            .iter()
            .filter(|j| matches!(j.scenario.property, Property::Temporal(_)))
            .count();
        self.registry.record_offered(0, jobs.len() - temporal, 0);
        self.registry.record_temporal_offered(temporal);
        // Per-(job, worker) frame building: the receiving worker's held
        // set decides which summary slots ship as full documents and
        // which collapse to the `"held"` marker. A requeued job is
        // rebuilt against the surviving worker's own held set.
        let frame_for = |id: usize, held: &mut std::collections::BTreeSet<Fingerprint>| {
            let job = &jobs[id];
            let slots = self.summary_slots(&job.fingerprints, summaries, held);
            // Temporal scenarios ride the compose queue but announce their
            // own job kind on the wire (WORKER_SCHEMA 6).
            let spec = if matches!(job.scenario.property, Property::Temporal(_)) {
                JobSpec::Temporal(job.clone())
            } else {
                JobSpec::Compose(job.clone())
            };
            job_frame(id, &spec, Some(slots))
        };
        let results = match dispatch(
            &self.connectors,
            &self.registry,
            options,
            self.heartbeat,
            jobs.len(),
            &frame_for,
        ) {
            Ok(results) => results,
            Err(e) => return Some(Err(e)),
        };
        Some(
            results
                .iter()
                .zip(jobs)
                .map(|(frame, job)| {
                    let elapsed = Duration::from_micros(
                        frame
                            .get("elapsed_micros")
                            .and_then(Json::as_u64)
                            .unwrap_or(0),
                    );
                    let doc = frame.get("report").ok_or_else(|| {
                        ExecError::Protocol("compose result without a report".into())
                    })?;
                    report_from_json(doc, job.scenario.property.clone(), elapsed)
                        .map_err(|e| ExecError::Protocol(format!("undecodable report: {e}")))
                })
                .collect(),
        )
    }

    fn compose_shard_jobs(
        &self,
        jobs: &[ComposeShardJob],
        options: &VerifierOptions,
        summaries: &(dyn Fn(Fingerprint) -> Option<Arc<ElementSummary>> + Sync),
    ) -> Option<Result<Vec<ComposeShardResult>, ExecError>> {
        if jobs.is_empty() {
            return Some(Ok(Vec::new()));
        }
        let count = jobs.len();
        self.registry.record_shards_offered(count);
        // The growable job store: seeded with the planned shards, extended
        // mid-dispatch by shard stealing — a split's remainder range
        // becomes a brand-new job here. `roots[i]` names the planned shard
        // (`< count`) a job descends from, so stolen tails fold back into
        // their ancestor's result slot.
        let store: Mutex<(Vec<ComposeShardJob>, Vec<usize>)> =
            Mutex::new((jobs.to_vec(), (0..count).collect()));
        // Shards ride the same summary-dedup frames as whole compositions:
        // every shard of a scenario names the same fingerprints, so after
        // a worker's first shard the rest collapse to `"held"` markers.
        let frame_for = |id: usize, held: &mut std::collections::BTreeSet<Fingerprint>| {
            let job = store.lock().expect("shard store").0[id].clone();
            let slots = self.summary_slots(&job.fingerprints, summaries, held);
            job_frame(id, &JobSpec::ComposeShard(job), Some(slots))
        };
        // Early exit: the first violation in a scenario decides the
        // scenario's verdict, so sibling shards are cancelled (queued ones
        // resolve empty, in-flight ones get a cancel frame). The fold
        // computes whatever the cancelled shards did not ship.
        let group_of = |id: usize| {
            let store = store.lock().expect("shard store");
            Some(u64::from(store.0[id].scenario_index))
        };
        let synthetic = |id: usize| {
            Json::obj([
                ("schema", Json::int(WORKER_SCHEMA)),
                ("kind", Json::str("result")),
                ("id", Json::int(id as u64)),
                (
                    "shard",
                    shard_result_to_json(&ComposeShardResult {
                        records: Vec::new(),
                        cancelled: true,
                        remainder: None,
                        timings: Vec::new(),
                    }),
                ),
            ])
        };
        let spec = CancelSpec {
            group_of: &group_of,
            ends_group: &shard_frame_has_violation,
            synthetic: &synthetic,
        };
        // Stealing: a result frame carrying a non-empty `remainder` range
        // registers that range as a fresh job descending from the same
        // planned shard (called under the dispatch lock — the returned id
        // must be the next result slot).
        let remainder = |id: usize, frame: &Json| -> Option<usize> {
            let range = frame.get("shard").and_then(|s| s.get("remainder"))?;
            let range = range.as_arr()?;
            let start = range.first().and_then(Json::as_u64)? as usize;
            let end = range.get(1).and_then(Json::as_u64)? as usize;
            if start >= end {
                return None;
            }
            let mut store = store.lock().expect("shard store");
            let (store_jobs, roots) = &mut *store;
            let mut job = store_jobs[id].clone();
            job.start = start;
            job.end = end;
            let root = roots[id];
            let new_id = store_jobs.len();
            store_jobs.push(job);
            roots.push(root);
            Some(new_id)
        };
        let steal = StealSpec {
            remainder: &remainder,
        };
        let results = match dispatch_with_cancel(
            &self.connectors,
            &self.registry,
            options,
            self.heartbeat,
            count,
            &frame_for,
            Some(&spec),
            Some(&steal),
        ) {
            Ok(results) => results,
            Err(e) => return Some(Err(e)),
        };
        let decoded: Result<Vec<ComposeShardResult>, ExecError> = results
            .iter()
            .map(|frame| {
                let doc = frame.get("shard").ok_or_else(|| {
                    ExecError::Protocol("compose-shard result without a shard".into())
                })?;
                let result = shard_result_from_json(doc)
                    .map_err(|e| ExecError::Protocol(format!("undecodable shard: {e}")))?;
                if result.cancelled {
                    self.registry.record_shard_cancelled();
                }
                Ok(result)
            })
            .collect();
        let mut decoded = match decoded {
            Ok(decoded) => decoded,
            Err(e) => return Some(Err(e)),
        };
        // Fold stolen tails back into their planned shard's slot: the
        // record slots address disjoint unit ranges, so concatenation is
        // exactly what the sequential fold replays.
        let roots = store.lock().expect("shard store").1.clone();
        let extras = decoded.split_off(count);
        for (result, &root) in extras.into_iter().zip(&roots[count..]) {
            decoded[root].records.extend(result.records);
            decoded[root].timings.extend(result.timings);
            decoded[root].cancelled |= result.cancelled;
            decoded[root].remainder = None;
        }
        Some(Ok(decoded))
    }

    fn fuzz_jobs(
        &self,
        jobs: &[FuzzJob],
        options: &VerifierOptions,
    ) -> Option<Result<Vec<FuzzShardReport>, ExecError>> {
        if jobs.is_empty() {
            return Some(Ok(Vec::new()));
        }
        self.registry.record_offered(0, 0, jobs.len());
        let frame_for = |id: usize, _held: &mut std::collections::BTreeSet<Fingerprint>| {
            job_frame(id, &JobSpec::Fuzz(jobs[id].clone()), None)
        };
        let results = match dispatch(
            &self.connectors,
            &self.registry,
            options,
            self.heartbeat,
            jobs.len(),
            &frame_for,
        ) {
            Ok(results) => results,
            Err(e) => return Some(Err(e)),
        };
        Some(
            results
                .iter()
                .map(|frame| {
                    let doc = frame.get("fuzz").ok_or_else(|| {
                        ExecError::Protocol("fuzz result without a shard report".into())
                    })?;
                    shard_report_from_json(doc)
                        .map_err(|e| ExecError::Protocol(format!("undecodable shard report: {e}")))
                })
                .collect(),
        )
    }

    fn dispatch_stats(&self) -> Option<DispatchStats> {
        Some(self.registry.stats())
    }

    fn live_capacity(&self) -> Option<usize> {
        Some(match self.registry.live_capacity() {
            // No handshake yet (e.g. planning the first request): estimate
            // one slot per connector.
            0 => self.connectors.len(),
            live => live,
        })
    }
}

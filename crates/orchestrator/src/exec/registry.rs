//! The worker registry: who joined the fleet, with what capacity, who
//! died, and how the pull-based queue behaved — the operational record of
//! a distributed execution, surfaced as [`DispatchStats`] in
//! `MatrixReport`.

use std::sync::Mutex;

/// Aggregate registry/queue statistics of a dispatch (operational data:
/// excluded from deterministic report documents).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Workers that completed the hello handshake.
    pub workers: usize,
    /// Workers that died (connection lost, handshake rejected) during the
    /// run.
    pub workers_lost: usize,
    /// Total advertised capacity (maximum jobs in flight fleet-wide).
    pub capacity: usize,
    /// Job frames sent (a requeued job counts once per send).
    pub jobs_dispatched: usize,
    /// Results received.
    pub jobs_completed: usize,
    /// Jobs requeued after their worker died.
    pub jobs_requeued: usize,
    /// Step-1 exploration jobs offered to the queue.
    pub explore_jobs: usize,
    /// Step-2 composition jobs offered to the queue.
    pub compose_jobs: usize,
    /// Temporal (LTL) jobs offered to the queue — compose-shaped work
    /// decided by the Büchi-product search.
    pub temporal_jobs: usize,
    /// Step-2 compose shards offered to the queue (contiguous slices of a
    /// scenario's check enumeration).
    pub compose_shards: usize,
    /// Compose shards cancelled because a sibling shard of the same
    /// scenario reported a violation first (the fold recomputes their
    /// remainder inline, so cancellation never changes the report).
    pub shards_cancelled: usize,
    /// Conformance fuzz shards offered to the queue.
    pub fuzz_jobs: usize,
    /// Handshaken workers that returned no result at all — a fleet-shape
    /// smell (more workers than shards, or a dispatch imbalance).
    pub workers_idle: usize,
    /// Full summary documents shipped in job frames (protocol v4 ships a
    /// summary only to workers that do not already hold it).
    pub summaries_shipped: usize,
    /// Summary slots satisfied by a worker's held set instead of a wire
    /// transfer — the dedup win of protocol v4.
    pub summaries_deduped: usize,
    /// Serialised bytes of the summaries actually shipped.
    pub summary_bytes_shipped: u64,
    /// Serialised bytes the deduplicated slots would have cost on a v3
    /// wire (every summary re-shipped per frame).
    pub summary_bytes_deduped: u64,
    /// Workers marked suspect: connected but silent past the heartbeat
    /// deadline (SIGSTOP, silent partition). Suspect workers also count
    /// in `workers_lost`.
    pub workers_suspect: usize,
    /// Split requests issued against loaded workers' in-flight compose
    /// shards, asking for the unwalked tail back (shard stealing).
    pub shards_split: usize,
    /// Remainder slices actually handed back and requeued to idle workers
    /// (a split racing the job's completion steals nothing).
    pub shards_stolen: usize,
    /// Total nanoseconds between each split request and its remainder
    /// landing back on the queue — the latency cost of stealing.
    pub steal_wait_ns: u64,
}

/// One worker's registry entry.
#[derive(Clone, Debug)]
pub struct WorkerEntry {
    /// Peer description (pid or socket address).
    pub peer: String,
    /// Advertised capacity (jobs it keeps in flight).
    pub capacity: usize,
    /// Still connected (or cleanly drained).
    pub alive: bool,
    /// Results this worker returned.
    pub jobs_done: usize,
    /// Why the worker was marked dead, if it was.
    pub note: Option<String>,
}

#[derive(Default)]
struct RegistryInner {
    entries: Vec<WorkerEntry>,
    dispatched: usize,
    completed: usize,
    requeued: usize,
    explore_jobs: usize,
    compose_jobs: usize,
    temporal_jobs: usize,
    compose_shards: usize,
    shards_cancelled: usize,
    fuzz_jobs: usize,
    summaries_shipped: usize,
    summaries_deduped: usize,
    summary_bytes_shipped: u64,
    summary_bytes_deduped: u64,
    suspects: usize,
    shards_split: usize,
    shards_stolen: usize,
    steal_wait_ns: u64,
}

/// The shared registry a fleet's dispatch threads report into. Lives for
/// the lifetime of the fleet, accumulating across dispatch phases (explore,
/// then compose), so the stats describe the whole plan execution.
#[derive(Default)]
pub struct WorkerRegistry {
    inner: Mutex<RegistryInner>,
}

impl WorkerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        WorkerRegistry::default()
    }

    /// Record a worker that completed its handshake; returns its id.
    pub(crate) fn register(&self, peer: String, capacity: usize) -> usize {
        let mut inner = self.inner.lock().expect("registry");
        inner.entries.push(WorkerEntry {
            peer,
            capacity,
            alive: true,
            jobs_done: 0,
            note: None,
        });
        inner.entries.len() - 1
    }

    /// Record a worker that never joined (connect or handshake failure).
    pub(crate) fn register_dead(&self, peer: String, note: String) {
        let mut inner = self.inner.lock().expect("registry");
        inner.entries.push(WorkerEntry {
            peer,
            capacity: 0,
            alive: false,
            jobs_done: 0,
            note: Some(note),
        });
    }

    /// Record how many jobs of each kind a dispatch phase offered.
    pub(crate) fn record_offered(&self, explore: usize, compose: usize, fuzz: usize) {
        let mut inner = self.inner.lock().expect("registry");
        inner.explore_jobs += explore;
        inner.compose_jobs += compose;
        inner.fuzz_jobs += fuzz;
    }

    /// Record temporal (LTL) jobs offered to the queue.
    pub(crate) fn record_temporal_offered(&self, temporal: usize) {
        self.inner.lock().expect("registry").temporal_jobs += temporal;
    }

    /// Record compose shards offered to the queue.
    pub(crate) fn record_shards_offered(&self, shards: usize) {
        self.inner.lock().expect("registry").compose_shards += shards;
    }

    /// Record a compose shard cancelled because a sibling found a
    /// violation (whether in flight — a cancel frame went out — or still
    /// queued).
    pub(crate) fn record_shard_cancelled(&self) {
        self.inner.lock().expect("registry").shards_cancelled += 1;
    }

    /// A `split` frame went out to a loaded worker.
    pub(crate) fn record_shard_split(&self) {
        self.inner.lock().expect("registry").shards_split += 1;
    }

    /// A remainder slice came back and was requeued, `wait_ns` after the
    /// split was requested.
    pub(crate) fn record_shard_stolen(&self, wait_ns: u64) {
        let mut inner = self.inner.lock().expect("registry");
        inner.shards_stolen += 1;
        inner.steal_wait_ns += wait_ns;
    }

    /// A job frame went out.
    pub(crate) fn record_dispatched(&self) {
        self.inner.lock().expect("registry").dispatched += 1;
    }

    /// Worker `id` returned a result.
    pub(crate) fn record_completed(&self, id: usize) {
        let mut inner = self.inner.lock().expect("registry");
        inner.completed += 1;
        inner.entries[id].jobs_done += 1;
    }

    /// Worker `id` died with `requeued` jobs put back on the queue.
    pub(crate) fn mark_dead(&self, id: usize, requeued: usize, note: String) {
        let mut inner = self.inner.lock().expect("registry");
        inner.requeued += requeued;
        let entry = &mut inner.entries[id];
        entry.alive = false;
        entry.note = Some(note);
    }

    /// Worker `id` went silent past the heartbeat deadline: still
    /// connected as far as the kernel knows, but not answering. Treated
    /// like a death (its jobs are requeued) and additionally counted as a
    /// suspect.
    pub(crate) fn mark_suspect(&self, id: usize, requeued: usize, note: String) {
        let mut inner = self.inner.lock().expect("registry");
        inner.requeued += requeued;
        inner.suspects += 1;
        let entry = &mut inner.entries[id];
        entry.alive = false;
        entry.note = Some(note);
    }

    /// Record a job frame's summary-transfer split: `shipped` full
    /// documents (costing `shipped_bytes` on the wire) and `deduped` slots
    /// the receiving worker already held (`deduped_bytes` saved).
    pub(crate) fn record_summaries(
        &self,
        shipped: usize,
        shipped_bytes: u64,
        deduped: usize,
        deduped_bytes: u64,
    ) {
        let mut inner = self.inner.lock().expect("registry");
        inner.summaries_shipped += shipped;
        inner.summary_bytes_shipped += shipped_bytes;
        inner.summaries_deduped += deduped;
        inner.summary_bytes_deduped += deduped_bytes;
    }

    /// Snapshot of every entry.
    pub fn workers(&self) -> Vec<WorkerEntry> {
        self.inner.lock().expect("registry").entries.clone()
    }

    /// Total advertised capacity of the workers currently alive — what
    /// `--compose-shard auto` plans against. Zero when no worker has
    /// handshaken yet (a fresh fleet before its first dispatch).
    pub fn live_capacity(&self) -> usize {
        self.inner
            .lock()
            .expect("registry")
            .entries
            .iter()
            .filter(|e| e.alive)
            .map(|e| e.capacity)
            .sum()
    }

    /// The aggregate statistics.
    pub fn stats(&self) -> DispatchStats {
        let inner = self.inner.lock().expect("registry");
        // A worker that reconnects each phase re-registers; count distinct
        // peers so the fleet size reads as configured, not × phases.
        let mut peers: Vec<&str> = inner.entries.iter().map(|e| e.peer.as_str()).collect();
        peers.sort_unstable();
        peers.dedup();
        let mut lost: Vec<&str> = inner
            .entries
            .iter()
            .filter(|e| !e.alive)
            .map(|e| e.peer.as_str())
            .collect();
        lost.sort_unstable();
        lost.dedup();
        // Capacity of the most recent *handshaken* registration per peer
        // (a worker that reconnects each phase re-registers with the same
        // capacity; a `register_dead` entry has capacity 0 and must not
        // shadow what the peer actually advertised).
        let mut capacity = 0;
        let mut seen: Vec<&str> = Vec::new();
        for e in inner.entries.iter().rev() {
            if e.capacity > 0 && !seen.contains(&e.peer.as_str()) {
                seen.push(&e.peer);
                capacity += e.capacity;
            }
        }
        // A handshaken peer none of whose registrations returned a single
        // result sat idle for the whole run. Derived as total minus active
        // with a saturating subtraction: a worker that joins mid-batch
        // registers extra entries for an already-counted peer, so the
        // active tally is clamped to the distinct peer count and the
        // difference can never underflow.
        let active = seen
            .iter()
            .filter(|peer| {
                inner
                    .entries
                    .iter()
                    .filter(|e| e.peer == **peer)
                    .any(|e| e.jobs_done > 0)
            })
            .count()
            .min(seen.len());
        let idle = seen.len().saturating_sub(active);
        DispatchStats {
            workers: peers.len(),
            workers_lost: lost.len(),
            capacity,
            jobs_dispatched: inner.dispatched,
            jobs_completed: inner.completed,
            jobs_requeued: inner.requeued,
            explore_jobs: inner.explore_jobs,
            compose_jobs: inner.compose_jobs,
            temporal_jobs: inner.temporal_jobs,
            compose_shards: inner.compose_shards,
            shards_cancelled: inner.shards_cancelled,
            fuzz_jobs: inner.fuzz_jobs,
            workers_idle: idle,
            summaries_shipped: inner.summaries_shipped,
            summaries_deduped: inner.summaries_deduped,
            summary_bytes_shipped: inner.summary_bytes_shipped,
            summary_bytes_deduped: inner.summary_bytes_deduped,
            workers_suspect: inner.suspects,
            shards_split: inner.shards_split,
            shards_stolen: inner.shards_stolen,
            steal_wait_ns: inner.steal_wait_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_aggregates_across_phases() {
        let registry = WorkerRegistry::new();
        registry.record_offered(3, 0, 0);
        let a = registry.register("w1".into(), 2);
        let b = registry.register("w2".into(), 1);
        registry.record_dispatched();
        registry.record_dispatched();
        registry.record_dispatched();
        registry.record_completed(a);
        registry.record_completed(a);
        registry.mark_dead(b, 1, "connection closed".into());
        // Second phase: w1 reconnects and composes with partial dedup.
        registry.record_offered(0, 2, 4);
        registry.record_shards_offered(3);
        registry.record_shard_cancelled();
        let a2 = registry.register("w1".into(), 2);
        registry.record_dispatched();
        registry.record_dispatched();
        registry.record_summaries(3, 900, 1, 250);
        registry.record_completed(a2);
        registry.record_completed(a2);

        let stats = registry.stats();
        assert_eq!(stats.workers, 2, "distinct peers");
        assert_eq!(stats.workers_lost, 1);
        // Capacity counts each peer's latest advertisement, whether the
        // peer later died or not: w1's 2 plus the late w2's 1.
        assert_eq!(stats.capacity, 3);
        assert_eq!(stats.jobs_dispatched, 5);
        assert_eq!(stats.jobs_completed, 4);
        assert_eq!(stats.jobs_requeued, 1);
        assert_eq!(stats.explore_jobs, 3);
        assert_eq!(stats.compose_jobs, 2);
        assert_eq!(stats.compose_shards, 3);
        assert_eq!(stats.shards_cancelled, 1);
        assert_eq!(stats.fuzz_jobs, 4);
        assert_eq!(stats.workers_idle, 1, "w2 joined but returned nothing");
        assert_eq!(stats.summaries_shipped, 3);
        assert_eq!(stats.summaries_deduped, 1);
        assert_eq!(stats.summary_bytes_shipped, 900);
        assert_eq!(stats.summary_bytes_deduped, 250);
        assert_eq!(stats.workers_suspect, 0);
    }

    #[test]
    fn workers_idle_clamps_at_zero_when_worker_joins_mid_batch() {
        let registry = WorkerRegistry::new();
        let a = registry.register("w1".into(), 2);
        registry.record_offered(0, 3, 0);
        registry.record_temporal_offered(2);
        registry.record_dispatched();
        registry.record_completed(a);
        // w2 joins mid-batch — and w1's reconnect re-registers the same
        // peer, so entries outnumber distinct peers while every peer is
        // active. The idle derivation must clamp at zero, never wrap.
        let b = registry.register("w2".into(), 1);
        let a2 = registry.register("w1".into(), 2);
        registry.record_dispatched();
        registry.record_dispatched();
        registry.record_completed(b);
        registry.record_completed(a2);
        let stats = registry.stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.workers_idle, 0, "every peer returned results");
        assert!(stats.workers_idle <= stats.workers);
        assert_eq!(stats.temporal_jobs, 2);
        assert_eq!(stats.compose_jobs, 3);
    }

    #[test]
    fn suspect_workers_count_as_lost_and_as_suspect() {
        let registry = WorkerRegistry::new();
        let a = registry.register("w1".into(), 2);
        registry.register("w2".into(), 2);
        registry.mark_suspect(a, 2, "suspect: no heartbeat".into());
        let stats = registry.stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.workers_lost, 1);
        assert_eq!(stats.workers_suspect, 1);
        assert_eq!(stats.jobs_requeued, 2);
        let entry = &registry.workers()[a];
        assert!(!entry.alive);
        assert!(entry.note.as_deref().unwrap().contains("suspect"));
    }
}

//! Pull-based dispatch: one shared job queue, drained by however many
//! workers joined, each at its own pace.
//!
//! This replaces the old round-robin pre-partitioning. No job belongs to a
//! worker until that worker pulls it, so a fast worker (or one whose jobs
//! happened to be cheap — Step-2 walks on prune-heavy pipelines vary
//! wildly) simply pulls more, and a worker that dies mid-plan has its
//! in-flight jobs requeued for the survivors. Results land in per-job
//! slots **by job index**, which is the determinism contract: however the
//! queue was drained, the folded output is identical.
//!
//! Per worker, the coordinator runs one thread: handshake (hello frames
//! carrying protocol + schema version and the session's verifier options),
//! then a window of up to `capacity` outstanding jobs, refilled from the
//! shared queue as results return.

use super::registry::WorkerRegistry;
use super::transport::{Connector, Transport};
use super::{ExecError, WORKER_PROTO, WORKER_SCHEMA};
use crate::fingerprint::Fingerprint;
use crate::json::Json;
use dataplane_verifier::VerifierOptions;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Read-deadline and heartbeat tuning of a dispatch session.
///
/// Only socket transports can arm read deadlines; a stdio worker keeps
/// the pre-v4 blocking behaviour (its process is local — if it wedges,
/// so did this machine). On a timed-out read the coordinator sends a
/// `ping`; a worker whose read loop is alive answers `pong` immediately
/// even while its jobs grind. A worker silent past `deadline` — no
/// results, no pongs — is marked **suspect** and its in-flight jobs are
/// requeued to the survivors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// How often a silent connection is probed (also the recv poll
    /// interval).
    pub interval: Duration,
    /// How long a worker may stay silent before it is marked suspect.
    pub deadline: Duration,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: Duration::from_secs(2),
            deadline: Duration::from_secs(10),
        }
    }
}

impl HeartbeatConfig {
    /// The single-knob form `--heartbeat-ms` exposes: probe every
    /// `ms` milliseconds, suspect after four unanswered intervals.
    pub fn from_interval_ms(ms: u64) -> Self {
        let interval = Duration::from_millis(ms.max(1));
        HeartbeatConfig {
            interval,
            deadline: interval * 4,
        }
    }
}

/// Shared dispatch state: the job queue and the result slots.
struct State {
    queue: VecDeque<usize>,
    /// Jobs not yet completed (queued or in flight).
    remaining: usize,
    /// A job-level failure (wrong worker build, malformed job): abort the
    /// whole dispatch — requeueing cannot fix it.
    fatal: Option<ExecError>,
    /// Result frames, one slot per job index.
    results: Vec<Option<Json>>,
    /// The most recent worker-level failure, for the terminal error when
    /// every worker is gone.
    last_failure: Option<String>,
    /// Sibling groups whose outcome is already decided (a shard reported a
    /// violation): queued members resolve synthetically, in-flight members
    /// get a cancel frame.
    cancelled_groups: BTreeSet<u64>,
    /// Jobs currently in flight, by the registry id of the worker holding
    /// them (in dispatch order) — what a steal scans to find the most
    /// loaded worker.
    in_flight: BTreeMap<usize, Vec<usize>>,
    /// Split frames awaiting relay, by the owning worker's registry id.
    /// Each owner thread drains its own entry once per loop iteration, so
    /// the relay latency is bounded by the heartbeat interval.
    split_pending: BTreeMap<usize, Vec<usize>>,
    /// Jobs a split has been requested for — at most one steal per job id
    /// (a remainder is a fresh id and can be split again).
    split_requested: BTreeSet<usize>,
    /// When each pending split was requested, for `steal_wait_ns`.
    steal_started: BTreeMap<usize, Instant>,
}

/// Sibling-group cancellation policy for a dispatch (compose sharding's
/// early exit). When a result frame `ends_group`, the group's queued
/// members are resolved with `synthetic` frames without ever being sent,
/// and its in-flight members are sent `cancel` frames — each worker sends
/// them for its own outstanding jobs when it next wakes (a result, a pong,
/// or a heartbeat-interval read timeout). Cancellation is purely a
/// work-avoidance signal: a cancelled job still answers with the complete
/// partial records it finished, and the fold computes the remainder
/// inline, so the folded output is identical with or without it.
pub(crate) struct CancelSpec<'a> {
    /// The sibling-group key of job `i` (`None`: not cancellable).
    pub group_of: &'a (dyn Fn(usize) -> Option<u64> + Sync),
    /// Does this result frame decide its whole group?
    pub ends_group: &'a (dyn Fn(&Json) -> bool + Sync),
    /// The result frame recorded for a queued job resolved by its group's
    /// cancellation (never dispatched).
    pub synthetic: &'a (dyn Fn(usize) -> Json + Sync),
}

/// Shard-stealing policy for a dispatch. When a worker goes idle (or has
/// spare capacity) with the queue dry while jobs are still in flight
/// elsewhere, the coordinator asks the most-loaded worker — possibly the
/// requester itself — to `split` its most recently dispatched in-flight
/// job: the worker answers with the records it finished plus a remainder
/// range, which `remainder` turns into a brand-new job requeued for
/// whoever pulls next. Stealing is pure work movement: the fold merges
/// records by index slot, so the folded output is byte-identical with or
/// without it.
pub(crate) struct StealSpec<'a> {
    /// Called under the dispatch lock when a result frame carries a
    /// remainder: register a new job for the remainder range and return
    /// its index, which must equal the number of result slots at the time
    /// of the call (the caller grows the slot vector in the same critical
    /// section). `None` when the frame carries no usable remainder.
    pub remainder: &'a (dyn Fn(usize, &Json) -> Option<usize> + Sync),
}

/// Read-deadline used in the steal endgame (this worker still holds jobs,
/// stealing is on, and the shared queue is dry): a thief's split request
/// is only relayed when the victim's owner thread wakes from `recv`, and
/// a stolen remainder is only worth taking while the shard still has
/// unwalked units — so poll tightly instead of sleeping a full heartbeat
/// interval. Pings stay paced by the heartbeat interval regardless.
const STEAL_RELAY_POLL: Duration = Duration::from_millis(10);

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

/// Pick a steal victim under the dispatch lock and queue a split request
/// for it: the most recently dispatched in-flight job of the most loaded
/// worker that is not already being split and whose sibling group is not
/// cancelled. Self-steal is allowed — a worker with spare capacity may
/// split its own in-flight job to fill its idle cores.
fn request_split(
    state: &mut State,
    registry: &WorkerRegistry,
    cancel: Option<&CancelSpec<'_>>,
) -> bool {
    let victim = state
        .in_flight
        .iter()
        .max_by_key(|(_, jobs)| jobs.len())
        .and_then(|(&owner, jobs)| {
            jobs.iter()
                .rev()
                .find(|&&job| {
                    !state.split_requested.contains(&job)
                        && !cancel
                            .and_then(|spec| (spec.group_of)(job))
                            .is_some_and(|g| state.cancelled_groups.contains(&g))
                })
                .map(|&job| (owner, job))
        });
    let Some((owner, job)) = victim else {
        return false;
    };
    state.split_requested.insert(job);
    state.steal_started.insert(job, Instant::now());
    state.split_pending.entry(owner).or_default().push(job);
    registry.record_shard_split();
    true
}

/// The coordinator's hello frame, opening a session pinned to `options` —
/// by digest only; the full document follows in an options frame when the
/// worker replies `need_options`.
pub(crate) fn hello_frame(options: &VerifierOptions) -> Json {
    Json::obj([
        ("schema", Json::int(WORKER_SCHEMA)),
        ("kind", Json::str("hello")),
        ("proto", Json::str(WORKER_PROTO)),
        (
            "options_digest",
            Json::str(crate::wire::options_digest(options)),
        ),
    ])
}

/// The full-options fallback frame, sent when a worker does not know the
/// hello's digest.
pub(crate) fn options_frame(options: &VerifierOptions) -> Json {
    Json::obj([
        ("schema", Json::int(WORKER_SCHEMA)),
        ("kind", Json::str("options")),
        (
            "options_digest",
            Json::str(crate::wire::options_digest(options)),
        ),
        ("options", crate::wire::options_to_json(options)),
    ])
}

fn ping_frame(seq: u64) -> Json {
    Json::obj([
        ("schema", Json::int(WORKER_SCHEMA)),
        ("kind", Json::str("ping")),
        ("seq", Json::int(seq)),
    ])
}

/// Keep receiving past read timeouts until `deadline` has elapsed since
/// `start` — the handshake's tolerance for a worker that is alive but
/// slow to answer its first frame.
fn recv_within(
    transport: &mut Box<dyn Transport>,
    start: Instant,
    deadline: Duration,
) -> Result<Option<Json>, ExecError> {
    loop {
        match transport.recv() {
            Err(ExecError::Timeout) if start.elapsed() < deadline => continue,
            other => return other,
        }
    }
}

/// Dispatch `count` jobs over `connectors` and return the raw result
/// frames by job index. `frame_for(i, held)` builds the complete job
/// frame for job `i` (including its id and any attachments) **for one
/// specific worker**: `held` is that worker's summary held-set, which the
/// builder consults to ship only missing summaries (and updates with what
/// it ships). The builder may be called again with a *different* worker's
/// held-set if the job is requeued after a worker death.
pub(crate) fn dispatch(
    connectors: &[Box<dyn Connector>],
    registry: &WorkerRegistry,
    options: &VerifierOptions,
    heartbeat: HeartbeatConfig,
    count: usize,
    frame_for: &(dyn Fn(usize, &mut BTreeSet<Fingerprint>) -> Json + Sync),
) -> Result<Vec<Json>, ExecError> {
    dispatch_with_cancel(
        connectors, registry, options, heartbeat, count, frame_for, None, None,
    )
}

/// [`dispatch`] with an optional sibling-group cancellation policy (see
/// [`CancelSpec`]) and an optional shard-stealing policy (see
/// [`StealSpec`]) — the compose-shard early exit and adaptive tail. With
/// stealing, remainder jobs registered mid-run grow the result vector, so
/// the returned frames may outnumber `count`; indices `count..` are the
/// stolen remainders, in registration order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dispatch_with_cancel(
    connectors: &[Box<dyn Connector>],
    registry: &WorkerRegistry,
    options: &VerifierOptions,
    heartbeat: HeartbeatConfig,
    count: usize,
    frame_for: &(dyn Fn(usize, &mut BTreeSet<Fingerprint>) -> Json + Sync),
    cancel: Option<&CancelSpec<'_>>,
    steal: Option<&StealSpec<'_>>,
) -> Result<Vec<Json>, ExecError> {
    if count == 0 {
        return Ok(Vec::new());
    }
    let shared = Shared {
        state: Mutex::new(State {
            queue: (0..count).collect(),
            remaining: count,
            fatal: None,
            results: (0..count).map(|_| None).collect(),
            last_failure: None,
            cancelled_groups: BTreeSet::new(),
            in_flight: BTreeMap::new(),
            split_pending: BTreeMap::new(),
            split_requested: BTreeSet::new(),
            steal_started: BTreeMap::new(),
        }),
        cv: Condvar::new(),
    };

    std::thread::scope(|scope| {
        for connector in connectors {
            let shared = &shared;
            scope.spawn(move || {
                worker_loop(
                    connector.as_ref(),
                    registry,
                    options,
                    heartbeat,
                    shared,
                    frame_for,
                    cancel,
                    steal,
                )
            });
        }
    });

    let state = shared.state.into_inner().expect("dispatch state");
    if let Some(fatal) = state.fatal {
        return Err(fatal);
    }
    if state.remaining > 0 {
        let why = state
            .last_failure
            .unwrap_or_else(|| "no worker ever connected".to_string());
        return Err(ExecError::NoWorkers(format!(
            "{} of {count} jobs unfinished: {why}",
            state.remaining
        )));
    }
    Ok(state
        .results
        .into_iter()
        .map(|slot| slot.expect("remaining == 0 implies every slot filled"))
        .collect())
}

fn cancel_frame(id: usize) -> Json {
    Json::obj([
        ("schema", Json::int(WORKER_SCHEMA)),
        ("kind", Json::str("cancel")),
        ("id", Json::int(id as u64)),
    ])
}

/// The steal request: asks the worker to stop walking job `id`, answer
/// with the records it finished, and hand the unwalked unit range back as
/// a `remainder` on the result frame.
fn split_frame(id: usize) -> Json {
    Json::obj([
        ("schema", Json::int(WORKER_SCHEMA)),
        ("kind", Json::str("split")),
        ("id", Json::int(id as u64)),
    ])
}

/// One worker's coordinator-side loop.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    connector: &dyn Connector,
    registry: &WorkerRegistry,
    options: &VerifierOptions,
    heartbeat: HeartbeatConfig,
    shared: &Shared,
    frame_for: &(dyn Fn(usize, &mut BTreeSet<Fingerprint>) -> Json + Sync),
    cancel: Option<&CancelSpec<'_>>,
    steal: Option<&StealSpec<'_>>,
) {
    // Connect + handshake. Failures here lose the worker, never the jobs
    // (nothing was pulled yet).
    let fail = |note: String| {
        registry.register_dead(connector.describe(), note.clone());
        let mut state = shared.state.lock().expect("dispatch state");
        state.last_failure = Some(format!("{}: {note}", connector.describe()));
        shared.cv.notify_all();
    };
    let mut transport = match connector.connect() {
        Ok(t) => t,
        Err(e) => return fail(e.to_string()),
    };
    // Arm the read deadline where the transport supports it (sockets).
    // Stdio pipes cannot time out; they keep the blocking behaviour and
    // `recv` never returns `Timeout` for them.
    let timed = transport.set_read_timeout(Some(heartbeat.interval));
    let mut read_timeout = heartbeat.interval;
    if let Err(e) = transport.send(&hello_frame(options)) {
        return fail(format!("hello not sent: {e}"));
    }
    let handshake_start = Instant::now();
    let (capacity, mut held) =
        match recv_within(&mut transport, handshake_start, heartbeat.deadline) {
            Ok(Some(frame)) => match frame.get("kind").and_then(Json::as_str) {
                Some("hello") => {
                    let schema = frame.get("schema").and_then(Json::as_u64);
                    let proto = frame.get("proto").and_then(Json::as_str);
                    if schema != Some(WORKER_SCHEMA) || proto != Some(WORKER_PROTO) {
                        return fail(format!(
                            "version mismatch: worker speaks {proto:?} schema {schema:?}, \
                         this build speaks {WORKER_PROTO} schema {WORKER_SCHEMA}"
                        ));
                    }
                    let capacity = frame
                        .get("capacity")
                        .and_then(Json::as_u64)
                        .map(|c| c.max(1) as usize)
                        .unwrap_or(1);
                    // The worker's held-summary advertisement seeds this
                    // session's dedup set.
                    let mut held: BTreeSet<Fingerprint> = BTreeSet::new();
                    if let Some(fps) = frame.get("held").and_then(Json::as_arr) {
                        for fp in fps {
                            match fp.as_str().and_then(Fingerprint::parse) {
                                Some(fp) => {
                                    held.insert(fp);
                                }
                                None => return fail("unparsable held fingerprint".into()),
                            }
                        }
                    }
                    if frame.get("need_options").and_then(Json::as_bool) == Some(true) {
                        if let Err(e) = transport.send(&options_frame(options)) {
                            return fail(format!("options not sent: {e}"));
                        }
                    }
                    (capacity, held)
                }
                Some("error") => {
                    let message = frame
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("worker rejected the session");
                    return fail(format!("hello rejected: {message}"));
                }
                other => return fail(format!("unexpected handshake frame kind {other:?}")),
            },
            Ok(None) => return fail("connection closed during handshake".into()),
            Err(ExecError::Timeout) => {
                return fail(format!(
                    "suspect: no hello within the {:?} heartbeat deadline",
                    heartbeat.deadline
                ))
            }
            Err(e) => return fail(e.to_string()),
        };
    let peer = transport.peer();
    let id = registry.register(peer.clone(), capacity);

    // The pull loop: keep up to `capacity` jobs in flight.
    let mut outstanding: VecDeque<usize> = VecDeque::new();
    let die = |outstanding: &mut VecDeque<usize>, note: String, suspect: bool| {
        let requeued = outstanding.len();
        let mut state = shared.state.lock().expect("dispatch state");
        state.in_flight.remove(&id);
        state.split_pending.remove(&id);
        for job in outstanding.drain(..) {
            // A requeued job is fresh again: any pending steal against it
            // dissolves (the next holder can be split anew).
            state.split_requested.remove(&job);
            state.steal_started.remove(&job);
            state.queue.push_back(job);
        }
        state.last_failure = Some(format!("{peer}: {note}"));
        drop(state);
        if suspect {
            registry.mark_suspect(id, requeued, note);
        } else {
            registry.mark_dead(id, requeued, note);
        }
        shared.cv.notify_all();
    };
    let mut last_heard = Instant::now();
    let mut ping_seq = 0u64;
    // Jobs this worker has already sent a cancel frame for.
    let mut cancel_sent: BTreeSet<usize> = BTreeSet::new();
    loop {
        // Top up the window from the shared queue.
        while outstanding.len() < capacity {
            let next = {
                let mut state = shared.state.lock().expect("dispatch state");
                if state.fatal.is_some() {
                    return; // another worker hit a fatal job error
                }
                loop {
                    let Some(job) = state.queue.pop_front() else {
                        break None;
                    };
                    // A queued member of a cancelled group resolves right
                    // here, without ever reaching a worker.
                    let group = cancel.and_then(|spec| (spec.group_of)(job));
                    if let (Some(spec), Some(g)) = (cancel, group) {
                        if state.cancelled_groups.contains(&g) {
                            if state.results[job].is_none() {
                                state.results[job] = Some((spec.synthetic)(job));
                                state.remaining -= 1;
                                if state.remaining == 0 {
                                    shared.cv.notify_all();
                                }
                            }
                            continue;
                        }
                    }
                    break Some(job);
                }
            };
            let Some(job) = next else { break };
            if let Err(e) = transport.send(&frame_for(job, &mut held)) {
                outstanding.push_back(job);
                return die(&mut outstanding, format!("job not sent: {e}"), false);
            }
            registry.record_dispatched();
            outstanding.push_back(job);
            if steal.is_some() {
                let mut state = shared.state.lock().expect("dispatch state");
                state.in_flight.entry(id).or_default().push(job);
            }
        }

        // Spare capacity with a dry queue: ask for a split so the idle
        // cores get the tail of somebody's in-flight slice (possibly our
        // own — self-steal fills a worker's own spare capacity).
        if steal.is_some() && !outstanding.is_empty() && outstanding.len() < capacity {
            let mut state = shared.state.lock().expect("dispatch state");
            if state.queue.is_empty() {
                request_split(&mut state, registry, cancel);
            }
        }

        if outstanding.is_empty() {
            // Nothing in flight and the queue is dry: park until another
            // worker's death requeues something, or the run finishes.
            // With stealing on, ask the most loaded worker to split and
            // park with a timeout — if the split races the job's own
            // completion, the next wake-up requests a fresh one.
            let mut state = shared.state.lock().expect("dispatch state");
            loop {
                if state.fatal.is_some() || state.remaining == 0 {
                    return;
                }
                if !state.queue.is_empty() {
                    break;
                }
                if steal.is_some() {
                    request_split(&mut state, registry, cancel);
                    // Re-request on the relay-poll cadence: a split that
                    // raced its job's completion dissolves, and the next
                    // wake-up picks a fresh victim.
                    let (guard, _) = shared
                        .cv
                        .wait_timeout(state, STEAL_RELAY_POLL.min(heartbeat.interval))
                        .expect("dispatch state");
                    state = guard;
                } else {
                    state = shared.cv.wait(state).expect("dispatch state");
                }
            }
            continue;
        }

        // Relay group cancellations to this worker's own in-flight jobs —
        // once per job. A worker blocked in `recv` notices at its next
        // wake-up: a result, a pong, or a heartbeat-interval read timeout.
        if let Some(spec) = cancel {
            let groups = {
                let state = shared.state.lock().expect("dispatch state");
                state.cancelled_groups.clone()
            };
            if !groups.is_empty() {
                for &job in &outstanding {
                    if !cancel_sent.contains(&job)
                        && (spec.group_of)(job).is_some_and(|g| groups.contains(&g))
                    {
                        // A send failure surfaces on the next recv.
                        let _ = transport.send(&cancel_frame(job));
                        cancel_sent.insert(job);
                    }
                }
            }
        }

        // Relay split requests queued against this worker's in-flight
        // jobs. A request whose job already completed is stale (its
        // bookkeeping was cleared when the result landed) and is skipped.
        if steal.is_some() {
            let pending = {
                let mut state = shared.state.lock().expect("dispatch state");
                state.split_pending.remove(&id)
            };
            for job in pending.into_iter().flatten() {
                if outstanding.contains(&job) {
                    // A send failure surfaces on the next recv.
                    let _ = transport.send(&split_frame(job));
                }
            }
        }

        // In the steal endgame, swap the read deadline for the tight
        // relay poll so a split request queued while we are blocked in
        // `recv` reaches the wire in milliseconds; restore the heartbeat
        // interval as soon as the queue has work again.
        if timed && steal.is_some() && !outstanding.is_empty() {
            let endgame = {
                let state = shared.state.lock().expect("dispatch state");
                state.queue.is_empty() && state.remaining > 0
            };
            let want = if endgame {
                STEAL_RELAY_POLL.min(heartbeat.interval)
            } else {
                heartbeat.interval
            };
            if want != read_timeout && transport.set_read_timeout(Some(want)) {
                read_timeout = want;
            }
        }

        // Await one result. With a read deadline armed, a silent interval
        // surfaces as `Timeout`: probe with a ping, and once the worker
        // has been silent past the heartbeat deadline, mark it suspect
        // and requeue — a SIGSTOPped or silently partitioned worker must
        // never block plan completion.
        match transport.recv() {
            Ok(Some(frame)) => {
                last_heard = Instant::now();
                match frame.get("kind").and_then(Json::as_str) {
                    Some("result") => {
                        let Some(job) = frame
                            .get("id")
                            .and_then(Json::as_u64)
                            .and_then(|v| usize::try_from(v).ok())
                        else {
                            return die(
                                &mut outstanding,
                                "result frame without an id".into(),
                                false,
                            );
                        };
                        let Some(pos) = outstanding.iter().position(|&j| j == job) else {
                            return die(
                                &mut outstanding,
                                format!("result for job {job} this worker does not hold"),
                                false,
                            );
                        };
                        outstanding.remove(pos);
                        // Fold acks: the worker confirms which summaries it
                        // now holds (its own explore results included).
                        if let Some(fps) = frame.get("folded").and_then(Json::as_arr) {
                            for fp in fps {
                                if let Some(fp) = fp.as_str().and_then(Fingerprint::parse) {
                                    held.insert(fp);
                                }
                            }
                        }
                        registry.record_completed(id);
                        let ended_group = cancel.and_then(|spec| {
                            (spec.group_of)(job).filter(|_| (spec.ends_group)(&frame))
                        });
                        let mut state = shared.state.lock().expect("dispatch state");
                        if let Some(jobs) = state.in_flight.get_mut(&id) {
                            jobs.retain(|&j| j != job);
                            if jobs.is_empty() {
                                state.in_flight.remove(&id);
                            }
                        }
                        state.split_requested.remove(&job);
                        let steal_start = state.steal_started.remove(&job);
                        // A remainder on the frame is the unwalked tail of
                        // a split shard: register it as a brand-new job and
                        // requeue it — unless the sibling group's verdict
                        // is already in, in which case the tail is moot.
                        if let Some(spec) = steal {
                            let group_done = ended_group.is_some()
                                || cancel
                                    .and_then(|c| (c.group_of)(job))
                                    .is_some_and(|g| state.cancelled_groups.contains(&g));
                            if !group_done {
                                if let Some(new_id) = (spec.remainder)(job, &frame) {
                                    assert_eq!(
                                        new_id,
                                        state.results.len(),
                                        "remainder job index must extend the result slots"
                                    );
                                    state.results.push(None);
                                    state.remaining += 1;
                                    state.queue.push_back(new_id);
                                    registry.record_shards_offered(1);
                                    let wait_ns = steal_start
                                        .map(|t| t.elapsed().as_nanos() as u64)
                                        .unwrap_or(0);
                                    registry.record_shard_stolen(wait_ns);
                                    // Wake parked thieves: there is a job
                                    // for them now.
                                    shared.cv.notify_all();
                                }
                            }
                        }
                        if state.results[job].is_none() {
                            state.results[job] = Some(frame);
                            state.remaining -= 1;
                        }
                        if let (Some(spec), Some(g)) = (cancel, ended_group) {
                            if state.cancelled_groups.insert(g) {
                                // The group's verdict is in: resolve its
                                // queued members synthetically so no
                                // worker ever pulls them.
                                let mut kept = VecDeque::new();
                                while let Some(j) = state.queue.pop_front() {
                                    if (spec.group_of)(j) == Some(g) {
                                        if state.results[j].is_none() {
                                            state.results[j] = Some((spec.synthetic)(j));
                                            state.remaining -= 1;
                                        }
                                    } else {
                                        kept.push_back(j);
                                    }
                                }
                                state.queue = kept;
                            }
                        }
                        if state.remaining == 0 {
                            shared.cv.notify_all();
                        }
                    }
                    Some("pong") => {}
                    Some("error") => {
                        let message = frame
                            .get("message")
                            .and_then(Json::as_str)
                            .unwrap_or("worker reported a job failure");
                        let mut state = shared.state.lock().expect("dispatch state");
                        state.fatal = Some(ExecError::Job(message.to_string()));
                        shared.cv.notify_all();
                        return;
                    }
                    other => {
                        return die(
                            &mut outstanding,
                            format!("unexpected frame kind {other:?}"),
                            false,
                        )
                    }
                }
            }
            Ok(None) => {
                let in_flight = outstanding.len();
                return die(
                    &mut outstanding,
                    format!("connection closed with {in_flight} jobs in flight"),
                    false,
                );
            }
            Err(ExecError::Timeout) if timed => {
                let silent = last_heard.elapsed();
                if silent >= heartbeat.deadline {
                    return die(
                        &mut outstanding,
                        format!(
                            "suspect: silent for {silent:?} (heartbeat deadline {:?})",
                            heartbeat.deadline
                        ),
                        true,
                    );
                }
                // The endgame relay poll wakes much faster than the
                // heartbeat interval; keep probes paced by the interval
                // so a tight poll does not turn into a ping flood.
                if silent >= heartbeat.interval {
                    ping_seq += 1;
                    if let Err(e) = transport.send(&ping_frame(ping_seq)) {
                        return die(&mut outstanding, format!("ping not sent: {e}"), false);
                    }
                }
            }
            Err(e) => return die(&mut outstanding, e.to_string(), false),
        }
    }
}

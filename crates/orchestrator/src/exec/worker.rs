//! The worker side of the dispatch protocol: handshake, then execute
//! every job frame the coordinator pushes into this worker's window —
//! Step-1 explorations *and* Step-2 compositions — replying with result
//! frames as each job finishes (possibly out of order; the coordinator
//! folds by job id).
//!
//! [`worker_serve`] runs the protocol over any read/write pair — stdin and
//! stdout for `vericlick worker`, an accepted socket for
//! `vericlick worker --listen` (see [`serve_listener`]). The framing is
//! identical on every transport.

use super::transport::{read_frame, write_frame, WorkerAddr};
use super::{run_explore_job, ExecError};
use crate::json::Json;
use crate::persist::{summary_from_json, summary_to_json};
use crate::wire::{job_from_json, options_from_json, report_to_json, JobSpec};
use dataplane_verifier::{ElementSummary, Verifier, VerifierOptions};
use std::io::{BufRead, BufReader, Write};
use std::sync::{Arc, Condvar, Mutex};

/// Schema version of the worker-protocol frames. Version 2 is the
/// registry protocol: hello handshake, pull-dispatched tagged jobs
/// (explore *and* compose), out-of-order results by id. Version 3 adds
/// `fuzz` to the job vocabulary (conformance fuzz shards) — a bump, not
/// an addition, because a v2 worker would reject the new kind mid-plan
/// instead of at the handshake.
pub const WORKER_SCHEMA: u64 = 3;

/// Protocol name announced in hello frames, so a mismatched peer is told
/// what this endpoint speaks.
pub const WORKER_PROTO: &str = "vericlick-worker";

fn error_frame(id: Option<u64>, message: &str) -> Json {
    let mut fields = vec![
        ("schema", Json::int(WORKER_SCHEMA)),
        ("kind", Json::str("error")),
        ("message", Json::str(message)),
    ];
    if let Some(id) = id {
        fields.insert(2, ("id", Json::int(id)));
    }
    Json::obj(fields)
}

/// Execute one decoded job; returns the result frame's payload fields.
fn run_job(
    job: &JobSpec,
    summaries: Vec<Option<ElementSummary>>,
    options: &VerifierOptions,
) -> Result<Vec<(&'static str, Json)>, ExecError> {
    match job {
        JobSpec::Explore(job) => {
            let summary = run_explore_job(job, &options.engine)?;
            Ok(vec![(
                "summary",
                match summary {
                    Some(s) => summary_to_json(&s),
                    None => Json::Null,
                },
            )])
        }
        JobSpec::Compose(job) => {
            let scenario = job
                .scenario
                .to_scenario()
                .map_err(|e| ExecError::Job(format!("compose job scenario: {e}")))?;
            let mut verifier = Verifier::with_options(options.clone());
            let report = verifier.decide_composition(
                &scenario.pipeline,
                &scenario.property,
                summaries.into_iter().flatten().map(Arc::new),
            );
            Ok(vec![
                ("report", report_to_json(&report)),
                (
                    "elapsed_micros",
                    Json::int(report.elapsed.as_micros().min(u128::from(u64::MAX)) as u64),
                ),
            ])
        }
        JobSpec::Fuzz(job) => {
            let report = crate::conformance::run_fuzz_shard(job, options)?;
            Ok(vec![(
                "fuzz",
                crate::conformance::shard_report_to_json(&report),
            )])
        }
    }
}

/// Serve one coordinator session: handshake on the first frame, then
/// execute job frames (up to `capacity` concurrently — the coordinator
/// never keeps more than the advertised capacity in flight) until the
/// peer closes the stream. `capacity` 0 means one per available core.
///
/// This is what `vericlick worker` runs over stdin/stdout; the framing is
/// line-delimited JSON, so the same function serves an accepted socket.
pub fn worker_serve<R, W>(input: R, output: W, capacity: usize) -> Result<(), ExecError>
where
    R: BufRead,
    W: Write + Send,
{
    let capacity = super::default_parallelism(capacity);
    let mut input = input;
    let writer = Mutex::new(output);

    // Handshake: the first frame must be a hello with our protocol and
    // schema. EOF before any frame is a clean no-op session.
    let Some(hello) = read_frame(&mut input)? else {
        return Ok(());
    };
    let kind = hello.get("kind").and_then(Json::as_str);
    let schema = hello.get("schema").and_then(Json::as_u64);
    let proto = hello.get("proto").and_then(Json::as_str);
    if kind != Some("hello") || schema != Some(WORKER_SCHEMA) || proto != Some(WORKER_PROTO) {
        // Reject cleanly: tell the peer what this build speaks, then
        // refuse the session.
        let message = format!(
            "version mismatch: peer sent kind {kind:?} proto {proto:?} schema {schema:?}; \
             this worker speaks {WORKER_PROTO} schema {WORKER_SCHEMA}"
        );
        let _ = write_frame(
            &mut *writer.lock().expect("worker writer"),
            &error_frame(None, &message),
        );
        return Err(ExecError::Protocol(message));
    }
    let options = options_from_json(
        hello
            .get("options")
            .ok_or_else(|| ExecError::Protocol("hello frame has no options".into()))?,
    )
    .map_err(|e| ExecError::Protocol(e.to_string()))?;
    write_frame(
        &mut *writer.lock().expect("worker writer"),
        &Json::obj([
            ("schema", Json::int(WORKER_SCHEMA)),
            ("kind", Json::str("hello")),
            ("proto", Json::str(WORKER_PROTO)),
            ("capacity", Json::int(capacity as u64)),
        ]),
    )?;

    // The job loop. Jobs run on scoped threads; results are written as
    // they finish. The in-flight gate enforces the advertised capacity on
    // *this* side too — an honest coordinator never exceeds the window,
    // but a remote peer is not trusted to spawn unbounded solver threads
    // here.
    let options = &options;
    let writer = &writer;
    let in_flight = &(Mutex::new(0usize), Condvar::new());
    std::thread::scope(|scope| -> Result<(), ExecError> {
        loop {
            let Some(frame) = read_frame(&mut input)? else {
                return Ok(()); // coordinator closed the session: drain and exit
            };
            if frame.get("schema").and_then(Json::as_u64) != Some(WORKER_SCHEMA) {
                return Err(ExecError::Protocol("job frame with wrong schema".into()));
            }
            match frame.get("kind").and_then(Json::as_str) {
                Some("job") => {
                    let id = frame
                        .get("id")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ExecError::Protocol("job frame without an id".into()))?;
                    let job =
                        job_from_json(frame.get("job").ok_or_else(|| {
                            ExecError::Protocol("job frame without a job".into())
                        })?)
                        .map_err(|e| ExecError::Protocol(e.to_string()))?;
                    let summaries = match frame.get("summaries") {
                        None | Some(Json::Null) => Vec::new(),
                        Some(doc) => doc
                            .as_arr()
                            .ok_or_else(|| {
                                ExecError::Protocol("job summaries is not an array".into())
                            })?
                            .iter()
                            .map(|s| match s {
                                Json::Null => Ok(None),
                                doc => summary_from_json(doc).map(Some).map_err(|e| {
                                    ExecError::Protocol(format!("undecodable summary: {e}"))
                                }),
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                    };
                    {
                        let (count, cv) = in_flight;
                        let mut running = count.lock().expect("in-flight gate");
                        while *running >= capacity {
                            running = cv.wait(running).expect("in-flight gate");
                        }
                        *running += 1;
                    }
                    scope.spawn(move || {
                        let frame = match run_job(&job, summaries, options) {
                            Ok(payload) => {
                                let mut fields = vec![
                                    ("schema", Json::int(WORKER_SCHEMA)),
                                    ("kind", Json::str("result")),
                                    ("id", Json::int(id)),
                                ];
                                fields.extend(payload);
                                Json::obj(fields)
                            }
                            Err(e) => error_frame(Some(id), &e.to_string()),
                        };
                        // A write failure means the coordinator is gone;
                        // the read loop will see EOF and exit.
                        let _ = write_frame(&mut *writer.lock().expect("worker writer"), &frame);
                        let (count, cv) = in_flight;
                        *count.lock().expect("in-flight gate") -= 1;
                        cv.notify_one();
                    });
                }
                Some("shutdown") => return Ok(()),
                other => {
                    return Err(ExecError::Protocol(format!(
                        "unexpected frame kind {other:?}"
                    )))
                }
            }
        }
    })
}

/// Bind `addr` and serve coordinator connections: the body of
/// `vericlick worker --listen`. Every accepted connection is one
/// [`worker_serve`] session; sessions are served sequentially (one
/// coordinator at a time — parallelism lives *inside* a session, bounded
/// by `capacity`). With `once`, exit after the first session (used by
/// tests); otherwise loop until killed.
///
/// `log` receives one line per lifecycle event; the first is always
/// `listening on <addr>` with the *actual* bound address (so `:0` TCP
/// listeners report their chosen port).
pub fn serve_listener(
    addr: &WorkerAddr,
    capacity: usize,
    once: bool,
    log: &mut dyn FnMut(&str),
) -> Result<(), ExecError> {
    match addr {
        WorkerAddr::Tcp(spec) => {
            let listener = std::net::TcpListener::bind(spec)
                .map_err(|e| ExecError::Connect(format!("bind {spec}: {e}")))?;
            let local = listener
                .local_addr()
                .map_err(|e| ExecError::Connect(format!("bind {spec}: {e}")))?;
            log(&format!("listening on {local}"));
            loop {
                let (stream, peer) = listener
                    .accept()
                    .map_err(|e| ExecError::Connect(format!("accept: {e}")))?;
                log(&format!("session from {peer}"));
                let reader = stream
                    .try_clone()
                    .map_err(|e| ExecError::Connect(format!("clone stream: {e}")))?;
                match worker_serve(BufReader::new(reader), stream, capacity) {
                    Ok(()) => log(&format!("session from {peer} done")),
                    Err(e) => log(&format!("session from {peer} failed: {e}")),
                }
                if once {
                    return Ok(());
                }
            }
        }
        WorkerAddr::Unix(path) => {
            // Reclaim only a *stale* socket file: if a live worker still
            // answers on it, refuse instead of silently stealing its
            // address (the old worker would keep running, unreachable).
            if path.exists() {
                if std::os::unix::net::UnixStream::connect(path).is_ok() {
                    return Err(ExecError::Connect(format!(
                        "{} is in use by a live worker",
                        path.display()
                    )));
                }
                let _ = std::fs::remove_file(path);
            }
            let listener = std::os::unix::net::UnixListener::bind(path)
                .map_err(|e| ExecError::Connect(format!("bind {}: {e}", path.display())))?;
            log(&format!("listening on unix:{}", path.display()));
            loop {
                let (stream, _) = listener
                    .accept()
                    .map_err(|e| ExecError::Connect(format!("accept: {e}")))?;
                log("session on unix socket");
                let reader = stream
                    .try_clone()
                    .map_err(|e| ExecError::Connect(format!("clone stream: {e}")))?;
                match worker_serve(BufReader::new(reader), stream, capacity) {
                    Ok(()) => log("session done"),
                    Err(e) => log(&format!("session failed: {e}")),
                }
                if once {
                    return Ok(());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::dispatch::hello_frame;
    use super::super::testutil::router_jobs;
    use super::*;
    use crate::wire::{job_to_json, ExploreJob};

    fn frames_to_input(frames: &[Json]) -> std::io::Cursor<String> {
        let text: String = frames
            .iter()
            .map(|f| format!("{}\n", f.to_text()))
            .collect();
        std::io::Cursor::new(text)
    }

    fn job_frame(id: u64, job: &ExploreJob) -> Json {
        Json::obj([
            ("schema", Json::int(WORKER_SCHEMA)),
            ("kind", Json::str("job")),
            ("id", Json::int(id)),
            ("job", job_to_json(&JobSpec::Explore(job.clone()))),
        ])
    }

    fn parse_output(output: &[u8]) -> Vec<Json> {
        String::from_utf8(output.to_vec())
            .unwrap()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| Json::parse(l).unwrap())
            .collect()
    }

    #[test]
    fn worker_serves_a_session_over_buffers() {
        // Drive the exact protocol through in-memory buffers: hello, two
        // explore jobs, EOF.
        let options = VerifierOptions::default();
        let jobs = router_jobs(&options.engine);
        let mut frames = vec![hello_frame(&options)];
        frames.push(job_frame(0, &jobs[0]));
        frames.push(job_frame(1, &jobs[1]));
        let mut output = Vec::new();
        worker_serve(frames_to_input(&frames), &mut output, 2).unwrap();
        let replies = parse_output(&output);
        assert_eq!(
            replies[0].get("kind").and_then(Json::as_str),
            Some("hello"),
            "first reply is the hello"
        );
        assert_eq!(
            replies[0].get("schema").and_then(Json::as_u64),
            Some(WORKER_SCHEMA)
        );
        let mut ids: Vec<u64> = replies[1..]
            .iter()
            .map(|r| {
                assert_eq!(r.get("kind").and_then(Json::as_str), Some("result"));
                assert!(
                    r.get("summary").is_some(),
                    "explore results carry a summary"
                );
                r.get("id").and_then(Json::as_u64).unwrap()
            })
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1], "every job answered exactly once");
    }

    #[test]
    fn version_mismatch_hello_is_rejected_cleanly() {
        let bad_hello = Json::obj([
            ("schema", Json::int(99u64)),
            ("kind", Json::str("hello")),
            ("proto", Json::str(WORKER_PROTO)),
        ]);
        let mut output = Vec::new();
        let result = worker_serve(frames_to_input(&[bad_hello]), &mut output, 1);
        assert!(matches!(result, Err(ExecError::Protocol(_))), "{result:?}");
        let replies = parse_output(&output);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].get("kind").and_then(Json::as_str), Some("error"));
        let message = replies[0]
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or_default();
        assert!(
            message.contains(&format!("schema {WORKER_SCHEMA}")),
            "tells the peer what we speak: {message}"
        );
    }

    #[test]
    fn worker_rejects_malformed_frames_and_eof_is_clean() {
        let mut output = Vec::new();
        let result = worker_serve(
            std::io::Cursor::new("not json\n".to_string()),
            &mut output,
            1,
        );
        assert!(result.is_err());
        // EOF without a frame is a clean exit.
        let mut output = Vec::new();
        worker_serve(std::io::Cursor::new(String::new()), &mut output, 1).unwrap();
        assert!(output.is_empty());
    }

    #[test]
    fn fingerprint_mismatch_becomes_an_error_frame() {
        let options = VerifierOptions::default();
        let mut jobs = router_jobs(&options.engine);
        jobs[0].fingerprint = crate::fingerprint::fingerprint_bytes("not this element");
        let frames = vec![hello_frame(&options), job_frame(7, &jobs[0])];
        let mut output = Vec::new();
        worker_serve(frames_to_input(&frames), &mut output, 1).unwrap();
        let replies = parse_output(&output);
        assert_eq!(replies[1].get("kind").and_then(Json::as_str), Some("error"));
        assert_eq!(replies[1].get("id").and_then(Json::as_u64), Some(7));
    }
}

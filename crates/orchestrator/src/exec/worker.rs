//! The worker side of the dispatch protocol: handshake, then execute
//! every job frame the coordinator pushes into this worker's window —
//! Step-1 explorations *and* Step-2 compositions — replying with result
//! frames as each job finishes (possibly out of order; the coordinator
//! folds by job id).
//!
//! [`worker_serve`] runs the protocol over any read/write pair — stdin and
//! stdout for `vericlick worker`, an accepted socket for
//! `vericlick worker --listen` (see [`serve_listener`]). The framing is
//! identical on every transport.

use super::transport::{read_frame, write_frame, WorkerAddr};
use super::{run_explore_job, ExecError};
use crate::fingerprint::Fingerprint;
use crate::json::Json;
use crate::persist::{summary_from_json, summary_to_json};
use crate::wire::{
    job_from_json, options_digest, options_from_json, report_to_json, shard_result_to_json, JobSpec,
};
use dataplane_symbex::CancelToken;
use dataplane_verifier::{ElementSummary, Verifier, VerifierOptions};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::sync::{Arc, Condvar, Mutex};

/// Schema version of the worker-protocol frames. Version 2 is the
/// registry protocol: hello handshake, pull-dispatched tagged jobs
/// (explore *and* compose), out-of-order results by id. Version 3 adds
/// `fuzz` to the job vocabulary (conformance fuzz shards) — a bump, not
/// an addition, because a v2 worker would reject the new kind mid-plan
/// instead of at the handshake. Version 4 is the summary-transfer and
/// fleet-health upgrade: hellos carry an `options_digest` instead of the
/// full options (with a full-options fallback when the worker does not
/// know the digest), workers advertise the summary fingerprints they
/// already `held` and ack newly `folded` ones per result, compose frames
/// mark already-held summary slots with `"held"` instead of re-shipping
/// the document, and `ping`/`pong` frames let the coordinator detect a
/// wedged-but-connected worker. Version 5 is compose sharding: the
/// `compose-shard` job kind (a contiguous slice of a scenario's Step-2
/// check enumeration, riding the same summary-dedup attachments as
/// `compose`) and the `cancel` frame, which fires a running shard's
/// cancellation token so a sibling's violation stops work the fold no
/// longer needs — the cancelled job still answers with the complete
/// records it finished. Version 6 adds the `temporal` job kind: a
/// compose-shaped job (scenario + summary fingerprints, same dedup
/// attachments) whose property is an LTL spec decided by the
/// Büchi-product search — a bump so a v5 worker refuses it at decode
/// time instead of failing mid-plan. Version 7 adds the `split` frame
/// (shard stealing): `{"kind":"split","id":N}` asks the worker to stop
/// the named in-flight compose-shard job at the next work-unit boundary
/// and answer with the records finished so far plus a `remainder` unit
/// range the coordinator requeues to an idle worker; shard results also
/// carry per-node `timings` the service feeds into shard-width
/// calibration, and shard unit addresses are solver-work units (checks
/// and weighted edges), not node counts — a bump because a v6 worker
/// would silently ignore the frame and a v6 coordinator would misread
/// the addresses.
pub const WORKER_SCHEMA: u64 = 7;

/// Protocol name announced in hello frames, so a mismatched peer is told
/// what this endpoint speaks.
pub const WORKER_PROTO: &str = "vericlick-worker";

/// A worker process's cross-session memory. One instance outlives every
/// coordinator session a listener serves, which is what makes the v4
/// protocol's dedup real: verifier options are remembered by digest (a
/// reconnecting coordinator sends 32 hex chars instead of the options
/// document), and element summaries — folded from job frames or computed
/// by this worker's own explore jobs — are retained and advertised in
/// hello replies, so the dispatcher ships only what this worker is
/// missing.
#[derive(Default)]
pub struct WorkerState {
    options: Mutex<BTreeMap<String, VerifierOptions>>,
    summaries: Mutex<BTreeMap<Fingerprint, Arc<ElementSummary>>>,
}

impl WorkerState {
    /// An empty state (a worker that has seen nothing yet).
    pub fn new() -> Self {
        WorkerState::default()
    }

    /// Fingerprints of every summary this worker holds, in sorted order —
    /// the `held` advertisement of a hello reply.
    pub fn held(&self) -> Vec<Fingerprint> {
        self.summaries
            .lock()
            .expect("worker summaries")
            .keys()
            .copied()
            .collect()
    }

    /// Retain `summary` under `fingerprint` for future sessions.
    pub fn fold(&self, fingerprint: Fingerprint, summary: Arc<ElementSummary>) {
        self.summaries
            .lock()
            .expect("worker summaries")
            .insert(fingerprint, summary);
    }

    /// The summary held under `fingerprint`, if any.
    pub fn get(&self, fingerprint: Fingerprint) -> Option<Arc<ElementSummary>> {
        self.summaries
            .lock()
            .expect("worker summaries")
            .get(&fingerprint)
            .cloned()
    }

    /// Remember `options` under their content digest.
    pub fn remember_options(&self, options: &VerifierOptions) {
        self.options
            .lock()
            .expect("worker options")
            .insert(options_digest(options), options.clone());
    }

    /// The options previously pinned under `digest`, if this worker has
    /// seen them.
    pub fn options_for(&self, digest: &str) -> Option<VerifierOptions> {
        self.options
            .lock()
            .expect("worker options")
            .get(digest)
            .cloned()
    }
}

fn error_frame(id: Option<u64>, message: &str) -> Json {
    let mut fields = vec![
        ("schema", Json::int(WORKER_SCHEMA)),
        ("kind", Json::str("error")),
        ("message", Json::str(message)),
    ];
    if let Some(id) = id {
        fields.insert(2, ("id", Json::int(id)));
    }
    Json::obj(fields)
}

/// A job's result-frame payload fields, plus the fingerprints the job
/// folded into this worker's held set.
type JobOutput = (Vec<(&'static str, Json)>, Vec<Fingerprint>);

/// Resolved summary attachments, plus the fingerprints newly folded from
/// the frame they arrived in.
type DecodedSummaries = (Vec<Option<Arc<ElementSummary>>>, Vec<Fingerprint>);

/// Execute one decoded job; returns the result frame's payload fields
/// plus any fingerprints the job folded into this worker's held set (an
/// explore job retains its own result for future compose sessions).
fn run_job(
    job: &JobSpec,
    summaries: Vec<Option<Arc<ElementSummary>>>,
    options: &VerifierOptions,
    state: &WorkerState,
    cancel: &CancelToken,
    split: &CancelToken,
) -> Result<JobOutput, ExecError> {
    match job {
        JobSpec::Explore(job) => {
            let summary = run_explore_job(job, &options.engine)?.map(Arc::new);
            let payload = vec![(
                "summary",
                match &summary {
                    Some(s) => summary_to_json(s),
                    None => Json::Null,
                },
            )];
            let mut folded = Vec::new();
            if let Some(summary) = summary {
                state.fold(job.fingerprint, summary);
                folded.push(job.fingerprint);
            }
            Ok((payload, folded))
        }
        // Temporal jobs are compose-shaped and decided through the same
        // entry point; `verify` routes the property to the Büchi-product
        // search, so the report matches an in-process run byte for byte.
        JobSpec::Compose(job) | JobSpec::Temporal(job) => {
            let scenario = job
                .scenario
                .to_scenario()
                .map_err(|e| ExecError::Job(format!("compose job scenario: {e}")))?;
            let mut verifier = Verifier::with_options(options.clone());
            let report = verifier.decide_composition(
                &scenario.pipeline,
                &scenario.property,
                summaries.into_iter().flatten(),
            );
            Ok((
                vec![
                    ("report", report_to_json(&report)),
                    (
                        "elapsed_micros",
                        Json::int(report.elapsed.as_micros().min(u128::from(u64::MAX)) as u64),
                    ),
                ],
                Vec::new(),
            ))
        }
        JobSpec::ComposeShard(job) => {
            let scenario = job
                .scenario
                .to_scenario()
                .map_err(|e| ExecError::Job(format!("compose-shard job scenario: {e}")))?;
            let mut verifier = Verifier::with_options(options.clone());
            let result = verifier.decide_composition_shard_split(
                &scenario.pipeline,
                &scenario.property,
                summaries.into_iter().flatten(),
                job.start,
                job.end,
                cancel,
                split,
            );
            Ok((vec![("shard", shard_result_to_json(&result))], Vec::new()))
        }
        JobSpec::Fuzz(job) => {
            let report = crate::conformance::run_fuzz_shard(job, options)?;
            Ok((
                vec![("fuzz", crate::conformance::shard_report_to_json(&report))],
                Vec::new(),
            ))
        }
    }
}

/// Decode a job frame's `summaries` attachment under the v4 vocabulary:
/// a full document is folded into `state` (keyed by the job's fingerprint
/// at that position) and used, the string `"held"` resolves from `state`,
/// and `null` stays empty (budget-exceeded exploration). Returns the
/// resolved summaries plus the fingerprints newly folded from this frame.
fn decode_summaries(
    frame: &Json,
    job: &JobSpec,
    state: &WorkerState,
) -> Result<DecodedSummaries, ExecError> {
    let doc = match frame.get("summaries") {
        None | Some(Json::Null) => return Ok((Vec::new(), Vec::new())),
        Some(doc) => doc,
    };
    let arr = doc
        .as_arr()
        .ok_or_else(|| ExecError::Protocol("job summaries is not an array".into()))?;
    let fingerprints: &[Fingerprint] = match job {
        JobSpec::Compose(job) | JobSpec::Temporal(job) => &job.fingerprints,
        JobSpec::ComposeShard(job) => &job.fingerprints,
        _ => &[],
    };
    let mut folded = Vec::new();
    let summaries = arr
        .iter()
        .enumerate()
        .map(|(i, entry)| match entry {
            Json::Null => Ok(None),
            entry if entry.as_str() == Some("held") => {
                let fp = fingerprints.get(i).ok_or_else(|| {
                    ExecError::Protocol(format!(
                        "held summary slot {i} beyond the job's fingerprints"
                    ))
                })?;
                state.get(*fp).map(Some).ok_or_else(|| {
                    ExecError::Protocol(format!(
                        "summary {fp} marked held but absent from this worker's store"
                    ))
                })
            }
            entry => {
                let summary = Arc::new(
                    summary_from_json(entry)
                        .map_err(|e| ExecError::Protocol(format!("undecodable summary: {e}")))?,
                );
                if let Some(fp) = fingerprints.get(i) {
                    state.fold(*fp, summary.clone());
                    folded.push(*fp);
                }
                Ok(Some(summary))
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((summaries, folded))
}

/// Serve one coordinator session with a fresh [`WorkerState`] — the
/// stdio form, where the worker process lives exactly one session. See
/// [`worker_serve_with`] for listeners that retain state across sessions.
pub fn worker_serve<R, W>(input: R, output: W, capacity: usize) -> Result<(), ExecError>
where
    R: BufRead,
    W: Write + Send,
{
    worker_serve_with(input, output, capacity, &WorkerState::new())
}

/// Serve one coordinator session: handshake on the first frame, then
/// execute job frames (up to `capacity` concurrently — the coordinator
/// never keeps more than the advertised capacity in flight) until the
/// peer closes the stream. `capacity` 0 means one per available core.
/// `state` is this worker's cross-session memory: the hello reply
/// advertises its held summaries and resolves the coordinator's options
/// digest against it (replying `need_options` and awaiting the full
/// document when the digest is unknown).
///
/// This is what `vericlick worker` runs over stdin/stdout; the framing is
/// line-delimited JSON, so the same function serves an accepted socket.
pub fn worker_serve_with<R, W>(
    input: R,
    output: W,
    capacity: usize,
    state: &WorkerState,
) -> Result<(), ExecError>
where
    R: BufRead,
    W: Write + Send,
{
    let capacity = super::default_parallelism(capacity);
    let mut input = input;
    let writer = Mutex::new(output);

    // Handshake: the first frame must be a hello with our protocol and
    // schema. EOF before any frame is a clean no-op session.
    let Some(hello) = read_frame(&mut input)? else {
        return Ok(());
    };
    let kind = hello.get("kind").and_then(Json::as_str);
    let schema = hello.get("schema").and_then(Json::as_u64);
    let proto = hello.get("proto").and_then(Json::as_str);
    if kind != Some("hello") || schema != Some(WORKER_SCHEMA) || proto != Some(WORKER_PROTO) {
        // Reject cleanly: tell the peer what this build speaks, then
        // refuse the session.
        let message = format!(
            "version mismatch: peer sent kind {kind:?} proto {proto:?} schema {schema:?}; \
             this worker speaks {WORKER_PROTO} schema {WORKER_SCHEMA}"
        );
        let _ = write_frame(
            &mut *writer.lock().expect("worker writer"),
            &error_frame(None, &message),
        );
        return Err(ExecError::Protocol(message));
    }
    // Pin this session's options: a full document wins (and is remembered
    // under its digest), otherwise the digest must resolve against this
    // worker's memory — and when it does not, the hello reply asks for
    // the full document before any job.
    let mut need_options = false;
    let options = if let Some(doc) = hello.get("options") {
        let options = options_from_json(doc).map_err(|e| ExecError::Protocol(e.to_string()))?;
        state.remember_options(&options);
        Some(options)
    } else if let Some(digest) = hello.get("options_digest").and_then(Json::as_str) {
        let known = state.options_for(digest);
        need_options = known.is_none();
        known
    } else {
        return Err(ExecError::Protocol(
            "hello frame has neither options nor options_digest".into(),
        ));
    };
    let mut reply = vec![
        ("schema", Json::int(WORKER_SCHEMA)),
        ("kind", Json::str("hello")),
        ("proto", Json::str(WORKER_PROTO)),
        ("capacity", Json::int(capacity as u64)),
        (
            "held",
            Json::Arr(
                state
                    .held()
                    .iter()
                    .map(|fp| Json::str(fp.to_string()))
                    .collect(),
            ),
        ),
    ];
    if need_options {
        reply.push(("need_options", Json::Bool(true)));
    }
    write_frame(
        &mut *writer.lock().expect("worker writer"),
        &Json::obj(reply),
    )?;
    let options = match options {
        Some(options) => options,
        None => {
            // The digest fallback: the very next frame must carry the
            // full options document.
            let Some(frame) = read_frame(&mut input)? else {
                return Err(ExecError::Protocol(
                    "connection closed awaiting the full options document".into(),
                ));
            };
            if frame.get("kind").and_then(Json::as_str) != Some("options") {
                return Err(ExecError::Protocol(
                    "expected an options frame after need_options".into(),
                ));
            }
            let options = options_from_json(
                frame
                    .get("options")
                    .ok_or_else(|| ExecError::Protocol("options frame without options".into()))?,
            )
            .map_err(|e| ExecError::Protocol(e.to_string()))?;
            state.remember_options(&options);
            options
        }
    };

    // The job loop. Jobs run on scoped threads; results are written as
    // they finish. The in-flight gate enforces the advertised capacity on
    // *this* side too — an honest coordinator never exceeds the window,
    // but a remote peer is not trusted to spawn unbounded solver threads
    // here.
    let options = &options;
    let writer = &writer;
    let in_flight = &(Mutex::new(0usize), Condvar::new());
    // Cancellation tokens of in-flight jobs, by id: a `cancel` frame fires
    // the token from the read loop while the job's thread keeps running —
    // the job notices between walk nodes and answers with what it has.
    let cancels = &Mutex::new(BTreeMap::<u64, CancelToken>::new());
    // Split tokens of in-flight compose-shard jobs, by id: a `split` frame
    // asks the job to stop at the next work-unit boundary and hand back a
    // `remainder` range (shard stealing) instead of discarding the tail.
    let splits = &Mutex::new(BTreeMap::<u64, CancelToken>::new());
    std::thread::scope(|scope| -> Result<(), ExecError> {
        loop {
            let Some(frame) = read_frame(&mut input)? else {
                return Ok(()); // coordinator closed the session: drain and exit
            };
            if frame.get("schema").and_then(Json::as_u64) != Some(WORKER_SCHEMA) {
                return Err(ExecError::Protocol("job frame with wrong schema".into()));
            }
            match frame.get("kind").and_then(Json::as_str) {
                Some("job") => {
                    let id = frame
                        .get("id")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ExecError::Protocol("job frame without an id".into()))?;
                    let job =
                        job_from_json(frame.get("job").ok_or_else(|| {
                            ExecError::Protocol("job frame without a job".into())
                        })?)
                        .map_err(|e| ExecError::Protocol(e.to_string()))?;
                    let (summaries, folded) = decode_summaries(&frame, &job, state)?;
                    {
                        let (count, cv) = in_flight;
                        let mut running = count.lock().expect("in-flight gate");
                        while *running >= capacity {
                            running = cv.wait(running).expect("in-flight gate");
                        }
                        *running += 1;
                    }
                    let cancel = CancelToken::new();
                    let split = CancelToken::new();
                    cancels
                        .lock()
                        .expect("cancel registry")
                        .insert(id, cancel.clone());
                    splits
                        .lock()
                        .expect("split registry")
                        .insert(id, split.clone());
                    scope.spawn(move || {
                        let frame = match run_job(&job, summaries, options, state, &cancel, &split)
                        {
                            Ok((payload, run_folded)) => {
                                let mut fields = vec![
                                    ("schema", Json::int(WORKER_SCHEMA)),
                                    ("kind", Json::str("result")),
                                    ("id", Json::int(id)),
                                ];
                                fields.extend(payload);
                                let mut folded = folded;
                                folded.extend(run_folded);
                                if !folded.is_empty() {
                                    fields.push((
                                        "folded",
                                        Json::Arr(
                                            folded
                                                .iter()
                                                .map(|fp| Json::str(fp.to_string()))
                                                .collect(),
                                        ),
                                    ));
                                }
                                Json::obj(fields)
                            }
                            Err(e) => error_frame(Some(id), &e.to_string()),
                        };
                        cancels.lock().expect("cancel registry").remove(&id);
                        splits.lock().expect("split registry").remove(&id);
                        // A write failure means the coordinator is gone;
                        // the read loop will see EOF and exit.
                        let _ = write_frame(&mut *writer.lock().expect("worker writer"), &frame);
                        let (count, cv) = in_flight;
                        *count.lock().expect("in-flight gate") -= 1;
                        cv.notify_one();
                    });
                }
                Some("ping") => {
                    // Heartbeat: answer immediately from the read loop,
                    // even while jobs are in flight — that immediacy is
                    // exactly what tells a coordinator this worker is
                    // busy rather than wedged.
                    let mut pong = vec![
                        ("schema", Json::int(WORKER_SCHEMA)),
                        ("kind", Json::str("pong")),
                    ];
                    if let Some(seq) = frame.get("seq").and_then(Json::as_u64) {
                        pong.push(("seq", Json::int(seq)));
                    }
                    write_frame(
                        &mut *writer.lock().expect("worker writer"),
                        &Json::obj(pong),
                    )?;
                }
                Some("cancel") => {
                    // Fire the named job's token if it is still running; a
                    // cancel racing a finished job is a clean no-op (its
                    // result frame is already on the wire).
                    let id = frame
                        .get("id")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ExecError::Protocol("cancel frame without an id".into()))?;
                    if let Some(token) = cancels.lock().expect("cancel registry").get(&id) {
                        token.cancel();
                    }
                }
                Some("split") => {
                    // Fire the named shard job's split token: the walk stops
                    // at the next work unit and the result frame carries the
                    // finished records plus a remainder range. Racing a
                    // finished job (or naming a non-shard job, which never
                    // polls its split token) is a clean no-op.
                    let id = frame
                        .get("id")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ExecError::Protocol("split frame without an id".into()))?;
                    if let Some(token) = splits.lock().expect("split registry").get(&id) {
                        token.cancel();
                    }
                }
                Some("options") => {
                    // An idempotent re-pin (a coordinator may push the
                    // full document even when the digest resolved).
                    let options = options_from_json(frame.get("options").ok_or_else(|| {
                        ExecError::Protocol("options frame without options".into())
                    })?)
                    .map_err(|e| ExecError::Protocol(e.to_string()))?;
                    state.remember_options(&options);
                }
                Some("shutdown") => return Ok(()),
                other => {
                    return Err(ExecError::Protocol(format!(
                        "unexpected frame kind {other:?}"
                    )))
                }
            }
        }
    })
}

/// Bind `addr` and serve coordinator connections: the body of
/// `vericlick worker --listen`. Every accepted connection is one
/// [`worker_serve`] session; sessions are served sequentially (one
/// coordinator at a time — parallelism lives *inside* a session, bounded
/// by `capacity`). With `once`, exit after the first session (used by
/// tests); otherwise loop until killed.
///
/// `log` receives one line per lifecycle event; the first is always
/// `listening on <addr>` with the *actual* bound address (so `:0` TCP
/// listeners report their chosen port).
pub fn serve_listener(
    addr: &WorkerAddr,
    capacity: usize,
    once: bool,
    log: &mut dyn FnMut(&str),
) -> Result<(), ExecError> {
    // One state for every session this listener serves: options stay
    // pinned by digest and summaries stay held across coordinator
    // reconnects — the warm half of the v4 dedup.
    let state = WorkerState::new();
    match addr {
        WorkerAddr::Tcp(spec) => {
            let listener = std::net::TcpListener::bind(spec)
                .map_err(|e| ExecError::Connect(format!("bind {spec}: {e}")))?;
            let local = listener
                .local_addr()
                .map_err(|e| ExecError::Connect(format!("bind {spec}: {e}")))?;
            log(&format!("listening on {local}"));
            loop {
                let (stream, peer) = listener
                    .accept()
                    .map_err(|e| ExecError::Connect(format!("accept: {e}")))?;
                log(&format!("session from {peer}"));
                let reader = stream
                    .try_clone()
                    .map_err(|e| ExecError::Connect(format!("clone stream: {e}")))?;
                match worker_serve_with(BufReader::new(reader), stream, capacity, &state) {
                    Ok(()) => log(&format!("session from {peer} done")),
                    Err(e) => log(&format!("session from {peer} failed: {e}")),
                }
                if once {
                    return Ok(());
                }
            }
        }
        WorkerAddr::Unix(path) => {
            // Reclaim only a *stale* socket file: if a live worker still
            // answers on it, refuse instead of silently stealing its
            // address (the old worker would keep running, unreachable).
            if path.exists() {
                if std::os::unix::net::UnixStream::connect(path).is_ok() {
                    return Err(ExecError::Connect(format!(
                        "{} is in use by a live worker",
                        path.display()
                    )));
                }
                let _ = std::fs::remove_file(path);
            }
            let listener = std::os::unix::net::UnixListener::bind(path)
                .map_err(|e| ExecError::Connect(format!("bind {}: {e}", path.display())))?;
            log(&format!("listening on unix:{}", path.display()));
            loop {
                let (stream, _) = listener
                    .accept()
                    .map_err(|e| ExecError::Connect(format!("accept: {e}")))?;
                log("session on unix socket");
                let reader = stream
                    .try_clone()
                    .map_err(|e| ExecError::Connect(format!("clone stream: {e}")))?;
                match worker_serve_with(BufReader::new(reader), stream, capacity, &state) {
                    Ok(()) => log("session done"),
                    Err(e) => log(&format!("session failed: {e}")),
                }
                if once {
                    return Ok(());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::dispatch::{hello_frame, options_frame};
    use super::super::testutil::router_jobs;
    use super::*;
    use crate::wire::{job_to_json, ExploreJob};

    fn frames_to_input(frames: &[Json]) -> std::io::Cursor<String> {
        let text: String = frames
            .iter()
            .map(|f| format!("{}\n", f.to_text()))
            .collect();
        std::io::Cursor::new(text)
    }

    fn job_frame(id: u64, job: &ExploreJob) -> Json {
        Json::obj([
            ("schema", Json::int(WORKER_SCHEMA)),
            ("kind", Json::str("job")),
            ("id", Json::int(id)),
            ("job", job_to_json(&JobSpec::Explore(job.clone()))),
        ])
    }

    fn parse_output(output: &[u8]) -> Vec<Json> {
        String::from_utf8(output.to_vec())
            .unwrap()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| Json::parse(l).unwrap())
            .collect()
    }

    #[test]
    fn worker_serves_a_session_over_buffers() {
        // Drive the exact protocol through in-memory buffers: hello
        // (digest-only, so the fresh worker asks for and receives the
        // full options), two explore jobs, EOF.
        let options = VerifierOptions::default();
        let jobs = router_jobs(&options.engine);
        let mut frames = vec![hello_frame(&options), options_frame(&options)];
        frames.push(job_frame(0, &jobs[0]));
        frames.push(job_frame(1, &jobs[1]));
        let mut output = Vec::new();
        worker_serve(frames_to_input(&frames), &mut output, 2).unwrap();
        let replies = parse_output(&output);
        assert_eq!(
            replies[0].get("kind").and_then(Json::as_str),
            Some("hello"),
            "first reply is the hello"
        );
        assert_eq!(
            replies[0].get("schema").and_then(Json::as_u64),
            Some(WORKER_SCHEMA)
        );
        assert_eq!(
            replies[0].get("need_options").and_then(Json::as_bool),
            Some(true),
            "a fresh worker cannot resolve the digest"
        );
        assert!(
            matches!(replies[0].get("held"), Some(Json::Arr(held)) if held.is_empty()),
            "a fresh worker holds no summaries"
        );
        let mut ids: Vec<u64> = replies[1..]
            .iter()
            .map(|r| {
                assert_eq!(r.get("kind").and_then(Json::as_str), Some("result"));
                assert!(
                    r.get("summary").is_some(),
                    "explore results carry a summary"
                );
                r.get("id").and_then(Json::as_u64).unwrap()
            })
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1], "every job answered exactly once");
    }

    #[test]
    fn digest_hello_resolves_against_a_preseeded_state() {
        let options = VerifierOptions::default();
        let state = WorkerState::new();
        state.remember_options(&options);
        let jobs = router_jobs(&options.engine);
        let frames = vec![hello_frame(&options), job_frame(0, &jobs[0])];
        let mut output = Vec::new();
        worker_serve_with(frames_to_input(&frames), &mut output, 1, &state).unwrap();
        let replies = parse_output(&output);
        assert!(
            replies[0].get("need_options").is_none(),
            "a known digest needs no options round trip"
        );
        let result = &replies[1];
        assert_eq!(result.get("kind").and_then(Json::as_str), Some("result"));
        assert!(
            matches!(result.get("folded"), Some(Json::Arr(folded)) if folded.len() == 1),
            "an explore result acks the summary it folded into the store"
        );
        assert_eq!(
            state.held().len(),
            1,
            "the explored summary is held for the next session's hello"
        );
    }

    #[test]
    fn second_session_hello_advertises_summaries_held_from_the_first() {
        let options = VerifierOptions::default();
        let state = WorkerState::new();
        let jobs = router_jobs(&options.engine);
        let frames = vec![
            hello_frame(&options),
            options_frame(&options),
            job_frame(0, &jobs[0]),
        ];
        let mut output = Vec::new();
        worker_serve_with(frames_to_input(&frames), &mut output, 1, &state).unwrap();
        // Session 2 on the same state: the digest resolves and the hello
        // advertises the summary explored in session 1.
        let frames = vec![hello_frame(&options)];
        let mut output = Vec::new();
        worker_serve_with(frames_to_input(&frames), &mut output, 1, &state).unwrap();
        let replies = parse_output(&output);
        assert!(replies[0].get("need_options").is_none());
        assert!(
            matches!(replies[0].get("held"), Some(Json::Arr(held)) if held.len() == 1),
            "the second hello advertises the held summary: {:?}",
            replies[0]
        );
    }

    #[test]
    fn ping_frames_are_answered_with_pongs() {
        let options = VerifierOptions::default();
        let frames = vec![
            hello_frame(&options),
            options_frame(&options),
            Json::obj([
                ("schema", Json::int(WORKER_SCHEMA)),
                ("kind", Json::str("ping")),
                ("seq", Json::int(3u64)),
            ]),
        ];
        let mut output = Vec::new();
        worker_serve(frames_to_input(&frames), &mut output, 1).unwrap();
        let replies = parse_output(&output);
        let pong = replies
            .iter()
            .find(|r| r.get("kind").and_then(Json::as_str) == Some("pong"))
            .expect("a ping is answered with a pong");
        assert_eq!(pong.get("seq").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn version_mismatch_hello_is_rejected_cleanly() {
        let bad_hello = Json::obj([
            ("schema", Json::int(99u64)),
            ("kind", Json::str("hello")),
            ("proto", Json::str(WORKER_PROTO)),
        ]);
        let mut output = Vec::new();
        let result = worker_serve(frames_to_input(&[bad_hello]), &mut output, 1);
        assert!(matches!(result, Err(ExecError::Protocol(_))), "{result:?}");
        let replies = parse_output(&output);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].get("kind").and_then(Json::as_str), Some("error"));
        let message = replies[0]
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or_default();
        assert!(
            message.contains(&format!("schema {WORKER_SCHEMA}")),
            "tells the peer what we speak: {message}"
        );
    }

    #[test]
    fn worker_rejects_malformed_frames_and_eof_is_clean() {
        let mut output = Vec::new();
        let result = worker_serve(
            std::io::Cursor::new("not json\n".to_string()),
            &mut output,
            1,
        );
        assert!(result.is_err());
        // EOF without a frame is a clean exit.
        let mut output = Vec::new();
        worker_serve(std::io::Cursor::new(String::new()), &mut output, 1).unwrap();
        assert!(output.is_empty());
    }

    #[test]
    fn fingerprint_mismatch_becomes_an_error_frame() {
        let options = VerifierOptions::default();
        let mut jobs = router_jobs(&options.engine);
        jobs[0].fingerprint = crate::fingerprint::fingerprint_bytes("not this element");
        let frames = vec![
            hello_frame(&options),
            options_frame(&options),
            job_frame(7, &jobs[0]),
        ];
        let mut output = Vec::new();
        worker_serve(frames_to_input(&frames), &mut output, 1).unwrap();
        let replies = parse_output(&output);
        assert_eq!(replies[1].get("kind").and_then(Json::as_str), Some("error"));
        assert_eq!(replies[1].get("id").and_then(Json::as_u64), Some(7));
    }
}

//! The transport layer of the worker protocol: line-delimited JSON frames
//! over any byte stream, behind one [`Transport`] trait.
//!
//! The framing is deliberately trivial — one JSON document per line — so
//! the *same* protocol runs over a spawned child's stdio, a TCP socket, or
//! a Unix-domain socket, and a conversation captured on one transport
//! replays on another. [`Connector`]s open transports: [`SpawnConnector`]
//! forks a worker subprocess, [`SocketConnector`] dials a
//! [`WorkerAddr`].

use super::ExecError;
use crate::json::Json;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

/// Read one frame (one non-blank line) from `reader`; `Ok(None)` at EOF.
pub fn read_frame(reader: &mut impl BufRead) -> Result<Option<Json>, ExecError> {
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| ExecError::Protocol(format!("reading frame: {e}")))?;
        if n == 0 {
            return Ok(None);
        }
        if line.trim().is_empty() {
            continue;
        }
        return Json::parse(line.trim())
            .map(Some)
            .map_err(|e| ExecError::Protocol(format!("bad frame: {e}")));
    }
}

/// Write one frame as one line and flush it.
pub fn write_frame(writer: &mut impl Write, frame: &Json) -> Result<(), ExecError> {
    writeln!(writer, "{}", frame.to_text())
        .and_then(|()| writer.flush())
        .map_err(|e| ExecError::Protocol(format!("writing frame: {e}")))
}

/// One side of a framed worker conversation.
pub trait Transport: Send {
    /// Send one frame.
    fn send(&mut self, frame: &Json) -> Result<(), ExecError>;

    /// Receive one frame; `Ok(None)` when the peer closed the stream.
    fn recv(&mut self) -> Result<Option<Json>, ExecError>;

    /// A human-readable peer description for logs and the registry.
    fn peer(&self) -> String;
}

/// A transport over any buffered-read / write pair (a socket's two halves,
/// in-memory buffers in tests).
pub struct LineTransport<R, W> {
    reader: R,
    writer: W,
    peer: String,
}

impl<R: BufRead + Send, W: Write + Send> LineTransport<R, W> {
    /// A transport over `reader`/`writer`, described as `peer`.
    pub fn new(reader: R, writer: W, peer: impl Into<String>) -> Self {
        LineTransport {
            reader,
            writer,
            peer: peer.into(),
        }
    }
}

impl<R: BufRead + Send, W: Write + Send> Transport for LineTransport<R, W> {
    fn send(&mut self, frame: &Json) -> Result<(), ExecError> {
        write_frame(&mut self.writer, frame)
    }

    fn recv(&mut self) -> Result<Option<Json>, ExecError> {
        read_frame(&mut self.reader)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// A transport over a spawned worker subprocess's stdio. Dropping it
/// closes the child's stdin (the worker drains and exits at EOF) and reaps
/// the process.
pub struct ChildTransport {
    child: Child,
    reader: BufReader<ChildStdout>,
    writer: Option<ChildStdin>,
    peer: String,
}

impl Transport for ChildTransport {
    fn send(&mut self, frame: &Json) -> Result<(), ExecError> {
        let writer = self
            .writer
            .as_mut()
            .ok_or_else(|| ExecError::Protocol("worker stdin already closed".into()))?;
        write_frame(writer, frame)
    }

    fn recv(&mut self) -> Result<Option<Json>, ExecError> {
        read_frame(&mut self.reader)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

impl Drop for ChildTransport {
    fn drop(&mut self) {
        // Closing stdin is the shutdown signal; then reap.
        drop(self.writer.take());
        let _ = self.child.wait();
    }
}

/// Where a socket worker listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerAddr {
    /// A TCP address (`host:port`).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl WorkerAddr {
    /// Parse an address: `unix:PATH` or anything containing a `/` is a
    /// Unix-socket path, everything else is `host:port` TCP.
    pub fn parse(text: &str) -> WorkerAddr {
        if let Some(path) = text.strip_prefix("unix:") {
            WorkerAddr::Unix(PathBuf::from(path))
        } else if text.contains('/') {
            WorkerAddr::Unix(PathBuf::from(text))
        } else {
            WorkerAddr::Tcp(text.to_string())
        }
    }
}

impl fmt::Display for WorkerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerAddr::Tcp(addr) => write!(f, "{addr}"),
            WorkerAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Opens a transport to one worker. Connectors are reusable: dispatch
/// phases reconnect (a stdio worker is respawned, a socket worker's
/// listener accepts a fresh connection).
pub trait Connector: Send + Sync {
    /// Open a fresh transport.
    fn connect(&self) -> Result<Box<dyn Transport>, ExecError>;

    /// A human-readable description for logs and errors.
    fn describe(&self) -> String;
}

/// Spawns `program args...` and talks to it over stdio.
pub struct SpawnConnector {
    /// The worker program (typically the `vericlick` binary).
    pub program: PathBuf,
    /// Its arguments (typically `["worker"]`).
    pub args: Vec<String>,
    /// The worker's stable identity in the registry. Each dispatch phase
    /// respawns the child, so the pid changes — the registry deduplicates
    /// by this label instead, keeping fleet-size stats honest.
    pub label: String,
}

impl Connector for SpawnConnector {
    fn connect(&self) -> Result<Box<dyn Transport>, ExecError> {
        let mut child = Command::new(&self.program)
            .args(&self.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| ExecError::Spawn(format!("{}: {e}", self.program.display())))?;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| ExecError::Spawn("worker stdin not piped".into()))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| ExecError::Spawn("worker stdout not piped".into()))?;
        Ok(Box::new(ChildTransport {
            child,
            reader: BufReader::new(stdout),
            writer: Some(stdin),
            peer: self.label.clone(),
        }))
    }

    fn describe(&self) -> String {
        self.label.clone()
    }
}

/// Dials a socket worker at a [`WorkerAddr`].
pub struct SocketConnector {
    /// The worker's listen address.
    pub addr: WorkerAddr,
}

impl Connector for SocketConnector {
    fn connect(&self) -> Result<Box<dyn Transport>, ExecError> {
        match &self.addr {
            WorkerAddr::Tcp(addr) => {
                let stream = TcpStream::connect(addr)
                    .map_err(|e| ExecError::Connect(format!("{addr}: {e}")))?;
                let reader = stream
                    .try_clone()
                    .map_err(|e| ExecError::Connect(format!("{addr}: {e}")))?;
                Ok(Box::new(LineTransport::new(
                    BufReader::new(reader),
                    stream,
                    addr.clone(),
                )))
            }
            WorkerAddr::Unix(path) => {
                let stream = UnixStream::connect(path)
                    .map_err(|e| ExecError::Connect(format!("{}: {e}", path.display())))?;
                let reader = stream
                    .try_clone()
                    .map_err(|e| ExecError::Connect(format!("{}: {e}", path.display())))?;
                Ok(Box::new(LineTransport::new(
                    BufReader::new(reader),
                    stream,
                    format!("unix:{}", path.display()),
                )))
            }
        }
    }

    fn describe(&self) -> String {
        self.addr.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_addr_parses_tcp_and_unix() {
        assert_eq!(
            WorkerAddr::parse("127.0.0.1:7777"),
            WorkerAddr::Tcp("127.0.0.1:7777".into())
        );
        assert_eq!(
            WorkerAddr::parse("/tmp/w.sock"),
            WorkerAddr::Unix(PathBuf::from("/tmp/w.sock"))
        );
        assert_eq!(
            WorkerAddr::parse("unix:relative.sock"),
            WorkerAddr::Unix(PathBuf::from("relative.sock"))
        );
        assert_eq!(WorkerAddr::parse("unix:/x/y").to_string(), "unix:/x/y");
    }

    #[test]
    fn line_transport_round_trips_frames() {
        let mut out = Vec::new();
        {
            let mut t = LineTransport::new(std::io::Cursor::new(""), &mut out, "test");
            t.send(&Json::obj([("a", Json::int(1u64))])).unwrap();
            t.send(&Json::obj([("b", Json::str("two"))])).unwrap();
        }
        let mut t = LineTransport::new(std::io::Cursor::new(out), Vec::new(), "test");
        assert_eq!(
            t.recv().unwrap().unwrap().get("a").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            t.recv()
                .unwrap()
                .unwrap()
                .get("b")
                .and_then(Json::as_str)
                .map(str::to_string),
            Some("two".to_string())
        );
        assert!(t.recv().unwrap().is_none(), "EOF is a clean None");
    }
}

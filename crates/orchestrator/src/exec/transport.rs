//! The transport layer of the worker protocol: line-delimited JSON frames
//! over any byte stream, behind one [`Transport`] trait.
//!
//! The framing is deliberately trivial — one JSON document per line — so
//! the *same* protocol runs over a spawned child's stdio, a TCP socket, or
//! a Unix-domain socket, and a conversation captured on one transport
//! replays on another. [`Connector`]s open transports: [`SpawnConnector`]
//! forks a worker subprocess, [`SocketConnector`] dials a
//! [`WorkerAddr`].

use super::ExecError;
use crate::json::Json;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::Duration;

/// Read one frame (one non-blank line) from `reader`; `Ok(None)` at EOF.
pub fn read_frame(reader: &mut impl BufRead) -> Result<Option<Json>, ExecError> {
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| ExecError::Protocol(format!("reading frame: {e}")))?;
        if n == 0 {
            return Ok(None);
        }
        if line.trim().is_empty() {
            continue;
        }
        return Json::parse(line.trim())
            .map(Some)
            .map_err(|e| ExecError::Protocol(format!("bad frame: {e}")));
    }
}

/// Write one frame as one line and flush it.
pub fn write_frame(writer: &mut impl Write, frame: &Json) -> Result<(), ExecError> {
    writeln!(writer, "{}", frame.to_text())
        .and_then(|()| writer.flush())
        .map_err(|e| ExecError::Protocol(format!("writing frame: {e}")))
}

/// One side of a framed worker conversation.
pub trait Transport: Send {
    /// Send one frame.
    fn send(&mut self, frame: &Json) -> Result<(), ExecError>;

    /// Receive one frame; `Ok(None)` when the peer closed the stream.
    fn recv(&mut self) -> Result<Option<Json>, ExecError>;

    /// Arm (or disarm, with `None`) a read deadline. Once armed, `recv`
    /// may return [`ExecError::Timeout`] when no complete frame arrives in
    /// time; any partially received frame stays buffered for the next
    /// call, so timing out is always safe mid-stream. Returns `false`
    /// when this transport cannot time out reads (stdio pipes): such
    /// transports keep blocking indefinitely and never return `Timeout`.
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> bool {
        let _ = timeout;
        false
    }

    /// A human-readable peer description for logs and the registry.
    fn peer(&self) -> String;
}

/// A transport over any buffered-read / write pair (a socket's two halves,
/// in-memory buffers in tests).
pub struct LineTransport<R, W> {
    reader: R,
    writer: W,
    peer: String,
}

impl<R: BufRead + Send, W: Write + Send> LineTransport<R, W> {
    /// A transport over `reader`/`writer`, described as `peer`.
    pub fn new(reader: R, writer: W, peer: impl Into<String>) -> Self {
        LineTransport {
            reader,
            writer,
            peer: peer.into(),
        }
    }
}

impl<R: BufRead + Send, W: Write + Send> Transport for LineTransport<R, W> {
    fn send(&mut self, frame: &Json) -> Result<(), ExecError> {
        write_frame(&mut self.writer, frame)
    }

    fn recv(&mut self) -> Result<Option<Json>, ExecError> {
        read_frame(&mut self.reader)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// Either flavour of connected stream socket, behind one Read/Write
/// implementation so [`SocketTransport`] handles TCP and Unix-domain
/// workers identically.
enum SocketStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl SocketStream {
    fn try_clone(&self) -> std::io::Result<SocketStream> {
        match self {
            SocketStream::Tcp(s) => s.try_clone().map(SocketStream::Tcp),
            SocketStream::Unix(s) => s.try_clone().map(SocketStream::Unix),
        }
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.set_read_timeout(timeout),
            SocketStream::Unix(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for SocketStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.read(buf),
            SocketStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for SocketStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.write(buf),
            SocketStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.flush(),
            SocketStream::Unix(s) => s.flush(),
        }
    }
}

/// A timeout-capable transport over a connected socket. Unlike a
/// `BufReader::read_line` loop — which discards partial data when a read
/// errors — this keeps its own accumulation buffer, so a `recv` that
/// times out mid-frame resumes cleanly on the next call. That property is
/// what makes heartbeat-driven read deadlines safe: the coordinator can
/// poll, ping, and keep reading without ever corrupting the framing.
pub struct SocketTransport {
    read: SocketStream,
    write: SocketStream,
    /// Bytes received but not yet consumed as complete lines.
    buf: Vec<u8>,
    peer: String,
}

impl SocketTransport {
    fn new(stream: SocketStream, peer: String) -> Result<Self, ExecError> {
        let read = stream
            .try_clone()
            .map_err(|e| ExecError::Connect(format!("{peer}: {e}")))?;
        Ok(SocketTransport {
            read,
            write: stream,
            buf: Vec::new(),
            peer,
        })
    }
}

impl Transport for SocketTransport {
    fn send(&mut self, frame: &Json) -> Result<(), ExecError> {
        write_frame(&mut self.write, frame)
    }

    fn recv(&mut self) -> Result<Option<Json>, ExecError> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let text = std::str::from_utf8(&line)
                    .map_err(|e| ExecError::Protocol(format!("bad frame: {e}")))?
                    .trim();
                if text.is_empty() {
                    continue;
                }
                return Json::parse(text)
                    .map(Some)
                    .map_err(|e| ExecError::Protocol(format!("bad frame: {e}")));
            }
            let mut chunk = [0u8; 4096];
            match self.read.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.iter().any(|b| !b.is_ascii_whitespace()) {
                        return Err(ExecError::Protocol("connection closed mid-frame".into()));
                    }
                    return Ok(None);
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(ExecError::Timeout)
                }
                Err(e) => return Err(ExecError::Protocol(format!("reading frame: {e}"))),
            }
        }
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> bool {
        self.read.set_read_timeout(timeout).is_ok()
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// A transport over a spawned worker subprocess's stdio. Dropping it
/// closes the child's stdin (the worker drains and exits at EOF) and reaps
/// the process.
pub struct ChildTransport {
    child: Child,
    reader: BufReader<ChildStdout>,
    writer: Option<ChildStdin>,
    peer: String,
}

impl Transport for ChildTransport {
    fn send(&mut self, frame: &Json) -> Result<(), ExecError> {
        let writer = self
            .writer
            .as_mut()
            .ok_or_else(|| ExecError::Protocol("worker stdin already closed".into()))?;
        write_frame(writer, frame)
    }

    fn recv(&mut self) -> Result<Option<Json>, ExecError> {
        read_frame(&mut self.reader)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

impl Drop for ChildTransport {
    fn drop(&mut self) {
        // Closing stdin is the shutdown signal; then reap.
        drop(self.writer.take());
        let _ = self.child.wait();
    }
}

/// Where a socket worker listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerAddr {
    /// A TCP address (`host:port`).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl WorkerAddr {
    /// Parse an address: `unix:PATH` or anything containing a `/` is a
    /// Unix-socket path, everything else is `host:port` TCP.
    pub fn parse(text: &str) -> WorkerAddr {
        if let Some(path) = text.strip_prefix("unix:") {
            WorkerAddr::Unix(PathBuf::from(path))
        } else if text.contains('/') {
            WorkerAddr::Unix(PathBuf::from(text))
        } else {
            WorkerAddr::Tcp(text.to_string())
        }
    }
}

impl fmt::Display for WorkerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerAddr::Tcp(addr) => write!(f, "{addr}"),
            WorkerAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Opens a transport to one worker. Connectors are reusable: dispatch
/// phases reconnect (a stdio worker is respawned, a socket worker's
/// listener accepts a fresh connection).
pub trait Connector: Send + Sync {
    /// Open a fresh transport.
    fn connect(&self) -> Result<Box<dyn Transport>, ExecError>;

    /// A human-readable description for logs and errors.
    fn describe(&self) -> String;
}

/// Spawns `program args...` and talks to it over stdio.
pub struct SpawnConnector {
    /// The worker program (typically the `vericlick` binary).
    pub program: PathBuf,
    /// Its arguments (typically `["worker"]`).
    pub args: Vec<String>,
    /// The worker's stable identity in the registry. Each dispatch phase
    /// respawns the child, so the pid changes — the registry deduplicates
    /// by this label instead, keeping fleet-size stats honest.
    pub label: String,
}

impl Connector for SpawnConnector {
    fn connect(&self) -> Result<Box<dyn Transport>, ExecError> {
        let mut child = Command::new(&self.program)
            .args(&self.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| ExecError::Spawn(format!("{}: {e}", self.program.display())))?;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| ExecError::Spawn("worker stdin not piped".into()))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| ExecError::Spawn("worker stdout not piped".into()))?;
        Ok(Box::new(ChildTransport {
            child,
            reader: BufReader::new(stdout),
            writer: Some(stdin),
            peer: self.label.clone(),
        }))
    }

    fn describe(&self) -> String {
        self.label.clone()
    }
}

/// Dials a socket worker at a [`WorkerAddr`].
pub struct SocketConnector {
    /// The worker's listen address.
    pub addr: WorkerAddr,
}

impl Connector for SocketConnector {
    fn connect(&self) -> Result<Box<dyn Transport>, ExecError> {
        match &self.addr {
            WorkerAddr::Tcp(addr) => {
                let stream = TcpStream::connect(addr)
                    .map_err(|e| ExecError::Connect(format!("{addr}: {e}")))?;
                Ok(Box::new(SocketTransport::new(
                    SocketStream::Tcp(stream),
                    addr.clone(),
                )?))
            }
            WorkerAddr::Unix(path) => {
                let stream = UnixStream::connect(path)
                    .map_err(|e| ExecError::Connect(format!("{}: {e}", path.display())))?;
                Ok(Box::new(SocketTransport::new(
                    SocketStream::Unix(stream),
                    format!("unix:{}", path.display()),
                )?))
            }
        }
    }

    fn describe(&self) -> String {
        self.addr.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_addr_parses_tcp_and_unix() {
        assert_eq!(
            WorkerAddr::parse("127.0.0.1:7777"),
            WorkerAddr::Tcp("127.0.0.1:7777".into())
        );
        assert_eq!(
            WorkerAddr::parse("/tmp/w.sock"),
            WorkerAddr::Unix(PathBuf::from("/tmp/w.sock"))
        );
        assert_eq!(
            WorkerAddr::parse("unix:relative.sock"),
            WorkerAddr::Unix(PathBuf::from("relative.sock"))
        );
        assert_eq!(WorkerAddr::parse("unix:/x/y").to_string(), "unix:/x/y");
    }

    #[test]
    fn line_transport_round_trips_frames() {
        let mut out = Vec::new();
        {
            let mut t = LineTransport::new(std::io::Cursor::new(""), &mut out, "test");
            t.send(&Json::obj([("a", Json::int(1u64))])).unwrap();
            t.send(&Json::obj([("b", Json::str("two"))])).unwrap();
        }
        let mut t = LineTransport::new(std::io::Cursor::new(out), Vec::new(), "test");
        assert_eq!(
            t.recv().unwrap().unwrap().get("a").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            t.recv()
                .unwrap()
                .unwrap()
                .get("b")
                .and_then(Json::as_str)
                .map(str::to_string),
            Some("two".to_string())
        );
        assert!(t.recv().unwrap().is_none(), "EOF is a clean None");
    }

    #[test]
    fn socket_transport_times_out_without_losing_a_partial_frame() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Half a frame, a pause long enough for the reader's deadline
            // to fire, then the rest plus a second complete frame.
            stream.write_all(b"{\"a\":").unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(200));
            stream.write_all(b"1}\n{\"b\":2}\n").unwrap();
            stream.flush().unwrap();
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut t = SocketTransport::new(SocketStream::Tcp(stream), addr.to_string()).unwrap();
        assert!(t.set_read_timeout(Some(Duration::from_millis(50))));
        assert!(
            matches!(t.recv(), Err(ExecError::Timeout)),
            "the deadline fires before the frame completes"
        );
        assert!(t.set_read_timeout(Some(Duration::from_millis(2000))));
        let first = t.recv().unwrap().unwrap();
        assert_eq!(
            first.get("a").and_then(Json::as_u64),
            Some(1),
            "the partial frame was retained across the timeout"
        );
        let second = t.recv().unwrap().unwrap();
        assert_eq!(second.get("b").and_then(Json::as_u64), Some(2));
        peer.join().unwrap();
    }
}

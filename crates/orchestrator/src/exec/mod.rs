//! Plan execution backends, layered for distribution:
//!
//! * [`transport`] — the line-JSON framing every worker conversation uses,
//!   behind one [`transport::Transport`] trait with **stdio** (spawned
//!   subprocess), **TCP**, and **Unix-socket** implementations. A
//!   [`transport::Connector`] knows how to open one.
//! * [`registry`] — the [`WorkerRegistry`]: which workers joined (hello
//!   with protocol + schema version and capacity), which died, how much
//!   work each did, and the aggregate [`DispatchStats`] reported in
//!   `MatrixReport`.
//! * [`dispatch`] — **pull-based dispatch**: one shared job queue that
//!   connected workers drain at their own pace (each keeps up to its
//!   advertised capacity in flight). A worker that dies mid-plan has its
//!   in-flight jobs requeued and the survivors drain them — no job is
//!   pre-assigned to a worker, which is what makes uneven job costs (the
//!   prune-heavy Step-2 walks especially) load-balance.
//! * [`worker`] — the worker side of the protocol: handshake, concurrent
//!   job execution, [`worker_serve`] over any read/write pair and
//!   [`serve_listener`] for `vericlick worker --listen`.
//! * [`fleet`] — [`WorkerFleet`], the [`Executor`] over all of the above:
//!   subprocess workers (`--workers N`) or socket workers
//!   (`--workers host:port,...`), executing **both** Step-1 explorations
//!   and Step-2 compositions remotely.
//!
//! Results are folded back **by job index**, so reports are byte-identical
//! to an in-process run no matter which worker finished what, in which
//! order, or how often a job was requeued.
//!
//! Workers re-instantiate each element from the config factory and verify
//! the job's content fingerprint before exploring, so a worker built from
//! different element code fails loudly instead of poisoning the cache.

pub mod dispatch;
pub mod fleet;
pub mod registry;
pub mod transport;
pub mod worker;

pub use dispatch::HeartbeatConfig;
pub use fleet::WorkerFleet;
pub use registry::{DispatchStats, WorkerRegistry};
pub use transport::{Connector, SocketConnector, SpawnConnector, Transport, WorkerAddr};
pub use worker::{serve_listener, worker_serve, WorkerState, WORKER_PROTO, WORKER_SCHEMA};

use crate::executor::{Pool, ThreadBudget};
use crate::fingerprint::{element_fingerprint, Fingerprint};
use crate::wire::{ComposeJob, ExploreJob};
use dataplane_pipeline::config::instantiate;
use dataplane_symbex::{explore, EngineConfig};
use dataplane_verifier::{ElementSummary, Report, VerifierOptions};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A plan-execution failure.
#[derive(Clone, Debug)]
pub enum ExecError {
    /// A worker process could not be spawned or waited on.
    Spawn(String),
    /// A socket worker could not be reached.
    Connect(String),
    /// A protocol frame did not parse or had the wrong shape.
    Protocol(String),
    /// A job failed inside a worker (unknown element type, fingerprint
    /// mismatch, ...). Fatal: it means the worker build disagrees with the
    /// plan, not that the worker is unhealthy.
    Job(String),
    /// Every worker died (or never completed its handshake) with jobs
    /// still queued.
    NoWorkers(String),
    /// A read deadline elapsed with no complete frame: the peer may be
    /// wedged (stopped, silently partitioned) rather than dead. Dispatch
    /// turns repeated timeouts into heartbeat pings, and an unanswered
    /// deadline into a suspect-marking requeue.
    Timeout,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Spawn(m) => write!(f, "executor: cannot run worker: {m}"),
            ExecError::Connect(m) => write!(f, "executor: cannot reach worker: {m}"),
            ExecError::Protocol(m) => write!(f, "executor: protocol error: {m}"),
            ExecError::Job(m) => write!(f, "executor: job failed: {m}"),
            ExecError::NoWorkers(m) => write!(f, "executor: out of workers: {m}"),
            ExecError::Timeout => {
                write!(
                    f,
                    "executor: worker read timed out (no frame within the deadline)"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// How a plan's jobs are computed.
///
/// `explore_jobs` must return one slot per input job, **in input order**
/// (`None` where the exploration exceeded its engine budget — the
/// composition then explores inline and reports the failure exactly as a
/// sequential run would). Implementations may compute the slots in any
/// order or place; the order of the returned vector is the determinism
/// contract. The same contract applies to `compose_jobs` where supported.
pub trait Executor: Send + Sync {
    /// A human-readable name for logs and reports.
    fn describe(&self) -> String;

    /// Compute the summaries of `jobs` under `options.engine`.
    fn explore_jobs(
        &self,
        jobs: &[ExploreJob],
        options: &VerifierOptions,
    ) -> Result<Vec<Option<ElementSummary>>, ExecError>;

    /// Decide Step-2 compositions remotely, one report per job in input
    /// order. `summaries` resolves a fingerprint to the summary that ships
    /// with the job (`None` for behaviours whose exploration exceeded its
    /// budget — the worker re-attempts inline).
    ///
    /// Returns `None` when this executor has no remote composition path
    /// (the service then composes in-process on its shared scheduler).
    fn compose_jobs(
        &self,
        jobs: &[ComposeJob],
        options: &VerifierOptions,
        summaries: &(dyn Fn(Fingerprint) -> Option<Arc<ElementSummary>> + Sync),
    ) -> Option<Result<Vec<Report>, ExecError>> {
        let _ = (jobs, options, summaries);
        None
    }

    /// Decide Step-2 compose *shards* remotely, one
    /// [`dataplane_verifier::ComposeShardResult`] per job in input order
    /// (the fold replays the sequential enumeration, so input order is the
    /// determinism contract here too). A shard whose sibling reported a
    /// violation first may come back partial or empty (`cancelled`) — the
    /// fold computes the remainder inline.
    ///
    /// Returns `None` when this executor has no remote shard path (the
    /// service then composes the scenario in-process).
    fn compose_shard_jobs(
        &self,
        jobs: &[crate::wire::ComposeShardJob],
        options: &VerifierOptions,
        summaries: &(dyn Fn(Fingerprint) -> Option<Arc<ElementSummary>> + Sync),
    ) -> Option<Result<Vec<dataplane_verifier::ComposeShardResult>, ExecError>> {
        let _ = (jobs, options, summaries);
        None
    }

    /// Run conformance fuzz shards remotely, one shard report per job in
    /// input order (the fold key is the job's `shard_index`; input order is
    /// the determinism contract, as for the other job kinds).
    ///
    /// Returns `None` when this executor has no remote fuzz path (the
    /// conformance runner then fuzzes in-process on the shared pool).
    fn fuzz_jobs(
        &self,
        jobs: &[crate::wire::FuzzJob],
        options: &VerifierOptions,
    ) -> Option<Result<Vec<crate::conformance::FuzzShardReport>, ExecError>> {
        let _ = (jobs, options);
        None
    }

    /// Registry/queue statistics of the last dispatch, for executors that
    /// track them.
    fn dispatch_stats(&self) -> Option<DispatchStats> {
        None
    }

    /// The live fleet capacity `--compose-shard auto` plans against: the
    /// summed advertised capacity of workers alive right now, re-read per
    /// request (before any handshake, a connection-count estimate).
    /// `None` for executors with no notion of a fleet.
    fn live_capacity(&self) -> Option<usize> {
        None
    }
}

/// The "0 means one per available core" defaulting rule shared by every
/// parallelism knob in this module family.
pub(crate) fn default_parallelism(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Run one explore job: factory-instantiate, fingerprint-check, explore.
pub(crate) fn run_explore_job(
    job: &ExploreJob,
    engine: &EngineConfig,
) -> Result<Option<ElementSummary>, ExecError> {
    let element = instantiate(&job.type_name, &job.config_args).map_err(|e| {
        ExecError::Job(format!(
            "{}({}) does not instantiate: {e}",
            job.type_name, job.config_args
        ))
    })?;
    let actual = element_fingerprint(element.as_ref(), engine);
    if actual != job.fingerprint {
        return Err(ExecError::Job(format!(
            "{}({}) fingerprint mismatch: plan says {}, this build computes {} \
             (worker built from different element code?)",
            job.type_name, job.config_args, job.fingerprint, actual
        )));
    }
    let start = Instant::now();
    match explore(&element.model(), engine) {
        Ok(exploration) => Ok(Some(ElementSummary {
            type_name: element.type_name().to_string(),
            config_key: element.config_key(),
            exploration,
            explore_time: start.elapsed(),
        })),
        // Budget exceeded: publish nothing; composition handles it inline.
        Err(_) => Ok(None),
    }
}

/// The in-process executor: explore jobs fan out over a work-stealing pool
/// in this process (the pre-plan behaviour of the orchestrator).
/// Compositions stay with the service's shared scheduler.
#[derive(Clone, Debug)]
pub struct InProcessExecutor {
    threads: usize,
}

impl InProcessExecutor {
    /// An executor over `threads` pool workers (0 = one per available
    /// core).
    pub fn new(threads: usize) -> Self {
        InProcessExecutor {
            threads: default_parallelism(threads),
        }
    }
}

impl Executor for InProcessExecutor {
    fn describe(&self) -> String {
        format!("in-process pool ({} threads)", self.threads)
    }

    fn explore_jobs(
        &self,
        jobs: &[ExploreJob],
        options: &VerifierOptions,
    ) -> Result<Vec<Option<ElementSummary>>, ExecError> {
        let engine = &options.engine;
        type JobSlot = Mutex<Option<Result<Option<ElementSummary>, ExecError>>>;
        let slots: Vec<JobSlot> = jobs.iter().map(|_| Mutex::new(None)).collect();
        Pool::run(self.threads, ThreadBudget::new(self.threads), |pool| {
            for (job, slot) in jobs.iter().zip(&slots) {
                pool.spawn(Box::new(move |_| {
                    *slot.lock().expect("job slot") = Some(run_explore_job(job, engine));
                }));
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("job slot")
                    .expect("every job slot filled")
            })
            .collect()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use dataplane_pipeline::presets::ip_router_pipeline;

    /// The distinct explore jobs of the preset IP router, as a plan would
    /// emit them.
    pub fn router_jobs(engine: &EngineConfig) -> Vec<ExploreJob> {
        let pipeline = ip_router_pipeline();
        let mut seen = std::collections::HashSet::new();
        let mut jobs = Vec::new();
        for (_, node) in pipeline.iter() {
            let element = node.element.as_ref();
            let fp = element_fingerprint(element, engine);
            if seen.insert(fp) {
                jobs.push(ExploreJob {
                    fingerprint: fp,
                    type_name: element.type_name().to_string(),
                    config_args: element.config_args().expect("preset elements serialise"),
                });
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::router_jobs;
    use super::*;

    #[test]
    fn in_process_executor_computes_every_job_in_order() {
        let options = VerifierOptions::default();
        let jobs = router_jobs(&options.engine);
        let summaries = InProcessExecutor::new(4)
            .explore_jobs(&jobs, &options)
            .unwrap();
        assert_eq!(summaries.len(), jobs.len());
        for (job, summary) in jobs.iter().zip(&summaries) {
            let summary = summary.as_ref().expect("preset exploration succeeds");
            assert_eq!(summary.type_name, job.type_name);
        }
    }

    #[test]
    fn fingerprint_mismatch_fails_loudly() {
        let options = VerifierOptions::default();
        let mut jobs = router_jobs(&options.engine);
        jobs[0].fingerprint = crate::fingerprint::fingerprint_bytes("not this element");
        let result = InProcessExecutor::new(1).explore_jobs(&jobs, &options);
        assert!(matches!(result, Err(ExecError::Job(_))), "{result:?}");
    }
}

//! Differential conformance: concrete evidence for symbolic verdicts.
//!
//! The verifier's verdicts are claims about *all* packet sequences,
//! produced by composing per-element symbolic summaries. This module
//! family tests those claims against the concrete model interpreter, in
//! two directions:
//!
//! * [`replay`] — every `Violated` verdict's counterexample packet is
//!   pushed through a fresh [`dataplane_pipeline::ModelRuntime`]; the
//!   concrete run must violate the property exactly as predicted. A
//!   mismatch is a soundness bug and fails loudly with both traces.
//! * [`fuzz`] — every `Proven` verdict is bombarded with large seeded
//!   batches of clean, adversarial, and solver-model-seeded packets; a
//!   single violating packet is a **contradiction** of the proof. The
//!   stream is cut into [`wire::FuzzJob`](crate::wire::FuzzJob) shards
//!   that run on the in-process work-stealing pool or ride the worker
//!   fleet's pull dispatch — fixed seed ⇒ byte-identical
//!   [`ConformanceReport`] either way.
//! * [`mod@shrink`] — greedy byte/field minimisation of contradicting packets
//!   before they are reported.
//! * [`report`] — the schema-versioned report types and codecs, split
//!   into a deterministic document (the byte-identity contract) and an
//!   operational one (timings, threads).
//!
//! Surfaced end to end as
//! [`VerifyRequest::Conformance`](crate::service::VerifyRequest) through
//! [`VerifyService`](crate::service::VerifyService), and as
//! `vericlick conform` / `vericlick fuzz` on the command line.

pub mod fuzz;
pub mod replay;
pub mod report;
pub mod shrink;

pub use fuzz::{fold_fuzz_shards, plan_fuzz_shards, run_fuzz_jobs, run_fuzz_shard, SHARD_PACKETS};
pub use replay::{replay_matrix_json, replay_report};
pub use report::{
    shard_report_from_json, shard_report_to_json, ConformanceReport, Contradiction,
    FuzzScenarioReport, FuzzShardReport, ReplayOutcome, CONFORMANCE_SCHEMA,
    MAX_RECORDED_CONTRADICTIONS,
};
pub use shrink::{shrink, SHRINK_BUDGET};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ScenarioSpec;
    use dataplane_verifier::{Property, VerifierOptions};

    fn spec(name: &str) -> ScenarioSpec {
        let make = crate::matrix::preset_pipelines()
            .into_iter()
            .find(|(preset, _)| *preset == name)
            .map(|(_, make)| make)
            .unwrap();
        ScenarioSpec {
            name: name.to_string(),
            config: dataplane_pipeline::write_config(&make()).unwrap(),
            property: Property::CrashFreedom,
        }
    }

    #[test]
    fn shard_planning_covers_the_budget_exactly() {
        let specs = vec![spec("ip_router"), spec("middlebox"), spec("firewall")];
        let jobs = plan_fuzz_shards(&specs, 7, 10_000);
        let total: u64 = jobs.iter().map(|j| j.packets).sum();
        assert_eq!(total, 10_000);
        // Every scenario gets exactly one model-seed shard: shard 0.
        for (index, _) in specs.iter().enumerate() {
            let shards: Vec<_> = jobs
                .iter()
                .filter(|j| j.scenario_index == index as u32)
                .collect();
            assert!(shards.iter().all(|j| j.model_seeds == (j.shard_index == 0)));
            assert!(!shards.is_empty());
            // Contiguous shard indices, SHARD_PACKETS-sized except the last.
            for (i, shard) in shards.iter().enumerate() {
                assert_eq!(shard.shard_index, i as u32);
                if i + 1 < shards.len() {
                    assert_eq!(shard.packets, SHARD_PACKETS);
                }
            }
        }
    }

    #[test]
    fn a_zero_packet_plan_still_pushes_model_seeds() {
        let jobs = plan_fuzz_shards(&[spec("ip_router")], 1, 0);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].packets, 0);
        assert!(jobs[0].model_seeds);
    }

    #[test]
    fn shard_reports_round_trip_through_json() {
        let options = VerifierOptions::default();
        let jobs = plan_fuzz_shards(&[spec("ip_router")], 42, 64);
        let report = run_fuzz_shard(&jobs[0], &options).unwrap();
        assert!(report.packets >= 64, "model seeds ride on top");
        assert!(report.model_seeds > 0);
        let decoded = shard_report_from_json(&shard_report_to_json(&report)).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn fuzz_shards_are_deterministic_under_a_fixed_seed() {
        let options = VerifierOptions::default();
        let jobs = plan_fuzz_shards(&[spec("middlebox")], 99, 200);
        let a = run_fuzz_jobs(&jobs, &options, 2).unwrap();
        let b = run_fuzz_jobs(&jobs, &options, 4).unwrap();
        assert_eq!(a, b, "thread count must not leak into shard reports");
        let folded = fold_fuzz_shards(a);
        assert_eq!(folded.len(), 1);
        assert_eq!(folded[0].packets, 200 + folded[0].model_seeds);
    }
}

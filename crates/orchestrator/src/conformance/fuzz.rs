//! Seeded differential fuzzing of `Proven` scenarios.
//!
//! Every proven verdict is a universal claim: *no* packet sequence
//! violates the property. The fuzzer attacks that claim concretely —
//! streaming large seeded batches of random, adversarial, and
//! solver-model-seeded packets through the scenario's
//! [`dataplane_pipeline::ModelRuntime`] and checking each run with the
//! same violation predicate the verifier's counterexample confirmation
//! uses. A packet that violates a proven property is a **contradiction**
//! (a soundness bug) and is greedily shrunk before reporting.
//!
//! The unit of work is the [`FuzzJob`] **shard**: a fixed slice of one
//! scenario's packet stream with its own derived seeds and its own fresh
//! model runtime. Element state accumulates within a shard and never
//! across shards, so a shard's report is a pure function of the job and
//! the pinned options — which is what lets shards run on the in-process
//! pool or ride the worker fleet's pull dispatch and fold back
//! byte-identically by shard index.

use super::replay::{disposition_element, disposition_kind};
use super::report::{
    Contradiction, FuzzScenarioReport, FuzzShardReport, MAX_RECORDED_CONTRADICTIONS,
};
use super::shrink::shrink;
use crate::exec::ExecError;
use crate::executor::{Pool, ThreadBudget};
use crate::wire::{FuzzJob, ScenarioSpec};
use dataplane_net::{Ipv4Header, Packet, WorkloadGen};
use dataplane_pipeline::{model_run_fresh, Disposition, ModelRuntime, Pipeline};
use dataplane_symbex::{explore, Solver};
use dataplane_verifier::{run_violates_property, Property, VerifierOptions};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Packets per fuzz shard: small enough that a shard is a sub-second unit
/// the pull dispatcher can load-balance, large enough that per-shard
/// setup (pipeline parse, model-state build) stays noise.
pub const SHARD_PACKETS: u64 = 4096;

/// One round of splitmix64 — the seed-derivation mixer. Statistically
/// solid for stream splitting and dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of one generator stream within one shard: the base seed mixed
/// with the scenario index, the shard index, and a stream discriminator
/// (clean vs adversarial), each through a full mixing round so related
/// shards share no stream prefix.
fn stream_seed(base: u64, scenario_index: u32, shard_index: u32, stream: u64) -> u64 {
    splitmix64(
        splitmix64(splitmix64(base ^ u64::from(scenario_index)) ^ u64::from(shard_index)) ^ stream,
    )
}

/// Split a conformance run's packet budget into [`FuzzJob`] shards:
/// `total_packets` divided evenly across the scenarios (earlier scenarios
/// take the remainder), each scenario's share cut into shards of at most
/// [`SHARD_PACKETS`]. Shard 0 of every scenario additionally pushes the
/// solver-model-seeded packets. The returned order (scenario-major,
/// shard-minor) is the deterministic fold order.
pub fn plan_fuzz_shards(scenarios: &[ScenarioSpec], seed: u64, total_packets: u64) -> Vec<FuzzJob> {
    let count = scenarios.len() as u64;
    if count == 0 {
        return Vec::new();
    }
    let mut jobs = Vec::new();
    for (index, spec) in scenarios.iter().enumerate() {
        let scenario_index = index as u32;
        let share = total_packets / count + u64::from((index as u64) < total_packets % count);
        let mut remaining = share;
        let mut shard_index = 0u32;
        loop {
            let packets = remaining.min(SHARD_PACKETS);
            jobs.push(FuzzJob {
                scenario: spec.clone(),
                scenario_index,
                shard_index,
                seed,
                packets,
                model_seeds: shard_index == 0,
            });
            remaining -= packets;
            shard_index += 1;
            if remaining == 0 {
                break;
            }
        }
    }
    jobs
}

/// Whether the property's violation predicate applies to this *input*
/// packet. Crash freedom and instruction bounds are universal;
/// reachability only claims anything about packets that actually carry
/// the target address at the property's offset.
fn predicate_applies(property: &Property, bytes: &[u8]) -> bool {
    match property {
        Property::CrashFreedom | Property::BoundedInstructions { .. } => true,
        // A temporal spec quantifies over every packet's trace; header
        // atoms are resolved per packet inside the trace evaluator.
        Property::Temporal(_) => true,
        Property::Reachability {
            dst, dst_offset, ..
        } => {
            let off = *dst_offset as usize;
            bytes.len() >= off + 4 && bytes[off..off + 4] == dst.octets()
        }
    }
}

/// Aim a packet at a reachability property's target: write the
/// destination address at the property's offset and, when `fix_checksum`
/// is set, rewrite the IPv4 header checksum so well-formed packets stay
/// well-formed (adversarial streams keep their broken checksums — drops
/// at the header checker are what `may_drop` is for). Mirrors the
/// verifier's own counterexample materialisation byte for byte.
fn aim_at_target(property: &Property, bytes: &mut [u8], fix_checksum: bool) {
    let Property::Reachability {
        dst, dst_offset, ..
    } = property
    else {
        return;
    };
    let off = *dst_offset as usize;
    if bytes.len() < off + 4 {
        return;
    }
    bytes[off..off + 4].copy_from_slice(&dst.octets());
    if !fix_checksum {
        return;
    }
    let ip_start = off.saturating_sub(16);
    if bytes.len() >= ip_start + 20 {
        let mut hdr = bytes[ip_start..].to_vec();
        if Ipv4Header::rewrite_checksum(&mut hdr) {
            let hl = (((hdr[0] & 0x0f) as usize) * 4).min(hdr.len());
            bytes[ip_start..ip_start + hl].copy_from_slice(&hdr[..hl]);
        }
    }
}

/// Concrete packets materialised from the solver's Sat models: one per
/// satisfiable path segment of every element's symbolic exploration, plus
/// (for reachability) a copy aimed at the target address. These are the
/// packets the *verifier itself* considered interesting — boundary values
/// of every branch condition — and routinely hit paths random streams
/// miss.
fn model_seed_packets(
    pipeline: &Pipeline,
    property: &Property,
    options: &VerifierOptions,
) -> Vec<Vec<u8>> {
    let solver = Solver::with_config(options.solver.clone());
    let mut packets = Vec::new();
    for (_, node) in pipeline.iter() {
        let Ok(exploration) = explore(&node.element.model(), &options.engine) else {
            continue;
        };
        for segment in &exploration.segments {
            let Some(model) = solver.find_model(&segment.constraint) else {
                continue;
            };
            let bytes = model.concrete_packet();
            if bytes.is_empty() {
                continue;
            }
            if matches!(property, Property::Reachability { .. }) {
                let mut aimed = bytes.clone();
                aim_at_target(property, &mut aimed, true);
                if aimed != bytes {
                    packets.push(aimed);
                }
            }
            packets.push(bytes);
        }
    }
    packets
}

/// Push one packet through the shard's runtime, account it, and record a
/// contradiction when the concrete run violates the proven property.
fn push_one(
    runtime: &mut ModelRuntime<'_>,
    pipeline: &Pipeline,
    property: &Property,
    bytes: Vec<u8>,
    report: &mut FuzzShardReport,
) {
    let packet_index = report.packets;
    report.packets += 1;
    let applicable = predicate_applies(property, &bytes);
    if applicable {
        report.checked += 1;
    }
    let run = runtime.push(Packet::from_bytes(bytes.clone()));
    match run.disposition {
        Disposition::Exited { .. } => report.forwarded += 1,
        Disposition::Dropped { .. } => report.dropped += 1,
        Disposition::Crashed { .. } => report.crashed += 1,
    }
    report.max_instructions = report.max_instructions.max(run.instructions);
    if !applicable || !run_violates_property(pipeline, property, &bytes, &run) {
        return;
    }
    report.contradiction_count += 1;
    if report.contradictions.len() >= MAX_RECORDED_CONTRADICTIONS {
        return;
    }
    // Shrink against a *fresh* runtime: the minimised form must violate
    // standalone, with the applicability gate intact so reachability
    // packets cannot be "shrunk" out of the property's scope.
    let mut violates_fresh = |candidate: &[u8]| {
        predicate_applies(property, candidate)
            && run_violates_property(
                pipeline,
                property,
                candidate,
                &model_run_fresh(pipeline, Packet::from_bytes(candidate.to_vec())),
            )
    };
    let reproduces_fresh = violates_fresh(&bytes);
    let shrunk = reproduces_fresh.then(|| shrink(&bytes, &mut violates_fresh));
    report.contradictions.push(Contradiction {
        packet: bytes,
        shrunk,
        disposition: disposition_kind(&run.disposition).to_string(),
        at: disposition_element(pipeline, &run.disposition),
        instructions: run.instructions,
        packet_index,
        reproduces_fresh,
    });
}

/// Run one fuzz shard: instantiate the scenario from its config text,
/// build a fresh model runtime, push the shard's model-seeded packets
/// (shard 0 only) and its slice of the seeded clean/adversarial streams,
/// and report counts plus contradictions. **The one shared
/// implementation** — the in-process pool and the worker protocol's
/// `fuzz` job both call this, which is what makes the two paths
/// byte-identical by construction.
pub fn run_fuzz_shard(
    job: &FuzzJob,
    options: &VerifierOptions,
) -> Result<FuzzShardReport, ExecError> {
    let scenario = job
        .scenario
        .to_scenario()
        .map_err(|e| ExecError::Job(format!("fuzz shard scenario does not instantiate: {e}")))?;
    let pipeline = &scenario.pipeline;
    let property = &scenario.property;
    let mut runtime = ModelRuntime::new(pipeline);
    let mut report = FuzzShardReport {
        scenario: scenario.label(),
        scenario_index: job.scenario_index,
        shard_index: job.shard_index,
        packets: 0,
        checked: 0,
        forwarded: 0,
        dropped: 0,
        crashed: 0,
        max_instructions: 0,
        model_seeds: 0,
        contradiction_count: 0,
        contradictions: Vec::new(),
    };

    if job.model_seeds {
        for bytes in model_seed_packets(pipeline, property, options) {
            report.model_seeds += 1;
            push_one(&mut runtime, pipeline, property, bytes, &mut report);
        }
    }

    let mut clean = WorkloadGen::clean(stream_seed(
        job.seed,
        job.scenario_index,
        job.shard_index,
        0,
    ));
    let mut adversarial = WorkloadGen::adversarial(stream_seed(
        job.seed,
        job.scenario_index,
        job.shard_index,
        1,
    ));
    for i in 0..job.packets {
        // Alternate the streams so every shard exercises both well-formed
        // and malformed traffic; aim every packet at the reachability
        // target (fixing the checksum only on the clean stream — the
        // adversarial stream's broken headers are part of its job).
        let from_clean = i % 2 == 0;
        let generator = if from_clean {
            &mut clean
        } else {
            &mut adversarial
        };
        let mut bytes = generator.next_packet().into_bytes();
        aim_at_target(property, &mut bytes, from_clean);
        push_one(&mut runtime, pipeline, property, bytes, &mut report);
    }
    Ok(report)
}

/// Run fuzz shards on an in-process work-stealing pool, returning one
/// report per job in input order (the same contract as
/// [`crate::exec::Executor::fuzz_jobs`]).
pub fn run_fuzz_jobs(
    jobs: &[FuzzJob],
    options: &VerifierOptions,
    threads: usize,
) -> Result<Vec<FuzzShardReport>, ExecError> {
    type Slot = Mutex<Option<Result<FuzzShardReport, ExecError>>>;
    let slots: Vec<Slot> = jobs.iter().map(|_| Mutex::new(None)).collect();
    Pool::run(threads.max(1), ThreadBudget::new(threads.max(1)), |pool| {
        for (job, slot) in jobs.iter().zip(&slots) {
            pool.spawn(Box::new(move |_| {
                *slot.lock().expect("fuzz slot") = Some(run_fuzz_shard(job, options));
            }));
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("fuzz slot")
                .expect("every fuzz slot filled")
        })
        .collect()
}

/// Fold shard reports into per-scenario reports, deterministically:
/// grouped by scenario index, shards consumed in shard-index order,
/// counts summed, instruction maxima maxed, recorded contradictions
/// concatenated. The fold is independent of which executor produced the
/// shards and in what order they completed.
pub fn fold_fuzz_shards(shards: Vec<FuzzShardReport>) -> Vec<FuzzScenarioReport> {
    let mut by_scenario: BTreeMap<u32, Vec<FuzzShardReport>> = BTreeMap::new();
    for shard in shards {
        by_scenario
            .entry(shard.scenario_index)
            .or_default()
            .push(shard);
    }
    by_scenario
        .into_values()
        .map(|mut shards| {
            shards.sort_by_key(|s| s.shard_index);
            let mut folded = FuzzScenarioReport {
                scenario: shards[0].scenario.clone(),
                shards: shards.len() as u32,
                packets: 0,
                checked: 0,
                forwarded: 0,
                dropped: 0,
                crashed: 0,
                max_instructions: 0,
                model_seeds: 0,
                contradiction_count: 0,
                contradictions: Vec::new(),
            };
            for shard in shards {
                folded.packets += shard.packets;
                folded.checked += shard.checked;
                folded.forwarded += shard.forwarded;
                folded.dropped += shard.dropped;
                folded.crashed += shard.crashed;
                folded.max_instructions = folded.max_instructions.max(shard.max_instructions);
                folded.model_seeds += shard.model_seeds;
                folded.contradiction_count += shard.contradiction_count;
                folded.contradictions.extend(shard.contradictions);
            }
            folded
        })
        .collect()
}

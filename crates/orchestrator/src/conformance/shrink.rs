//! Greedy counterexample minimisation for fuzz contradictions.
//!
//! When a fuzzed packet contradicts a `Proven` verdict the raw packet is
//! rarely minimal — random payload bytes, oversized options, trailing
//! garbage. Before reporting, the fuzzer shrinks it: first truncating from
//! the end in halving steps, then zeroing aligned byte spans at shrinking
//! granularities, keeping every candidate that still violates. The
//! predicate is supplied by the caller (a fresh model run plus the
//! property's applicability gate), so the shrinker itself is a pure,
//! deterministic byte-level loop.

/// Upper bound on predicate evaluations one [`shrink`] call may spend.
/// Each evaluation is one fresh model run (microseconds), so the bound
/// keeps even a pathological shard's shrink phase to milliseconds.
pub const SHRINK_BUDGET: usize = 512;

/// Greedily minimise `bytes` while `still_violates` holds.
///
/// Two phases, both deterministic and bounded by [`SHRINK_BUDGET`]
/// predicate calls:
///
/// 1. **Truncate**: repeatedly drop the largest suffix (halving from
///    `len/2` down to one byte) that keeps the violation.
/// 2. **Zero**: for span widths 16, 8, 4, 2, 1, try zeroing each aligned
///    span; keep the zeroed form when the violation survives.
///
/// Returns the smallest (then most-zeroed) form found — `bytes` itself
/// when nothing smaller violates. The caller guarantees `still_violates`
/// already holds for `bytes`.
pub fn shrink(bytes: &[u8], still_violates: &mut dyn FnMut(&[u8]) -> bool) -> Vec<u8> {
    let mut best = bytes.to_vec();
    let mut spent = 0usize;

    // Phase 1: truncate from the end.
    loop {
        let mut progressed = false;
        let mut cut = best.len() / 2;
        while cut >= 1 && spent < SHRINK_BUDGET {
            let candidate = &best[..best.len() - cut];
            spent += 1;
            if still_violates(candidate) {
                best = candidate.to_vec();
                progressed = true;
                break;
            }
            cut /= 2;
        }
        if !progressed || best.is_empty() || spent >= SHRINK_BUDGET {
            break;
        }
    }

    // Phase 2: zero aligned spans, coarse to fine.
    for width in [16usize, 8, 4, 2, 1] {
        let mut start = 0;
        while start < best.len() && spent < SHRINK_BUDGET {
            let end = (start + width).min(best.len());
            if best[start..end].iter().all(|&b| b == 0) {
                start += width;
                continue;
            }
            let mut candidate = best.clone();
            candidate[start..end].fill(0);
            spent += 1;
            if still_violates(&candidate) {
                best = candidate;
            }
            start += width;
        }
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_finds_the_single_load_bearing_byte() {
        // Violation: the packet contains 0x7f anywhere. One byte at index
        // 100 of a 400-byte packet is load-bearing; everything else is
        // noise the shrinker must remove.
        let mut packet = vec![0xaau8; 400];
        packet[100] = 0x7f;
        let mut check = |bytes: &[u8]| bytes.contains(&0x7f);
        let shrunk = shrink(&packet, &mut check);
        assert!(check(&shrunk), "shrunk form must still violate");
        assert!(
            shrunk.len() <= 101,
            "suffix after the byte must go: {}",
            shrunk.len()
        );
        // Every non-load-bearing byte is zeroed.
        assert_eq!(shrunk.iter().filter(|&&b| b == 0x7f).count(), 1);
        assert!(shrunk.iter().all(|&b| b == 0 || b == 0x7f));
    }

    #[test]
    fn shrink_is_deterministic() {
        let mut packet = vec![0x55u8; 233];
        packet[42] = 0x7f;
        packet[200] = 0x7f;
        let a = shrink(&packet, &mut |b: &[u8]| b.contains(&0x7f));
        let b = shrink(&packet, &mut |b: &[u8]| b.contains(&0x7f));
        assert_eq!(a, b);
    }

    #[test]
    fn shrink_respects_a_minimum_length_gate() {
        // Predicates with an applicability gate (reachability needs the
        // packet to still carry the target address at its offset) must not
        // be shrunk through the gate.
        let packet = vec![0x11u8; 64];
        let shrunk = shrink(&packet, &mut |b: &[u8]| b.len() >= 34);
        assert!(shrunk.len() >= 34);
        assert!(shrunk.iter().all(|&b| b == 0));
    }

    #[test]
    fn unshrinkable_packets_come_back_unchanged() {
        let packet = vec![1u8, 2, 3, 4];
        let original = packet.clone();
        // Only the exact original violates.
        let shrunk = shrink(&packet, &mut |b: &[u8]| b == original.as_slice());
        assert_eq!(shrunk, original);
    }

    #[test]
    fn shrink_stays_within_its_budget() {
        let packet = vec![0xffu8; 4096];
        let mut calls = 0usize;
        let _ = shrink(&packet, &mut |_b: &[u8]| {
            calls += 1;
            false
        });
        assert!(calls <= SHRINK_BUDGET);
    }
}

//! The conformance subsystem's report types and their JSON codecs.
//!
//! Everything here obeys the same determinism contract as the matrix
//! report: the *deterministic* document is a pure function of the inputs
//! (scenarios, seed, packet count, pinned options) — no wall-clock, no
//! thread counts, no cache weather — so a fixed seed serialises to
//! byte-identical text whether the fuzz shards ran on the in-process pool
//! or were dispatched over a worker fleet.

use crate::json::Json;
use crate::wire::{
    bytes_from_hex, check_schema, get, get_arr, get_bool, get_str, get_u64, hex_bytes, malformed,
    str_arr, WireError,
};
use std::fmt;
use std::time::Duration;

/// Schema version of every conformance document (shard reports on the
/// wire, and the aggregate report's JSON forms).
pub const CONFORMANCE_SCHEMA: u64 = 1;

/// How many contradictions a single fuzz shard records in full (packet
/// bytes, shrunk form, trace). Contradictions beyond the cap are still
/// *counted* — only their bytes are elided, so a pathological run cannot
/// balloon the wire frames.
pub const MAX_RECORDED_CONTRADICTIONS: usize = 8;

/// A fuzzed packet whose concrete model execution contradicted a `Proven`
/// verdict — the fuzzer's equivalent of a soundness bug, reported with
/// everything needed to reproduce it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Contradiction {
    /// The offending packet, exactly as pushed.
    pub packet: Vec<u8>,
    /// The greedily minimised packet that still violates the property on a
    /// fresh model runtime (`None` when the contradiction needs the
    /// shard's accumulated element state to reproduce).
    pub shrunk: Option<Vec<u8>>,
    /// Terminal disposition kind (`"exited"`, `"dropped"`, `"crashed"`).
    pub disposition: String,
    /// Instance name of the element where the run terminated.
    pub at: String,
    /// IR instructions the run executed.
    pub instructions: u64,
    /// Zero-based index of the packet within its shard's push order
    /// (model-seeded packets come first).
    pub packet_index: u64,
    /// Whether the violation also reproduces on a *fresh* model runtime
    /// (false means it depended on state earlier shard packets built up).
    pub reproduces_fresh: bool,
}

/// The result of one fuzz shard: counts and contradictions for one slice
/// of one proven scenario's seeded packet stream. This is the unit that
/// travels over the worker wire and the unit the deterministic fold
/// consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzShardReport {
    /// `pipeline/property` label of the fuzzed scenario.
    pub scenario: String,
    /// Index of the scenario in the conformance run.
    pub scenario_index: u32,
    /// Index of this shard within its scenario (the fold key).
    pub shard_index: u32,
    /// Packets pushed (model seeds included).
    pub packets: u64,
    /// Packets the property's violation predicate applied to (for
    /// reachability: packets actually carrying the target address).
    pub checked: u64,
    /// Packets that exited through an unconnected port.
    pub forwarded: u64,
    /// Packets dropped by some element.
    pub dropped: u64,
    /// Packets whose model execution crashed.
    pub crashed: u64,
    /// Highest per-packet instruction count observed.
    pub max_instructions: u64,
    /// Packets materialised from the solver's Sat models (0 unless this
    /// was the scenario's model-seed shard).
    pub model_seeds: u64,
    /// Total contradictions observed (recorded or not).
    pub contradiction_count: u64,
    /// The first [`MAX_RECORDED_CONTRADICTIONS`] contradictions in full.
    pub contradictions: Vec<Contradiction>,
}

fn contradiction_to_json(c: &Contradiction) -> Json {
    Json::obj([
        ("packet_hex", Json::str(hex_bytes(&c.packet))),
        (
            "shrunk_hex",
            match &c.shrunk {
                Some(bytes) => Json::str(hex_bytes(bytes)),
                None => Json::Null,
            },
        ),
        ("disposition", Json::str(&c.disposition)),
        ("at", Json::str(&c.at)),
        ("instructions", Json::int(c.instructions)),
        ("packet_index", Json::int(c.packet_index)),
        ("reproduces_fresh", Json::Bool(c.reproduces_fresh)),
    ])
}

fn contradiction_from_json(json: &Json) -> Result<Contradiction, WireError> {
    let shrunk = match get(json, "shrunk_hex")? {
        Json::Null => None,
        other => Some(bytes_from_hex(other.as_str().ok_or_else(|| {
            malformed("field 'shrunk_hex' is neither a hex string nor null")
        })?)?),
    };
    Ok(Contradiction {
        packet: bytes_from_hex(get_str(json, "packet_hex")?)?,
        shrunk,
        disposition: get_str(json, "disposition")?.to_string(),
        at: get_str(json, "at")?.to_string(),
        instructions: get_u64(json, "instructions")?,
        packet_index: get_u64(json, "packet_index")?,
        reproduces_fresh: get_bool(json, "reproduces_fresh")?,
    })
}

/// Encode a fuzz shard report (the `"fuzz"` result payload of the worker
/// protocol).
pub fn shard_report_to_json(report: &FuzzShardReport) -> Json {
    Json::obj([
        ("schema", Json::int(CONFORMANCE_SCHEMA)),
        ("scenario", Json::str(&report.scenario)),
        (
            "scenario_index",
            Json::int(u64::from(report.scenario_index)),
        ),
        ("shard_index", Json::int(u64::from(report.shard_index))),
        ("packets", Json::int(report.packets)),
        ("checked", Json::int(report.checked)),
        ("forwarded", Json::int(report.forwarded)),
        ("dropped", Json::int(report.dropped)),
        ("crashed", Json::int(report.crashed)),
        ("max_instructions", Json::int(report.max_instructions)),
        ("model_seeds", Json::int(report.model_seeds)),
        ("contradiction_count", Json::int(report.contradiction_count)),
        (
            "contradictions",
            Json::Arr(
                report
                    .contradictions
                    .iter()
                    .map(contradiction_to_json)
                    .collect(),
            ),
        ),
    ])
}

/// Decode a fuzz shard report.
pub fn shard_report_from_json(json: &Json) -> Result<FuzzShardReport, WireError> {
    check_schema(json, CONFORMANCE_SCHEMA, "conformance shard")?;
    let index_u32 = |key: &str| -> Result<u32, WireError> {
        u32::try_from(get_u64(json, key)?)
            .map_err(|_| malformed(format!("field '{key}' exceeds u32")))
    };
    Ok(FuzzShardReport {
        scenario: get_str(json, "scenario")?.to_string(),
        scenario_index: index_u32("scenario_index")?,
        shard_index: index_u32("shard_index")?,
        packets: get_u64(json, "packets")?,
        checked: get_u64(json, "checked")?,
        forwarded: get_u64(json, "forwarded")?,
        dropped: get_u64(json, "dropped")?,
        crashed: get_u64(json, "crashed")?,
        max_instructions: get_u64(json, "max_instructions")?,
        model_seeds: get_u64(json, "model_seeds")?,
        contradiction_count: get_u64(json, "contradiction_count")?,
        contradictions: get_arr(json, "contradictions")?
            .iter()
            .map(contradiction_from_json)
            .collect::<Result<Vec<_>, WireError>>()?,
    })
}

/// The deterministic fold of one scenario's shard reports, in shard-index
/// order: counts summed, instruction maxima maxed, recorded
/// contradictions concatenated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzScenarioReport {
    /// `pipeline/property` label.
    pub scenario: String,
    /// How many shards the scenario's stream was split into.
    pub shards: u32,
    /// Total packets pushed across all shards.
    pub packets: u64,
    /// Packets the violation predicate applied to.
    pub checked: u64,
    /// Packets that exited through an unconnected port.
    pub forwarded: u64,
    /// Packets dropped by some element.
    pub dropped: u64,
    /// Packets whose model execution crashed.
    pub crashed: u64,
    /// Highest per-packet instruction count across all shards.
    pub max_instructions: u64,
    /// Solver-model-seeded packets pushed.
    pub model_seeds: u64,
    /// Total contradictions across all shards.
    pub contradiction_count: u64,
    /// Recorded contradictions, concatenated in shard order.
    pub contradictions: Vec<Contradiction>,
}

impl FuzzScenarioReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", Json::str(&self.scenario)),
            ("shards", Json::int(u64::from(self.shards))),
            ("packets", Json::int(self.packets)),
            ("checked", Json::int(self.checked)),
            ("forwarded", Json::int(self.forwarded)),
            ("dropped", Json::int(self.dropped)),
            ("crashed", Json::int(self.crashed)),
            ("max_instructions", Json::int(self.max_instructions)),
            ("model_seeds", Json::int(self.model_seeds)),
            ("contradiction_count", Json::int(self.contradiction_count)),
            (
                "contradictions",
                Json::Arr(
                    self.contradictions
                        .iter()
                        .map(contradiction_to_json)
                        .collect(),
                ),
            ),
        ])
    }
}

/// The concrete re-execution of one symbolic counterexample: what the
/// verifier predicted, what the model runtime did, and whether they agree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// The pipeline's label.
    pub scenario: String,
    /// The violated property's name.
    pub property: String,
    /// The counterexample's description from the symbolic report.
    pub description: String,
    /// The element path the symbolic verifier predicted.
    pub symbolic_path: Vec<String>,
    /// The counterexample packet that was pushed.
    pub packet: Vec<u8>,
    /// Whether the concrete run violated the property as predicted. A
    /// `false` here is a soundness bug in the verifier or a divergence
    /// between the element models and the composition — it fails the run.
    pub reproduced: bool,
    /// Terminal disposition kind of the concrete run.
    pub disposition: String,
    /// Instance name of the element where the concrete run terminated.
    pub at: String,
    /// IR instructions the concrete run executed.
    pub instructions: u64,
    /// The element path the concrete run actually took.
    pub concrete_path: Vec<String>,
}

impl ReplayOutcome {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", Json::str(&self.scenario)),
            ("property", Json::str(&self.property)),
            ("description", Json::str(&self.description)),
            (
                "symbolic_path",
                Json::Arr(self.symbolic_path.iter().map(Json::str).collect()),
            ),
            ("packet_hex", Json::str(hex_bytes(&self.packet))),
            ("reproduced", Json::Bool(self.reproduced)),
            ("disposition", Json::str(&self.disposition)),
            ("at", Json::str(&self.at)),
            ("instructions", Json::int(self.instructions)),
            (
                "concrete_path",
                Json::Arr(self.concrete_path.iter().map(Json::str).collect()),
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<ReplayOutcome, WireError> {
        Ok(ReplayOutcome {
            scenario: get_str(json, "scenario")?.to_string(),
            property: get_str(json, "property")?.to_string(),
            description: get_str(json, "description")?.to_string(),
            symbolic_path: str_arr(get_arr(json, "symbolic_path")?)?,
            packet: bytes_from_hex(get_str(json, "packet_hex")?)?,
            reproduced: get_bool(json, "reproduced")?,
            disposition: get_str(json, "disposition")?.to_string(),
            at: get_str(json, "at")?.to_string(),
            instructions: get_u64(json, "instructions")?,
            concrete_path: str_arr(get_arr(json, "concrete_path")?)?,
        })
    }
}

/// The aggregate result of a conformance run: every counterexample
/// replayed, every proven scenario fuzzed.
#[derive(Clone, Debug)]
pub struct ConformanceReport {
    /// The run's base seed.
    pub seed: u64,
    /// Total fuzz packets the run was asked to generate (split across the
    /// proven scenarios; model-seeded packets come on top).
    pub packets_requested: u64,
    /// One entry per replayed counterexample.
    pub replay: Vec<ReplayOutcome>,
    /// One entry per fuzzed (proven) scenario, in scenario order.
    pub fuzz: Vec<FuzzScenarioReport>,
    /// Pool threads the run used (operational only).
    pub threads: usize,
    /// Wall-clock time (operational only).
    pub elapsed: Duration,
}

impl ConformanceReport {
    /// Counterexamples whose concrete replay did *not* reproduce the
    /// symbolic violation.
    pub fn replay_mismatches(&self) -> usize {
        self.replay.iter().filter(|r| !r.reproduced).count()
    }

    /// Total fuzz contradictions across every scenario.
    pub fn contradictions(&self) -> u64 {
        self.fuzz.iter().map(|f| f.contradiction_count).sum()
    }

    /// Total packets actually pushed across every scenario.
    pub fn packets_pushed(&self) -> u64 {
        self.fuzz.iter().map(|f| f.packets).sum()
    }

    /// The run's verdict: every replay reproduced and zero contradictions.
    pub fn ok(&self) -> bool {
        self.replay_mismatches() == 0 && self.contradictions() == 0
    }

    fn body(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("schema", Json::int(CONFORMANCE_SCHEMA)),
            ("kind", Json::str("conformance")),
            ("seed", Json::int(self.seed)),
            ("packets_requested", Json::int(self.packets_requested)),
            ("packets_pushed", Json::int(self.packets_pushed())),
            (
                "replay",
                Json::Arr(self.replay.iter().map(ReplayOutcome::to_json).collect()),
            ),
            (
                "fuzz",
                Json::Arr(self.fuzz.iter().map(FuzzScenarioReport::to_json).collect()),
            ),
            (
                "replay_mismatches",
                Json::int(self.replay_mismatches() as u64),
            ),
            ("contradictions", Json::int(self.contradictions())),
            ("ok", Json::Bool(self.ok())),
        ]
    }

    /// The machine-readable (operational) document: the deterministic body
    /// plus timings and the thread count.
    pub fn to_json(&self) -> Json {
        let mut body = self.body();
        body.push(("threads", Json::int(self.threads as u64)));
        body.push((
            "elapsed_micros",
            Json::int(self.elapsed.as_micros().min(u128::from(u64::MAX)) as u64),
        ));
        Json::obj(body)
    }

    /// The deterministic document: a pure function of scenarios, seed, and
    /// packet count — byte-identical across runs, processes, and executors
    /// (the in-process-vs-fleet byte-identity tests compare this form).
    pub fn deterministic_json(&self) -> Json {
        Json::obj(self.body())
    }

    /// Decode the deterministic document's replay outcomes (used by tests
    /// and tooling that inspect saved conformance reports).
    pub fn replay_from_json(json: &Json) -> Result<Vec<ReplayOutcome>, WireError> {
        check_schema(json, CONFORMANCE_SCHEMA, "conformance report")?;
        get_arr(json, "replay")?
            .iter()
            .map(ReplayOutcome::from_json)
            .collect()
    }
}

impl fmt::Display for ConformanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "conformance: {} counterexamples replayed ({} mismatches), \
             {} packets fuzzed over {} scenarios ({} contradictions) in {:.3}s on {} threads",
            self.replay.len(),
            self.replay_mismatches(),
            self.packets_pushed(),
            self.fuzz.len(),
            self.contradictions(),
            self.elapsed.as_secs_f64(),
            self.threads,
        )?;
        for outcome in &self.replay {
            writeln!(
                f,
                "  replay {}/{}: {} — concrete run {} at {} ({} instr)",
                outcome.scenario,
                outcome.property,
                if outcome.reproduced {
                    "reproduced"
                } else {
                    "MISMATCH"
                },
                outcome.disposition,
                outcome.at,
                outcome.instructions,
            )?;
        }
        for fuzz in &self.fuzz {
            writeln!(
                f,
                "  fuzz {}: {} packets / {} shards, {} checked, max {} instr, {} contradictions",
                fuzz.scenario,
                fuzz.packets,
                fuzz.shards,
                fuzz.checked,
                fuzz.max_instructions,
                fuzz.contradiction_count,
            )?;
        }
        Ok(())
    }
}

//! Counterexample replay: the differential check on `Violated` verdicts.
//!
//! The symbolic verifier attaches a concrete witness packet to every
//! violation. Replay pushes each witness through a *fresh*
//! [`dataplane_pipeline::ModelRuntime`] and checks that the concrete run
//! really violates the property the verdict claims — a mismatch means the
//! verifier's composition and the element models disagree (a soundness
//! bug), and the conformance run fails loudly with both the symbolic and
//! the concrete trace.

use super::report::ReplayOutcome;
use crate::json::Json;
use crate::matrix::{preset_pipelines, preset_properties};
use crate::wire::{check_schema, get, get_arr, get_str, malformed, report_from_json, WireError};
use dataplane_net::Packet;
use dataplane_pipeline::{model_run_fresh, Disposition, ModelRun, Pipeline};
use dataplane_verifier::{run_violates_property, Report, Verdict};
use std::time::Duration;

/// The disposition's wire name.
pub(crate) fn disposition_kind(disposition: &Disposition) -> &'static str {
    match disposition {
        Disposition::Exited { .. } => "exited",
        Disposition::Dropped { .. } => "dropped",
        Disposition::Crashed { .. } => "crashed",
    }
}

/// Instance name of the element the run terminated at.
pub(crate) fn disposition_element(pipeline: &Pipeline, disposition: &Disposition) -> String {
    let at = match disposition {
        Disposition::Exited { at, .. }
        | Disposition::Dropped { at }
        | Disposition::Crashed { at, .. } => *at,
    };
    pipeline.node(at).name.clone()
}

/// Element-name trace of a model run.
pub(crate) fn hop_names(pipeline: &Pipeline, run: &ModelRun) -> Vec<String> {
    run.hops
        .iter()
        .map(|&hop| pipeline.node(hop).name.clone())
        .collect()
}

/// Replay every counterexample of a (violated) report against `pipeline`.
/// Reports with other verdicts have no counterexamples and produce no
/// outcomes.
pub fn replay_report(
    pipeline: &Pipeline,
    pipeline_name: &str,
    report: &Report,
) -> Vec<ReplayOutcome> {
    if report.verdict != Verdict::Violated {
        return Vec::new();
    }
    report
        .counterexamples
        .iter()
        .map(|ce| {
            let run = model_run_fresh(pipeline, Packet::from_bytes(ce.packet.clone()));
            ReplayOutcome {
                scenario: pipeline_name.to_string(),
                property: report.property.name(),
                description: ce.description.clone(),
                symbolic_path: ce.path.clone(),
                packet: ce.packet.clone(),
                reproduced: run_violates_property(pipeline, &report.property, &ce.packet, &run),
                disposition: disposition_kind(&run.disposition).to_string(),
                at: disposition_element(pipeline, &run.disposition),
                instructions: run.instructions,
                concrete_path: hop_names(pipeline, &run),
            }
        })
        .collect()
}

/// Replay every counterexample of a saved deterministic matrix document
/// (`vericlick run --matrix --det-json …`).
///
/// The deterministic form carries no config text, so pipelines are
/// rebuilt from the preset table by name — a scenario naming a non-preset
/// pipeline is an error (re-run the matrix in-process to replay custom
/// configs).
pub fn replay_matrix_json(doc: &Json) -> Result<Vec<ReplayOutcome>, WireError> {
    check_schema(doc, crate::wire::REPORT_SCHEMA, "matrix report")?;
    let kind = get_str(doc, "kind")?;
    if kind != "matrix" {
        return Err(malformed(format!(
            "conformance replays matrix documents, got kind '{kind}'"
        )));
    }
    let mut outcomes = Vec::new();
    for scenario in get_arr(doc, "scenarios")? {
        let name = get_str(scenario, "pipeline")?;
        let report_json = get(scenario, "report")?;
        let property_name = get_str(report_json, "property")?;
        let make = preset_pipelines()
            .into_iter()
            .find(|(preset, _)| *preset == name)
            .map(|(_, make)| make)
            .ok_or_else(|| {
                malformed(format!(
                    "scenario '{name}' is not a preset pipeline; replay needs the preset table \
                     to rebuild pipelines from a deterministic report"
                ))
            })?;
        let property = preset_properties(name)
            .into_iter()
            .find(|p| p.name() == property_name)
            .ok_or_else(|| {
                malformed(format!(
                    "scenario '{name}' reports property '{property_name}', which is not in its \
                     preset property table"
                ))
            })?;
        let report = report_from_json(report_json, property, Duration::ZERO)?;
        outcomes.extend(replay_report(&make(), name, &report));
    }
    Ok(outcomes)
}

//! Wire codecs for the plan/execute split: everything a verification job
//! needs to cross a process boundary, expressed through the crate's own
//! [`Json`] model (the workspace's `serde` is an offline API stub, so
//! serialisation is explicit).
//!
//! The shapes on the wire:
//!
//! * [`PlanSpec`] — the first-class, serialisable job plan: scenarios (as
//!   config text + property), one [`JobSpec`] per distinct element
//!   behaviour, dependency edges, and the content fingerprints everything is
//!   keyed by. `vericlick plan` writes one; `vericlick exec-plan` (possibly
//!   another process, possibly another machine) executes it.
//! * [`crate::service::VerifyRequest`] — the front-door request, also fully
//!   serialisable ([`request_to_json`] / [`request_from_json`]).
//! * [`VerifierOptions`] (minus the in-memory Step-2 executor, which the
//!   executing side chooses) — so a plan pins the exact budgets and engine
//!   configuration its fingerprints were computed under.
//! * [`Report`] — the deterministic verification result, byte-stable across
//!   processes ([`report_to_json`]); this is what the byte-identity
//!   acceptance tests compare.
//!
//! Every document carries a `schema` version field so persisted artifacts
//! stay recognisable as the formats evolve.

use crate::diff::{DiffEntry, DiffKind};
use crate::fingerprint::Fingerprint;
use crate::json::{Json, JsonError};
use crate::orchestrator::Scenario;
use crate::service::{PropertySelect, VerifyRequest};
use dataplane_pipeline::{parse_config, write_config, ConfigError, ConfigWriteError};
use dataplane_symbex::{CheckDiagnostics, EngineConfig, LoopMode, SolverConfig};
use dataplane_temporal::LtlSpec;
use dataplane_verifier::{
    CheckOutcome, CheckRecord, ComposeShardResult, Counterexample, EscalationLadder, Property,
    Report, ShardEdge, ShardNodeRecord, UnprovenPath, Verdict, VerificationStats, VerifierOptions,
};
use std::fmt;
use std::net::Ipv4Addr;
use std::time::Duration;

/// Schema version of serialised [`PlanSpec`] documents. Version 2 tags
/// each job with its kind (`explore` / `compose`) and adds the optional
/// `bound` section for instruction-bound analyses.
pub const PLAN_SCHEMA: u64 = 2;

/// Schema version of serialised [`crate::service::VerifyRequest`] documents.
pub const REQUEST_SCHEMA: u64 = 1;

/// Schema version of the matrix / diff report JSON documents.
pub const REPORT_SCHEMA: u64 = 1;

/// A serialisation or deserialisation failure.
#[derive(Clone, Debug)]
pub enum WireError {
    /// The JSON text does not parse.
    Json(JsonError),
    /// A config string in the document does not parse into a pipeline.
    Config(ConfigError),
    /// A pipeline in the request cannot be rendered to config text.
    Write(ConfigWriteError),
    /// The document parses as JSON but not as the expected shape.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Json(e) => write!(f, "wire: {e}"),
            WireError::Config(e) => write!(f, "wire: embedded config: {e}"),
            WireError::Write(e) => write!(f, "wire: pipeline not serialisable: {e}"),
            WireError::Malformed(m) => write!(f, "wire: malformed document: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<JsonError> for WireError {
    fn from(e: JsonError) -> Self {
        WireError::Json(e)
    }
}

impl From<ConfigError> for WireError {
    fn from(e: ConfigError) -> Self {
        WireError::Config(e)
    }
}

impl From<ConfigWriteError> for WireError {
    fn from(e: ConfigWriteError) -> Self {
        WireError::Write(e)
    }
}

pub(crate) fn malformed(message: impl Into<String>) -> WireError {
    WireError::Malformed(message.into())
}

pub(crate) fn get<'a>(json: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    json.get(key)
        .ok_or_else(|| malformed(format!("missing field '{key}'")))
}

pub(crate) fn get_u64(json: &Json, key: &str) -> Result<u64, WireError> {
    get(json, key)?
        .as_u64()
        .ok_or_else(|| malformed(format!("field '{key}' is not an unsigned integer")))
}

pub(crate) fn get_usize(json: &Json, key: &str) -> Result<usize, WireError> {
    usize::try_from(get_u64(json, key)?)
        .map_err(|_| malformed(format!("field '{key}' exceeds usize")))
}

pub(crate) fn get_bool(json: &Json, key: &str) -> Result<bool, WireError> {
    get(json, key)?
        .as_bool()
        .ok_or_else(|| malformed(format!("field '{key}' is not a boolean")))
}

pub(crate) fn get_str<'a>(json: &'a Json, key: &str) -> Result<&'a str, WireError> {
    get(json, key)?
        .as_str()
        .ok_or_else(|| malformed(format!("field '{key}' is not a string")))
}

pub(crate) fn get_arr<'a>(json: &'a Json, key: &str) -> Result<&'a [Json], WireError> {
    get(json, key)?
        .as_arr()
        .ok_or_else(|| malformed(format!("field '{key}' is not an array")))
}

pub(crate) fn str_arr(items: &[Json]) -> Result<Vec<String>, WireError> {
    items
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| malformed("expected an array of strings"))
        })
        .collect()
}

pub(crate) fn check_schema(json: &Json, expected: u64, what: &str) -> Result<(), WireError> {
    let schema = get_u64(json, "schema")?;
    if schema != expected {
        return Err(malformed(format!(
            "unsupported {what} schema {schema} (this build reads schema {expected})"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

/// Encode a property.
pub fn property_to_json(property: &Property) -> Json {
    match property {
        Property::CrashFreedom => Json::obj([("kind", Json::str("crash-freedom"))]),
        Property::BoundedInstructions { max_instructions } => Json::obj([
            ("kind", Json::str("bounded-instructions")),
            ("max_instructions", Json::int(*max_instructions)),
        ]),
        Property::Reachability {
            dst,
            dst_offset,
            deliver_to,
            may_drop,
        } => Json::obj([
            ("kind", Json::str("reachability")),
            ("dst", Json::str(dst.to_string())),
            ("dst_offset", Json::int(*dst_offset)),
            (
                "deliver_to",
                Json::Arr(deliver_to.iter().map(Json::str).collect()),
            ),
            (
                "may_drop",
                Json::Arr(may_drop.iter().map(Json::str).collect()),
            ),
        ]),
        // The spec travels as its canonical source text and is re-parsed on
        // decode, so the wire form stays readable and version-stable.
        Property::Temporal(spec) => Json::obj([
            ("kind", Json::str("temporal")),
            ("spec", Json::str(spec.source())),
        ]),
    }
}

/// Decode a property.
pub fn property_from_json(json: &Json) -> Result<Property, WireError> {
    match get_str(json, "kind")? {
        "crash-freedom" => Ok(Property::CrashFreedom),
        "bounded-instructions" => Ok(Property::BoundedInstructions {
            max_instructions: get_u64(json, "max_instructions")?,
        }),
        "reachability" => Ok(Property::Reachability {
            dst: get_str(json, "dst")?
                .parse::<Ipv4Addr>()
                .map_err(|_| malformed("reachability dst is not an IPv4 address"))?,
            dst_offset: u32::try_from(get_u64(json, "dst_offset")?)
                .map_err(|_| malformed("dst_offset exceeds u32"))?,
            deliver_to: str_arr(get_arr(json, "deliver_to")?)?,
            may_drop: str_arr(get_arr(json, "may_drop")?)?,
        }),
        "temporal" => Ok(Property::Temporal(
            LtlSpec::parse(get_str(json, "spec")?)
                .map_err(|e| malformed(format!("temporal spec: {e}")))?,
        )),
        other => Err(malformed(format!("unknown property kind '{other}'"))),
    }
}

// ---------------------------------------------------------------------------
// Options (engine, solver, ladder)
// ---------------------------------------------------------------------------

/// Encode an engine configuration.
pub fn engine_to_json(engine: &EngineConfig) -> Json {
    Json::obj([
        ("max_segments", Json::int(engine.max_segments as u64)),
        ("max_branches", Json::int(engine.max_branches)),
        (
            "loop_mode",
            Json::str(match engine.loop_mode {
                LoopMode::Unroll => "unroll",
                LoopMode::Decompose => "decompose",
            }),
        ),
    ])
}

/// Decode an engine configuration.
pub fn engine_from_json(json: &Json) -> Result<EngineConfig, WireError> {
    Ok(EngineConfig {
        max_segments: get_usize(json, "max_segments")?,
        max_branches: get_u64(json, "max_branches")?,
        loop_mode: match get_str(json, "loop_mode")? {
            "unroll" => LoopMode::Unroll,
            "decompose" => LoopMode::Decompose,
            other => return Err(malformed(format!("unknown loop mode '{other}'"))),
        },
    })
}

fn solver_to_json(solver: &SolverConfig) -> Json {
    Json::obj([
        ("model_search_tries", Json::int(solver.model_search_tries)),
        ("max_packet_len", Json::int(solver.max_packet_len)),
        (
            "max_fm_constraints",
            Json::int(solver.max_fm_constraints as u64),
        ),
        ("search_seed", Json::int(solver.search_seed)),
    ])
}

fn solver_from_json(json: &Json) -> Result<SolverConfig, WireError> {
    Ok(SolverConfig {
        model_search_tries: u32::try_from(get_u64(json, "model_search_tries")?)
            .map_err(|_| malformed("model_search_tries exceeds u32"))?,
        max_packet_len: u32::try_from(get_u64(json, "max_packet_len")?)
            .map_err(|_| malformed("max_packet_len exceeds u32"))?,
        max_fm_constraints: get_usize(json, "max_fm_constraints")?,
        search_seed: get_u64(json, "search_seed")?,
    })
}

fn ladder_to_json(ladder: &EscalationLadder) -> Json {
    Json::obj([
        ("factor", Json::int(ladder.factor)),
        ("steps", Json::int(ladder.steps)),
        (
            "wall_cap_micros",
            match ladder.wall_cap {
                Some(cap) => Json::int(cap.as_micros().min(u128::from(u64::MAX)) as u64),
                None => Json::Null,
            },
        ),
    ])
}

fn ladder_from_json(json: &Json) -> Result<EscalationLadder, WireError> {
    Ok(EscalationLadder {
        factor: u32::try_from(get_u64(json, "factor")?)
            .map_err(|_| malformed("ladder factor exceeds u32"))?,
        steps: u32::try_from(get_u64(json, "steps")?)
            .map_err(|_| malformed("ladder steps exceeds u32"))?,
        wall_cap: match get(json, "wall_cap_micros")? {
            Json::Null => None,
            v => Some(Duration::from_micros(v.as_u64().ok_or_else(|| {
                malformed("wall_cap_micros is not an unsigned integer")
            })?)),
        },
    })
}

/// Encode verifier options. The Step-2 `parallel` executor is deliberately
/// *not* on the wire: how checks are dispatched is an executing-process
/// decision and does not affect the report.
pub fn options_to_json(options: &VerifierOptions) -> Json {
    Json::obj([
        ("prune_prefixes", Json::Bool(options.prune_prefixes)),
        (
            "validate_counterexamples",
            Json::Bool(options.validate_counterexamples),
        ),
        (
            "max_composed_paths",
            Json::int(options.max_composed_paths as u64),
        ),
        ("engine", engine_to_json(&options.engine)),
        ("solver", solver_to_json(&options.solver)),
        ("escalate_budgets", Json::Bool(options.escalate_budgets)),
        ("ladder", ladder_to_json(&options.ladder)),
    ])
}

/// Decode verifier options (Step-2 dispatch comes back sequential; the
/// executing service installs its own executor).
pub fn options_from_json(json: &Json) -> Result<VerifierOptions, WireError> {
    Ok(VerifierOptions {
        prune_prefixes: get_bool(json, "prune_prefixes")?,
        validate_counterexamples: get_bool(json, "validate_counterexamples")?,
        max_composed_paths: get_usize(json, "max_composed_paths")?,
        engine: engine_from_json(get(json, "engine")?)?,
        solver: solver_from_json(get(json, "solver")?)?,
        escalate_budgets: get_bool(json, "escalate_budgets")?,
        ladder: ladder_from_json(get(json, "ladder")?)?,
        ..VerifierOptions::default()
    })
}

/// Content digest of a serialised [`VerifierOptions`] document — 32 hex
/// characters. Worker-protocol v4 hellos send this instead of the full
/// options on every reconnect: a worker that already holds the options
/// under this digest skips the transfer, one that does not asks for the
/// full document (see the `exec::worker` hello exchange).
pub fn options_digest(options: &VerifierOptions) -> String {
    crate::fingerprint::fingerprint_bytes(&options_to_json(options).to_text()).to_string()
}

// ---------------------------------------------------------------------------
// Scenarios and plans
// ---------------------------------------------------------------------------

/// One scenario on the wire: a named pipeline (as config text) and the
/// property to verify it against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// The pipeline's label.
    pub name: String,
    /// The pipeline as config text ([`dataplane_pipeline::parse_config`]
    /// syntax).
    pub config: String,
    /// The property to check.
    pub property: Property,
}

impl ScenarioSpec {
    /// Render an in-memory scenario to its wire form (fails if the pipeline
    /// contains an element the config language cannot express).
    pub fn from_scenario(scenario: &Scenario) -> Result<ScenarioSpec, WireError> {
        Ok(ScenarioSpec {
            name: scenario.pipeline_name.clone(),
            config: write_config(&scenario.pipeline)?,
            property: scenario.property.clone(),
        })
    }

    /// Instantiate the scenario (parses the config text).
    pub fn to_scenario(&self) -> Result<Scenario, WireError> {
        Ok(Scenario::new(
            self.name.clone(),
            parse_config(&self.config)?,
            self.property.clone(),
        ))
    }
}

fn scenario_spec_to_json(spec: &ScenarioSpec) -> Json {
    Json::obj([
        ("name", Json::str(&spec.name)),
        ("config", Json::str(&spec.config)),
        ("property", property_to_json(&spec.property)),
    ])
}

fn scenario_spec_from_json(json: &Json) -> Result<ScenarioSpec, WireError> {
    Ok(ScenarioSpec {
        name: get_str(json, "name")?.to_string(),
        config: get_str(json, "config")?.to_string(),
        property: property_from_json(get(json, "property")?)?,
    })
}

/// One element-exploration job on the wire. A worker reconstructs the
/// element from the config factory (`type_name(config_args)`), checks that
/// the reconstruction's fingerprint matches, explores it, and returns the
/// summary — so a stale or mismatched worker build fails loudly instead of
/// silently caching the wrong behaviour.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreJob {
    /// Content-addressed identity of the summary this job produces.
    pub fingerprint: Fingerprint,
    /// Element type name (a config-factory type).
    pub type_name: String,
    /// Factory argument string ([`dataplane_pipeline::Element::config_args`]).
    pub config_args: String,
}

/// One Step-2 composition job on the wire: the scenario (as config text +
/// property) and, per pipeline element, the fingerprint of the summary its
/// composition consumes. The summaries themselves travel alongside the job
/// in the dispatch frame (a fingerprint whose exploration exceeded its
/// budget ships no summary — the worker then re-attempts it inline and
/// reports the failure exactly as a local run would).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComposeJob {
    /// The scenario to compose.
    pub scenario: ScenarioSpec,
    /// Per pipeline element: the summary fingerprint the composition
    /// consumes, in pipeline order.
    pub fingerprints: Vec<Fingerprint>,
}

/// One Step-2 composition *shard* on the wire: a [`ComposeJob`]'s scenario
/// and summary fingerprints plus a contiguous `[start, end)` slice of the
/// deterministic *work-unit* enumeration — one unit per surviving suspect
/// check and one per solver-weighted feasibility edge, in the pre-order
/// walk of the interval-pruned prefix tree (see
/// `dataplane_verifier::ComposeOutline::total_weight`). Unit addressing
/// means a shard boundary may fall *inside* one suspect node's subtree; the
/// worker reproduces the enumeration locally, decides only the units in its
/// range (shipping partially-filled records with `null` slots for units
/// outside it), and the coordinator folds all ranges in sequential
/// enumeration order, so the report is byte-identical to an in-process run
/// at any shard size or fleet shape — including mid-slice splits, where the
/// result additionally names a `remainder` range requeued elsewhere.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComposeShardJob {
    /// The scenario whose composition is being sharded.
    pub scenario: ScenarioSpec,
    /// Per pipeline element: the summary fingerprint the composition
    /// consumes, in pipeline order.
    pub fingerprints: Vec<Fingerprint>,
    /// Index of the scenario in the run — the sibling-group key: when one
    /// shard of a group reports a violation, the group's outstanding
    /// shards are cancelled.
    pub scenario_index: u32,
    /// First enumeration index this shard decides (inclusive).
    pub start: usize,
    /// One past the last enumeration index this shard decides.
    pub end: usize,
}

/// One conformance fuzz shard on the wire: a scenario (as config text +
/// property) and the slice of the seeded packet stream this shard pushes
/// through a fresh model runtime. The shard is both the determinism unit
/// and the state unit — element state (flow tables, NAT maps) accumulates
/// within a shard and never across shards, so a shard's report is a pure
/// function of this job and the pinned options, wherever it executes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzJob {
    /// The proven scenario to fuzz.
    pub scenario: ScenarioSpec,
    /// Index of the scenario in the conformance run (part of the per-shard
    /// stream seed, so scenarios draw independent packet streams).
    pub scenario_index: u32,
    /// Index of this shard within its scenario (the fold key).
    pub shard_index: u32,
    /// The run's base seed (shards derive their stream seeds from it).
    pub seed: u64,
    /// Packets this shard generates and pushes.
    pub packets: u64,
    /// Additionally seed the stream with concrete packets materialised from
    /// the solver's Sat models of every element segment (shard 0 only —
    /// the model-seed set is per scenario, not per shard).
    pub model_seeds: bool,
}

/// One job a worker executes: a Step-1 exploration, a Step-2 composition,
/// or a conformance fuzz shard. This is the unit of the pull-based
/// dispatch protocol — all kinds of work travel over the same wire and
/// drain from the same queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobSpec {
    /// Explore one element behaviour.
    Explore(ExploreJob),
    /// Decide one scenario's composition from shipped summaries.
    Compose(ComposeJob),
    /// Decide one scenario's temporal (LTL) property from shipped
    /// summaries. The payload is compose-shaped — scenario plus summary
    /// fingerprints — but the kind is distinct on the wire so a worker
    /// that predates the Büchi-product search rejects it at decode time
    /// instead of mis-deciding it through the suspect walk.
    Temporal(ComposeJob),
    /// Decide one contiguous slice of a scenario's composition enumeration.
    ComposeShard(ComposeShardJob),
    /// Push one seeded packet-stream shard through a proven scenario.
    Fuzz(FuzzJob),
}

/// Encode an explore job (tagged with its kind, like every wire job).
pub fn explore_job_to_json(job: &ExploreJob) -> Json {
    Json::obj([
        ("kind", Json::str("explore")),
        ("fingerprint", Json::str(job.fingerprint.to_string())),
        ("type_name", Json::str(&job.type_name)),
        ("config_args", Json::str(&job.config_args)),
    ])
}

/// Decode an explore job.
pub fn explore_job_from_json(json: &Json) -> Result<ExploreJob, WireError> {
    Ok(ExploreJob {
        fingerprint: parse_fingerprint(get_str(json, "fingerprint")?)?,
        type_name: get_str(json, "type_name")?.to_string(),
        config_args: get_str(json, "config_args")?.to_string(),
    })
}

fn fingerprints_to_json(fps: &[Fingerprint]) -> Json {
    Json::Arr(fps.iter().map(|fp| Json::str(fp.to_string())).collect())
}

fn fingerprints_from_json(items: &[Json]) -> Result<Vec<Fingerprint>, WireError> {
    items
        .iter()
        .map(|fp| {
            parse_fingerprint(
                fp.as_str()
                    .ok_or_else(|| malformed("fingerprint is not a string"))?,
            )
        })
        .collect()
}

/// Encode a wire job of either kind.
pub fn job_to_json(job: &JobSpec) -> Json {
    match job {
        JobSpec::Explore(job) => explore_job_to_json(job),
        JobSpec::Compose(job) => Json::obj([
            ("kind", Json::str("compose")),
            ("scenario", scenario_spec_to_json(&job.scenario)),
            ("fingerprints", fingerprints_to_json(&job.fingerprints)),
        ]),
        JobSpec::Temporal(job) => Json::obj([
            ("kind", Json::str("temporal")),
            ("scenario", scenario_spec_to_json(&job.scenario)),
            ("fingerprints", fingerprints_to_json(&job.fingerprints)),
        ]),
        JobSpec::ComposeShard(job) => Json::obj([
            ("kind", Json::str("compose-shard")),
            ("scenario", scenario_spec_to_json(&job.scenario)),
            ("fingerprints", fingerprints_to_json(&job.fingerprints)),
            ("scenario_index", Json::int(u64::from(job.scenario_index))),
            ("start", Json::int(job.start as u64)),
            ("end", Json::int(job.end as u64)),
        ]),
        JobSpec::Fuzz(job) => Json::obj([
            ("kind", Json::str("fuzz")),
            ("scenario", scenario_spec_to_json(&job.scenario)),
            ("scenario_index", Json::int(u64::from(job.scenario_index))),
            ("shard_index", Json::int(u64::from(job.shard_index))),
            ("seed", Json::int(job.seed)),
            ("packets", Json::int(job.packets)),
            ("model_seeds", Json::Bool(job.model_seeds)),
        ]),
    }
}

/// Decode a wire job of either kind.
pub fn job_from_json(json: &Json) -> Result<JobSpec, WireError> {
    match get_str(json, "kind")? {
        "explore" => Ok(JobSpec::Explore(explore_job_from_json(json)?)),
        "compose" => Ok(JobSpec::Compose(ComposeJob {
            scenario: scenario_spec_from_json(get(json, "scenario")?)?,
            fingerprints: fingerprints_from_json(get_arr(json, "fingerprints")?)?,
        })),
        "temporal" => Ok(JobSpec::Temporal(ComposeJob {
            scenario: scenario_spec_from_json(get(json, "scenario")?)?,
            fingerprints: fingerprints_from_json(get_arr(json, "fingerprints")?)?,
        })),
        "compose-shard" => Ok(JobSpec::ComposeShard(ComposeShardJob {
            scenario: scenario_spec_from_json(get(json, "scenario")?)?,
            fingerprints: fingerprints_from_json(get_arr(json, "fingerprints")?)?,
            scenario_index: u32::try_from(get_u64(json, "scenario_index")?)
                .map_err(|_| malformed("scenario_index exceeds u32"))?,
            start: get_usize(json, "start")?,
            end: get_usize(json, "end")?,
        })),
        "fuzz" => {
            let scenario_index = get_u64(json, "scenario_index")?;
            let shard_index = get_u64(json, "shard_index")?;
            Ok(JobSpec::Fuzz(FuzzJob {
                scenario: scenario_spec_from_json(get(json, "scenario")?)?,
                scenario_index: u32::try_from(scenario_index)
                    .map_err(|_| malformed("scenario_index exceeds u32"))?,
                shard_index: u32::try_from(shard_index)
                    .map_err(|_| malformed("shard_index exceeds u32"))?,
                seed: get_u64(json, "seed")?,
                packets: get_u64(json, "packets")?,
                model_seeds: get_bool(json, "model_seeds")?,
            }))
        }
        other => Err(malformed(format!("unknown job kind '{other}'"))),
    }
}

fn parse_fingerprint(text: &str) -> Result<Fingerprint, WireError> {
    Fingerprint::parse(text).ok_or_else(|| malformed(format!("bad fingerprint '{text}'")))
}

/// Diff bookkeeping attached to a plan built from a `Diff` or `Watch`
/// request: what changed, what was skipped — so the executing process can
/// reproduce the full [`crate::diff::DiffReport`], not only the matrix.
#[derive(Clone, Debug)]
pub struct DiffMeta {
    /// Per-config diff verdicts, in new-set order.
    pub entries: Vec<DiffEntry>,
    /// Old config names absent from the new set.
    pub removed_configs: Vec<String>,
    /// Scenarios skipped because their config was identical.
    pub skipped_scenarios: usize,
}

pub(crate) fn diff_kind_name(kind: DiffKind) -> &'static str {
    match kind {
        DiffKind::Identical => "identical",
        DiffKind::WiringOnly => "wiring-only",
        DiffKind::ElementsChanged => "elements-changed",
        DiffKind::Added => "added",
    }
}

fn diff_kind_from(name: &str) -> Result<DiffKind, WireError> {
    Ok(match name {
        "identical" => DiffKind::Identical,
        "wiring-only" => DiffKind::WiringOnly,
        "elements-changed" => DiffKind::ElementsChanged,
        "added" => DiffKind::Added,
        other => return Err(malformed(format!("unknown diff kind '{other}'"))),
    })
}

/// The one JSON shape of a [`DiffEntry`], shared by plan metadata and
/// `DiffReport` documents.
pub(crate) fn diff_entry_to_json(e: &DiffEntry) -> Json {
    Json::obj([
        ("name", Json::str(&e.name)),
        ("kind", Json::str(diff_kind_name(e.kind))),
        (
            "changed_elements",
            Json::Arr(e.changed_elements.iter().map(Json::str).collect()),
        ),
        ("scenarios_planned", Json::int(e.scenarios_planned as u64)),
    ])
}

fn diff_meta_to_json(meta: &DiffMeta) -> Json {
    Json::obj([
        (
            "entries",
            Json::Arr(meta.entries.iter().map(diff_entry_to_json).collect()),
        ),
        (
            "removed_configs",
            Json::Arr(meta.removed_configs.iter().map(Json::str).collect()),
        ),
        (
            "skipped_scenarios",
            Json::int(meta.skipped_scenarios as u64),
        ),
    ])
}

fn diff_meta_from_json(json: &Json) -> Result<DiffMeta, WireError> {
    Ok(DiffMeta {
        entries: get_arr(json, "entries")?
            .iter()
            .map(|e| {
                Ok(DiffEntry {
                    name: get_str(e, "name")?.to_string(),
                    kind: diff_kind_from(get_str(e, "kind")?)?,
                    changed_elements: str_arr(get_arr(e, "changed_elements")?)?,
                    scenarios_planned: get_usize(e, "scenarios_planned")?,
                })
            })
            .collect::<Result<Vec<_>, WireError>>()?,
        removed_configs: str_arr(get_arr(json, "removed_configs")?)?,
        skipped_scenarios: get_usize(json, "skipped_scenarios")?,
    })
}

/// The first-class, serialisable job plan: everything another process needs
/// to reproduce a verification run bit for bit.
///
/// Scenarios travel as config text (the element factory re-instantiates
/// them), jobs as `type(args)` + content fingerprint, and the options pin
/// the engine/solver budgets the fingerprints were computed under. The
/// dependency edges (`scenario_jobs`) and per-element fingerprints are what
/// a scheduler needs to overlap exploration with composition without
/// re-deriving the decomposition.
#[derive(Clone, Debug)]
pub struct PlanSpec {
    /// The verifier options the plan was built under (and must be executed
    /// under — fingerprints embed the engine configuration).
    pub options: VerifierOptions,
    /// The scenarios to verify, in submission order.
    pub scenarios: Vec<ScenarioSpec>,
    /// One explore job per distinct element behaviour across the whole
    /// batch (regardless of any store's current temperature: the executing
    /// process skips what its own store already holds).
    pub jobs: Vec<ExploreJob>,
    /// Per scenario: indexes into `jobs` its composition depends on.
    pub scenario_jobs: Vec<Vec<usize>>,
    /// Per scenario, per pipeline element: the summary fingerprint its
    /// composition will fetch.
    pub element_fingerprints: Vec<Vec<Fingerprint>>,
    /// Present when the plan was built from a diff/watch request.
    pub diff: Option<DiffMeta>,
    /// Present when the plan was built from an instruction-bound request:
    /// the analysis decided (locally, from the executed summaries) once
    /// the explore jobs have run.
    pub bound: Option<BoundSpec>,
}

/// The instruction-bound analysis section of a plan: which pipeline to
/// bound and the summary fingerprints the analysis consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundSpec {
    /// The pipeline's label.
    pub name: String,
    /// The pipeline as config text.
    pub config: String,
    /// Per pipeline element: the summary fingerprint the analysis reads.
    pub fingerprints: Vec<Fingerprint>,
}

fn bound_spec_to_json(bound: &BoundSpec) -> Json {
    Json::obj([
        ("name", Json::str(&bound.name)),
        ("config", Json::str(&bound.config)),
        ("fingerprints", fingerprints_to_json(&bound.fingerprints)),
    ])
}

fn bound_spec_from_json(json: &Json) -> Result<BoundSpec, WireError> {
    Ok(BoundSpec {
        name: get_str(json, "name")?.to_string(),
        config: get_str(json, "config")?.to_string(),
        fingerprints: fingerprints_from_json(get_arr(json, "fingerprints")?)?,
    })
}

/// Encode a plan.
pub fn plan_to_json(plan: &PlanSpec) -> Json {
    Json::obj([
        ("schema", Json::int(PLAN_SCHEMA)),
        ("options", options_to_json(&plan.options)),
        (
            "scenarios",
            Json::Arr(plan.scenarios.iter().map(scenario_spec_to_json).collect()),
        ),
        (
            "jobs",
            Json::Arr(plan.jobs.iter().map(explore_job_to_json).collect()),
        ),
        (
            "scenario_jobs",
            Json::Arr(
                plan.scenario_jobs
                    .iter()
                    .map(|deps| Json::Arr(deps.iter().map(|&d| Json::int(d as u64)).collect()))
                    .collect(),
            ),
        ),
        (
            "element_fingerprints",
            Json::Arr(
                plan.element_fingerprints
                    .iter()
                    .map(|fps| Json::Arr(fps.iter().map(|fp| Json::str(fp.to_string())).collect()))
                    .collect(),
            ),
        ),
        (
            "diff",
            match &plan.diff {
                Some(meta) => diff_meta_to_json(meta),
                None => Json::Null,
            },
        ),
        (
            "bound",
            match &plan.bound {
                Some(bound) => bound_spec_to_json(bound),
                None => Json::Null,
            },
        ),
    ])
}

/// Decode a plan, validating its internal references (job indexes in range,
/// per-scenario fingerprint lists matching the scenario count).
pub fn plan_from_json(json: &Json) -> Result<PlanSpec, WireError> {
    check_schema(json, PLAN_SCHEMA, "plan")?;
    let scenarios = get_arr(json, "scenarios")?
        .iter()
        .map(scenario_spec_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let jobs = get_arr(json, "jobs")?
        .iter()
        .map(explore_job_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let scenario_jobs = get_arr(json, "scenario_jobs")?
        .iter()
        .map(|deps| {
            deps.as_arr()
                .ok_or_else(|| malformed("scenario_jobs entry is not an array"))?
                .iter()
                .map(|d| {
                    let idx = d
                        .as_u64()
                        .and_then(|v| usize::try_from(v).ok())
                        .ok_or_else(|| malformed("bad job index"))?;
                    if idx >= jobs.len() {
                        return Err(malformed(format!("job index {idx} out of range")));
                    }
                    Ok(idx)
                })
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    let element_fingerprints = get_arr(json, "element_fingerprints")?
        .iter()
        .map(|fps| {
            fps.as_arr()
                .ok_or_else(|| malformed("element_fingerprints entry is not an array"))?
                .iter()
                .map(|fp| {
                    parse_fingerprint(
                        fp.as_str()
                            .ok_or_else(|| malformed("fingerprint is not a string"))?,
                    )
                })
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    if scenario_jobs.len() != scenarios.len() || element_fingerprints.len() != scenarios.len() {
        return Err(malformed(
            "scenario_jobs / element_fingerprints do not match the scenario count",
        ));
    }
    let diff = match get(json, "diff")? {
        Json::Null => None,
        meta => Some(diff_meta_from_json(meta)?),
    };
    let bound = match get(json, "bound")? {
        Json::Null => None,
        spec => Some(bound_spec_from_json(spec)?),
    };
    Ok(PlanSpec {
        options: options_from_json(get(json, "options")?)?,
        scenarios,
        jobs,
        scenario_jobs,
        element_fingerprints,
        diff,
        bound,
    })
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

fn named_configs_to_json(configs: &[crate::diff::NamedConfig]) -> Json {
    Json::Arr(
        configs
            .iter()
            .map(|c| {
                Json::obj([
                    ("name", Json::str(&c.name)),
                    ("config", Json::str(&c.config)),
                ])
            })
            .collect(),
    )
}

fn named_configs_from_json(items: &[Json]) -> Result<Vec<crate::diff::NamedConfig>, WireError> {
    items
        .iter()
        .map(|c| {
            Ok(crate::diff::NamedConfig {
                name: get_str(c, "name")?.to_string(),
                config: get_str(c, "config")?.to_string(),
            })
        })
        .collect()
}

fn property_select_to_json(select: &PropertySelect) -> Json {
    match select {
        PropertySelect::Default => Json::obj([("kind", Json::str("default"))]),
        PropertySelect::Preset => Json::obj([("kind", Json::str("preset"))]),
        PropertySelect::Explicit(properties) => Json::obj([
            ("kind", Json::str("explicit")),
            (
                "properties",
                Json::Arr(properties.iter().map(property_to_json).collect()),
            ),
        ]),
    }
}

fn property_select_from_json(json: &Json) -> Result<PropertySelect, WireError> {
    Ok(match get_str(json, "kind")? {
        "default" => PropertySelect::Default,
        "preset" => PropertySelect::Preset,
        "explicit" => PropertySelect::Explicit(
            get_arr(json, "properties")?
                .iter()
                .map(property_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        ),
        other => return Err(malformed(format!("unknown property selection '{other}'"))),
    })
}

/// Encode a front-door request. `Single` and `Matrix` requests carry their
/// pipelines as config text, so the encoding fails for pipelines containing
/// elements the config language cannot express.
pub fn request_to_json(request: &VerifyRequest) -> Result<Json, WireError> {
    Ok(match request {
        VerifyRequest::Single {
            name,
            pipeline,
            property,
        } => Json::obj([
            ("schema", Json::int(REQUEST_SCHEMA)),
            ("kind", Json::str("single")),
            ("name", Json::str(name)),
            ("config", Json::str(write_config(pipeline)?)),
            ("property", property_to_json(property)),
        ]),
        VerifyRequest::Matrix { scenarios } => Json::obj([
            ("schema", Json::int(REQUEST_SCHEMA)),
            ("kind", Json::str("matrix")),
            (
                "scenarios",
                Json::Arr(
                    scenarios
                        .iter()
                        .map(|s| Ok(scenario_spec_to_json(&ScenarioSpec::from_scenario(s)?)))
                        .collect::<Result<Vec<_>, WireError>>()?,
                ),
            ),
        ]),
        VerifyRequest::Diff {
            old,
            new,
            properties,
        } => Json::obj([
            ("schema", Json::int(REQUEST_SCHEMA)),
            ("kind", Json::str("diff")),
            ("old", named_configs_to_json(old)),
            ("new", named_configs_to_json(new)),
            ("properties", property_select_to_json(properties)),
        ]),
        VerifyRequest::Watch {
            configs,
            properties,
        } => Json::obj([
            ("schema", Json::int(REQUEST_SCHEMA)),
            ("kind", Json::str("watch")),
            ("configs", named_configs_to_json(configs)),
            ("properties", property_select_to_json(properties)),
        ]),
        VerifyRequest::Bound { name, pipeline } => Json::obj([
            ("schema", Json::int(REQUEST_SCHEMA)),
            ("kind", Json::str("bound")),
            ("name", Json::str(name)),
            ("config", Json::str(write_config(pipeline)?)),
        ]),
        VerifyRequest::Conformance {
            scenarios,
            seed,
            packets,
        } => Json::obj([
            ("schema", Json::int(REQUEST_SCHEMA)),
            ("kind", Json::str("conformance")),
            (
                "scenarios",
                Json::Arr(
                    scenarios
                        .iter()
                        .map(|s| Ok(scenario_spec_to_json(&ScenarioSpec::from_scenario(s)?)))
                        .collect::<Result<Vec<_>, WireError>>()?,
                ),
            ),
            ("seed", Json::int(*seed)),
            ("packets", Json::int(*packets)),
        ]),
    })
}

/// Decode a front-door request.
pub fn request_from_json(json: &Json) -> Result<VerifyRequest, WireError> {
    check_schema(json, REQUEST_SCHEMA, "request")?;
    Ok(match get_str(json, "kind")? {
        "single" => VerifyRequest::Single {
            name: get_str(json, "name")?.to_string(),
            pipeline: parse_config(get_str(json, "config")?)?,
            property: property_from_json(get(json, "property")?)?,
        },
        "matrix" => VerifyRequest::Matrix {
            scenarios: get_arr(json, "scenarios")?
                .iter()
                .map(|s| scenario_spec_from_json(s)?.to_scenario())
                .collect::<Result<Vec<_>, _>>()?,
        },
        "diff" => VerifyRequest::Diff {
            old: named_configs_from_json(get_arr(json, "old")?)?,
            new: named_configs_from_json(get_arr(json, "new")?)?,
            properties: property_select_from_json(get(json, "properties")?)?,
        },
        "watch" => VerifyRequest::Watch {
            configs: named_configs_from_json(get_arr(json, "configs")?)?,
            properties: property_select_from_json(get(json, "properties")?)?,
        },
        "bound" => VerifyRequest::Bound {
            name: get_str(json, "name")?.to_string(),
            pipeline: parse_config(get_str(json, "config")?)?,
        },
        "conformance" => VerifyRequest::Conformance {
            scenarios: get_arr(json, "scenarios")?
                .iter()
                .map(|s| scenario_spec_from_json(s)?.to_scenario())
                .collect::<Result<Vec<_>, _>>()?,
            seed: get_u64(json, "seed")?,
            packets: get_u64(json, "packets")?,
        },
        other => return Err(malformed(format!("unknown request kind '{other}'"))),
    })
}

// ---------------------------------------------------------------------------
// Reports (deterministic content only — no wall-clock, no cache weather)
// ---------------------------------------------------------------------------

pub(crate) fn hex_bytes(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

pub(crate) fn bytes_from_hex(text: &str) -> Result<Vec<u8>, WireError> {
    // Work on bytes: slicing the &str at fixed offsets would panic on a
    // (malformed) multi-byte character instead of erroring.
    if !text.is_ascii() {
        return Err(malformed("hex string with non-ASCII characters"));
    }
    if !text.len().is_multiple_of(2) {
        return Err(malformed("odd-length hex string"));
    }
    (0..text.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&text[i..i + 2], 16).map_err(|_| malformed("bad hex byte")))
        .collect()
}

/// The verdict's wire spelling.
pub fn verdict_name(verdict: &Verdict) -> &'static str {
    match verdict {
        Verdict::Proven => "proven",
        Verdict::Violated => "violated",
        Verdict::Unknown => "unknown",
    }
}

fn verdict_from_name(name: &str) -> Result<Verdict, WireError> {
    Ok(match name {
        "proven" => Verdict::Proven,
        "violated" => Verdict::Violated,
        "unknown" => Verdict::Unknown,
        other => return Err(malformed(format!("unknown verdict '{other}'"))),
    })
}

fn stats_to_json(stats: &VerificationStats) -> Json {
    Json::obj([
        ("elements", Json::int(stats.elements as u64)),
        (
            "summaries_computed",
            Json::int(stats.summaries_computed as u64),
        ),
        ("summaries_reused", Json::int(stats.summaries_reused as u64)),
        ("total_segments", Json::int(stats.total_segments as u64)),
        ("suspects", Json::int(stats.suspects as u64)),
        ("discharged", Json::int(stats.discharged as u64)),
        ("composed_paths", Json::int(stats.composed_paths as u64)),
        ("solver_calls", Json::int(stats.solver_calls as u64)),
        (
            "prefilter_decided",
            Json::int(stats.prefilter_decided as u64),
        ),
        ("prefilter_passed", Json::int(stats.prefilter_passed as u64)),
        ("fm_budget_aborts", Json::int(stats.fm_budget_aborts as u64)),
        (
            "model_search_aborts",
            Json::int(stats.model_search_aborts as u64),
        ),
        (
            "budget_escalations",
            Json::int(stats.budget_escalations as u64),
        ),
        (
            "escalations_decided",
            Json::int(stats.escalations_decided as u64),
        ),
        (
            "escalations_by_step",
            Json::Arr(
                stats
                    .escalations_by_step
                    .iter()
                    .map(|&n| Json::int(n as u64))
                    .collect(),
            ),
        ),
        (
            "escalations_fm",
            Json::Arr(
                stats
                    .escalations_fm
                    .iter()
                    .map(|&n| Json::int(n as u64))
                    .collect(),
            ),
        ),
        (
            "escalations_search",
            Json::Arr(
                stats
                    .escalations_search
                    .iter()
                    .map(|&n| Json::int(n as u64))
                    .collect(),
            ),
        ),
        ("buchi_states", Json::int(stats.buchi_states as u64)),
        ("product_states", Json::int(stats.product_states as u64)),
        ("lasso_found", Json::int(stats.lasso_found as u64)),
    ])
}

fn usize_arr(items: &[Json]) -> Result<Vec<usize>, WireError> {
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| malformed("expected an array of unsigned integers"))
        })
        .collect()
}

fn stats_from_json(json: &Json) -> Result<VerificationStats, WireError> {
    Ok(VerificationStats {
        elements: get_usize(json, "elements")?,
        summaries_computed: get_usize(json, "summaries_computed")?,
        summaries_reused: get_usize(json, "summaries_reused")?,
        total_segments: get_usize(json, "total_segments")?,
        suspects: get_usize(json, "suspects")?,
        discharged: get_usize(json, "discharged")?,
        composed_paths: get_usize(json, "composed_paths")?,
        solver_calls: get_usize(json, "solver_calls")?,
        prefilter_decided: get_usize(json, "prefilter_decided")?,
        prefilter_passed: get_usize(json, "prefilter_passed")?,
        fm_budget_aborts: get_usize(json, "fm_budget_aborts")?,
        model_search_aborts: get_usize(json, "model_search_aborts")?,
        budget_escalations: get_usize(json, "budget_escalations")?,
        escalations_decided: get_usize(json, "escalations_decided")?,
        escalations_by_step: usize_arr(get_arr(json, "escalations_by_step")?)?,
        escalations_fm: usize_arr(get_arr(json, "escalations_fm")?)?,
        escalations_search: usize_arr(get_arr(json, "escalations_search")?)?,
        buchi_states: get_usize(json, "buchi_states")?,
        product_states: get_usize(json, "product_states")?,
        lasso_found: get_usize(json, "lasso_found")?,
    })
}

fn counterexample_to_json(ce: &Counterexample) -> Json {
    Json::obj([
        ("packet_hex", Json::str(hex_bytes(&ce.packet))),
        ("path", Json::Arr(ce.path.iter().map(Json::str).collect())),
        ("description", Json::str(&ce.description)),
        ("confirmed", Json::Bool(ce.confirmed)),
    ])
}

fn counterexample_from_json(json: &Json) -> Result<Counterexample, WireError> {
    Ok(Counterexample {
        packet: bytes_from_hex(get_str(json, "packet_hex")?)?,
        path: str_arr(get_arr(json, "path")?)?,
        description: get_str(json, "description")?.to_string(),
        confirmed: get_bool(json, "confirmed")?,
    })
}

fn unproven_to_json(up: &UnprovenPath) -> Json {
    Json::obj([
        ("path", Json::Arr(up.path.iter().map(Json::str).collect())),
        ("reason", Json::str(&up.reason)),
    ])
}

fn unproven_from_json(json: &Json) -> Result<UnprovenPath, WireError> {
    Ok(UnprovenPath {
        path: str_arr(get_arr(json, "path")?)?,
        reason: get_str(json, "reason")?.to_string(),
    })
}

// ---------------------------------------------------------------------------
// Compose-shard results
// ---------------------------------------------------------------------------

fn check_record_to_json(check: &CheckRecord) -> Json {
    let outcome = match &check.outcome {
        CheckOutcome::Discharged => Json::obj([("kind", Json::str("discharged"))]),
        CheckOutcome::Violation(ce) => Json::obj([
            ("kind", Json::str("violation")),
            ("counterexample", counterexample_to_json(ce)),
        ]),
        CheckOutcome::Undecided(up) => Json::obj([
            ("kind", Json::str("undecided")),
            ("unproven", unproven_to_json(up)),
        ]),
    };
    Json::obj([
        ("outcome", outcome),
        ("fm_exhausted", Json::Bool(check.diag.fm_budget_exhausted)),
        (
            "search_exhausted",
            Json::Bool(check.diag.model_search_exhausted),
        ),
        ("escalated", Json::Bool(check.escalated)),
        (
            "decided_at_rung",
            match check.decided_at_rung {
                Some(rung) => Json::int(rung as u64),
                None => Json::Null,
            },
        ),
        ("raised_fm", Json::Bool(check.raised_fm)),
        ("raised_search", Json::Bool(check.raised_search)),
        ("prefiltered", Json::Bool(check.prefiltered)),
    ])
}

fn check_record_from_json(json: &Json) -> Result<CheckRecord, WireError> {
    let outcome = get(json, "outcome")?;
    let outcome = match get_str(outcome, "kind")? {
        "discharged" => CheckOutcome::Discharged,
        "violation" => {
            CheckOutcome::Violation(counterexample_from_json(get(outcome, "counterexample")?)?)
        }
        "undecided" => CheckOutcome::Undecided(unproven_from_json(get(outcome, "unproven")?)?),
        other => return Err(malformed(format!("unknown check outcome '{other}'"))),
    };
    Ok(CheckRecord {
        outcome,
        diag: CheckDiagnostics {
            fm_budget_exhausted: get_bool(json, "fm_exhausted")?,
            model_search_exhausted: get_bool(json, "search_exhausted")?,
        },
        escalated: get_bool(json, "escalated")?,
        decided_at_rung: match get(json, "decided_at_rung")? {
            Json::Null => None,
            v => Some(
                v.as_u64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| malformed("decided_at_rung is not an unsigned integer"))?,
            ),
        },
        raised_fm: get_bool(json, "raised_fm")?,
        raised_search: get_bool(json, "raised_search")?,
        prefiltered: get_bool(json, "prefiltered")?,
    })
}

fn shard_edge_to_json(edge: &ShardEdge) -> Json {
    Json::obj([
        ("prefiltered", Json::Bool(edge.prefiltered)),
        ("pruned_call", Json::Bool(edge.pruned_call)),
        ("feasible", Json::Bool(edge.feasible)),
    ])
}

fn shard_edge_from_json(json: &Json) -> Result<ShardEdge, WireError> {
    Ok(ShardEdge {
        prefiltered: get_bool(json, "prefiltered")?,
        pruned_call: get_bool(json, "pruned_call")?,
        feasible: get_bool(json, "feasible")?,
    })
}

/// Encode what one `ComposeShard` job computed: the per-node records (each
/// byte-identical to what the fold would compute inline), whether the shard
/// was cancelled before covering its range, the unit range handed back when
/// a `split` frame interrupted the walk (`remainder`, requeued by the
/// coordinator to an idle worker), and the per-node solver timings the
/// service feeds into shard-width calibration. A check or edge slot is
/// `null` when the corresponding work unit lies outside the shard's range —
/// the fold computes those slots inline or takes them from another shard.
pub fn shard_result_to_json(result: &ComposeShardResult) -> Json {
    Json::obj([
        (
            "records",
            Json::Arr(
                result
                    .records
                    .iter()
                    .map(|rec| {
                        Json::obj([
                            ("index", Json::int(rec.index as u64)),
                            (
                                "checks",
                                Json::Arr(
                                    rec.checks
                                        .iter()
                                        .map(|slot| match slot {
                                            Some(check) => check_record_to_json(check),
                                            None => Json::Null,
                                        })
                                        .collect(),
                                ),
                            ),
                            (
                                "edges",
                                Json::Arr(
                                    rec.edges
                                        .iter()
                                        .map(|slot| match slot {
                                            Some(edge) => shard_edge_to_json(edge),
                                            None => Json::Null,
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("cancelled", Json::Bool(result.cancelled)),
        (
            "remainder",
            match result.remainder {
                Some((start, end)) => {
                    Json::Arr(vec![Json::int(start as u64), Json::int(end as u64)])
                }
                None => Json::Null,
            },
        ),
        (
            "timings",
            Json::Arr(
                result
                    .timings
                    .iter()
                    .map(|t| {
                        Json::obj([
                            ("index", Json::int(t.index as u64)),
                            ("units", Json::int(t.units as u64)),
                            ("ns", Json::int(t.ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decode a `ComposeShard` job result.
pub fn shard_result_from_json(json: &Json) -> Result<ComposeShardResult, WireError> {
    Ok(ComposeShardResult {
        records: get_arr(json, "records")?
            .iter()
            .map(|rec| {
                Ok(ShardNodeRecord {
                    index: get_usize(rec, "index")?,
                    checks: get_arr(rec, "checks")?
                        .iter()
                        .map(|slot| match slot {
                            Json::Null => Ok(None),
                            v => check_record_from_json(v).map(Some),
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    edges: get_arr(rec, "edges")?
                        .iter()
                        .map(|slot| match slot {
                            Json::Null => Ok(None),
                            v => shard_edge_from_json(v).map(Some),
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                })
            })
            .collect::<Result<Vec<_>, WireError>>()?,
        cancelled: get_bool(json, "cancelled")?,
        remainder: match get(json, "remainder")? {
            Json::Null => None,
            Json::Arr(pair) if pair.len() == 2 => {
                let num = |v: &Json| {
                    v.as_u64()
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or_else(|| malformed("remainder bound is not an unsigned integer"))
                };
                Some((num(&pair[0])?, num(&pair[1])?))
            }
            _ => return Err(malformed("remainder is not null or a two-element array")),
        },
        timings: get_arr(json, "timings")?
            .iter()
            .map(|t| {
                Ok(dataplane_verifier::ShardTiming {
                    index: get_usize(t, "index")?,
                    units: get_usize(t, "units")?,
                    ns: get(t, "ns")?
                        .as_u64()
                        .ok_or_else(|| malformed("timing ns is not an unsigned integer"))?,
                })
            })
            .collect::<Result<Vec<_>, WireError>>()?,
    })
}

/// Encode everything deterministic about a report: the verdict, the full
/// counterexamples (packet bytes included), the unproven paths, and the
/// work statistics — but no wall-clock times. Two runs of the same
/// scenarios under the same options produce byte-identical documents,
/// whatever process, scheduler, or cache temperature produced them.
pub fn report_to_json(report: &Report) -> Json {
    Json::obj([
        ("property", Json::str(report.property.name())),
        ("verdict", Json::str(verdict_name(&report.verdict))),
        (
            "counterexamples",
            Json::Arr(
                report
                    .counterexamples
                    .iter()
                    .map(counterexample_to_json)
                    .collect(),
            ),
        ),
        (
            "unproven",
            Json::Arr(report.unproven.iter().map(unproven_to_json).collect()),
        ),
        ("stats", stats_to_json(&report.stats)),
    ])
}

/// Decode a report produced by [`report_to_json`]. The wire form carries
/// only the property's *name*, so the full `property` (whose parameters a
/// composition job already knows) is supplied by the caller; `elapsed` is
/// operational data carried outside the deterministic document and is
/// likewise supplied. Re-encoding the result reproduces the input byte for
/// byte — the invariant the remote-composition path rests on.
pub fn report_from_json(
    json: &Json,
    property: Property,
    elapsed: Duration,
) -> Result<Report, WireError> {
    let name = get_str(json, "property")?;
    if name != property.name() {
        return Err(malformed(format!(
            "report is for property '{name}', expected '{}'",
            property.name()
        )));
    }
    Ok(Report {
        property,
        verdict: verdict_from_name(get_str(json, "verdict")?)?,
        counterexamples: get_arr(json, "counterexamples")?
            .iter()
            .map(counterexample_from_json)
            .collect::<Result<Vec<_>, WireError>>()?,
        unproven: get_arr(json, "unproven")?
            .iter()
            .map(unproven_from_json)
            .collect::<Result<Vec<_>, WireError>>()?,
        stats: stats_from_json(get(json, "stats")?)?,
        elapsed,
    })
}

/// Encode everything deterministic about an instruction-bound analysis
/// (the witness packet is a deterministic function of the summaries and
/// solver seed, so it belongs here; wall-clock time does not).
pub fn bound_report_to_json(report: &dataplane_verifier::InstructionBoundReport) -> Json {
    Json::obj([
        ("max_instructions", Json::int(report.max_instructions)),
        (
            "witness_hex",
            match &report.witness {
                Some(bytes) => Json::str(hex_bytes(bytes)),
                None => Json::Null,
            },
        ),
        (
            "path",
            Json::Arr(report.path.iter().map(Json::str).collect()),
        ),
        ("approximate", Json::Bool(report.approximate)),
        (
            "paths_considered",
            Json::int(report.paths_considered as u64),
        ),
        ("feasible_paths", Json::int(report.feasible_paths as u64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{preset_properties, preset_scenarios};

    #[test]
    fn properties_round_trip() {
        for name in ["ip_router", "middlebox", "buggy"] {
            for property in preset_properties(name) {
                let json = property_to_json(&property);
                let text = json.to_text();
                let back = property_from_json(&Json::parse(&text).unwrap()).unwrap();
                assert_eq!(back, property);
            }
        }
        // Temporal specs travel as canonical source text and re-parse to
        // structurally equal formulas (including header atoms).
        let spec = LtlSpec::parse("G (dst(10.0.0.1) -> F (forwarded | dropped))").unwrap();
        let property = Property::Temporal(spec);
        let text = property_to_json(&property).to_text();
        let back = property_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, property);
        // A malformed spec on the wire is a decode error, not a panic.
        let bad = Json::obj([
            ("kind", Json::str("temporal")),
            ("spec", Json::str("G (forwarded")),
        ]);
        assert!(property_from_json(&bad).is_err());
    }

    #[test]
    fn options_round_trip_everything_but_the_executor() {
        let options = VerifierOptions {
            prune_prefixes: false,
            validate_counterexamples: false,
            max_composed_paths: 1234,
            escalate_budgets: false,
            ladder: EscalationLadder {
                factor: 4,
                steps: 3,
                wall_cap: Some(Duration::from_millis(250)),
            },
            ..VerifierOptions::default()
        };
        let text = options_to_json(&options).to_text();
        let back = options_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.prune_prefixes, options.prune_prefixes);
        assert_eq!(
            back.validate_counterexamples,
            options.validate_counterexamples
        );
        assert_eq!(back.max_composed_paths, options.max_composed_paths);
        assert_eq!(back.escalate_budgets, options.escalate_budgets);
        assert_eq!(back.ladder, options.ladder);
        assert_eq!(back.solver.search_seed, options.solver.search_seed);
        assert_eq!(back.engine.max_segments, options.engine.max_segments);
        assert!(!back.parallel.is_parallel(), "executors never travel");
    }

    #[test]
    fn scenario_specs_round_trip_every_preset_scenario() {
        for scenario in preset_scenarios() {
            let spec = ScenarioSpec::from_scenario(&scenario).unwrap();
            let text = scenario_spec_to_json(&spec).to_text();
            let back = scenario_spec_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec);
            let rebuilt = back.to_scenario().unwrap();
            assert_eq!(rebuilt.pipeline_name, scenario.pipeline_name);
            assert_eq!(rebuilt.property, scenario.property);
            assert_eq!(rebuilt.pipeline.len(), scenario.pipeline.len());
        }
    }

    #[test]
    fn jobs_round_trip_including_compose() {
        let scenario = preset_scenarios().remove(0);
        let spec = ScenarioSpec::from_scenario(&scenario).unwrap();
        let fp = crate::fingerprint::fingerprint_bytes("some element behaviour");
        for job in [
            JobSpec::Explore(ExploreJob {
                fingerprint: fp,
                type_name: "DecTTL".into(),
                config_args: String::new(),
            }),
            JobSpec::Compose(ComposeJob {
                scenario: spec.clone(),
                fingerprints: vec![fp, fp],
            }),
            JobSpec::Temporal(ComposeJob {
                scenario: ScenarioSpec {
                    property: Property::Temporal(
                        LtlSpec::parse("F (forwarded | dropped)").unwrap(),
                    ),
                    ..spec
                },
                fingerprints: vec![fp],
            }),
        ] {
            let text = job_to_json(&job).to_text();
            let back = job_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, job);
            assert_eq!(job_to_json(&back).to_text(), text, "re-encoding is stable");
        }
        assert!(job_from_json(&Json::obj([("kind", Json::str("warp"))])).is_err());
    }

    #[test]
    fn reports_round_trip_byte_for_byte() {
        use dataplane_verifier::{Counterexample, UnprovenPath, VerificationStats};
        let report = Report {
            property: Property::CrashFreedom,
            verdict: Verdict::Violated,
            counterexamples: vec![Counterexample {
                packet: vec![0x00, 0xff, 0x7e, 0x01],
                path: vec!["cls".into(), "opts".into()],
                description: "division by zero".into(),
                confirmed: true,
            }],
            unproven: vec![UnprovenPath {
                path: vec!["cls".into()],
                reason: "model search exhausted".into(),
            }],
            stats: VerificationStats {
                elements: 5,
                suspects: 2,
                escalations_by_step: vec![1, 2],
                escalations_fm: vec![0, 2],
                escalations_search: vec![1],
                buchi_states: 7,
                product_states: 42,
                lasso_found: 1,
                ..Default::default()
            },
            elapsed: Duration::from_millis(5),
        };
        let text = report_to_json(&report).to_text();
        let back = report_from_json(
            &Json::parse(&text).unwrap(),
            Property::CrashFreedom,
            report.elapsed,
        )
        .unwrap();
        assert_eq!(
            report_to_json(&back).to_text(),
            text,
            "decode → re-encode is byte-stable"
        );
        assert_eq!(back.counterexamples, report.counterexamples);
        assert_eq!(back.stats, report.stats);
        // The wire form names the property; decoding under a different one
        // must fail instead of mislabeling the report.
        assert!(report_from_json(
            &Json::parse(&text).unwrap(),
            Property::BoundedInstructions {
                max_instructions: 1
            },
            Duration::ZERO,
        )
        .is_err());
    }

    #[test]
    fn malformed_documents_are_rejected_with_context() {
        assert!(property_from_json(&Json::obj([("kind", Json::str("warp"))])).is_err());
        assert!(plan_from_json(&Json::obj([("schema", Json::int(99))])).is_err());
        assert!(request_from_json(&Json::obj([
            ("schema", Json::int(REQUEST_SCHEMA)),
            ("kind", Json::str("nope")),
        ]))
        .is_err());
        // A plan whose dependency edges point outside the job table must
        // not decode (execution would index out of bounds).
        let bogus = Json::obj([
            ("schema", Json::int(PLAN_SCHEMA)),
            ("options", options_to_json(&VerifierOptions::default())),
            ("scenarios", Json::Arr(vec![])),
            ("jobs", Json::Arr(vec![])),
            (
                "scenario_jobs",
                Json::Arr(vec![Json::Arr(vec![Json::int(7)])]),
            ),
            ("element_fingerprints", Json::Arr(vec![])),
            ("diff", Json::Null),
        ]);
        assert!(plan_from_json(&bogus).is_err());
    }

    #[test]
    fn counterexample_packets_round_trip_losslessly() {
        // Every possible byte value must survive the hex encoding, so a
        // decoded report.json replays the exact packet the solver built.
        let packet: Vec<u8> = (0..=255u8).collect();
        let ce = Counterexample {
            packet: packet.clone(),
            path: vec!["cls".into(), "chk".into()],
            description: "synthetic".into(),
            confirmed: true,
        };
        let json = counterexample_to_json(&ce);
        let text = json.to_text();
        let doc = Json::parse(&text).unwrap();
        let back = bytes_from_hex(get_str(&doc, "packet_hex").unwrap()).unwrap();
        assert_eq!(back, packet);
    }

    #[test]
    fn hex_decode_is_panic_free_on_malformed_input() {
        assert!(bytes_from_hex("0").is_err(), "odd length");
        assert!(bytes_from_hex("zz").is_err(), "non-hex digit");
        assert!(bytes_from_hex("caf\u{e9}").is_err(), "non-ASCII");
        assert_eq!(bytes_from_hex("").unwrap(), Vec::<u8>::new());
        assert_eq!(bytes_from_hex("00ff10").unwrap(), vec![0x00, 0xff, 0x10]);
    }

    #[test]
    fn compose_shard_jobs_round_trip() {
        let scenario = preset_scenarios().remove(0);
        let fp = crate::fingerprint::fingerprint_bytes("behaviour");
        let job = JobSpec::ComposeShard(ComposeShardJob {
            scenario: ScenarioSpec::from_scenario(&scenario).unwrap(),
            fingerprints: vec![fp, fp, fp],
            scenario_index: 7,
            start: 3,
            end: 19,
        });
        let text = job_to_json(&job).to_text();
        let back = job_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, job);
        assert_eq!(job_to_json(&back).to_text(), text, "re-encoding is stable");
    }

    #[test]
    fn shard_results_round_trip_byte_for_byte() {
        let result = ComposeShardResult {
            records: vec![
                ShardNodeRecord {
                    index: 4,
                    checks: vec![
                        Some(CheckRecord {
                            outcome: CheckOutcome::Discharged,
                            diag: CheckDiagnostics::default(),
                            escalated: false,
                            decided_at_rung: None,
                            raised_fm: false,
                            raised_search: false,
                            prefiltered: true,
                        }),
                        None,
                        Some(CheckRecord {
                            outcome: CheckOutcome::Violation(Counterexample {
                                packet: vec![0x45, 0x00, 0xff],
                                path: vec!["cls".into(), "chk".into()],
                                description: "division by zero".into(),
                                confirmed: true,
                            }),
                            diag: CheckDiagnostics {
                                fm_budget_exhausted: true,
                                model_search_exhausted: false,
                            },
                            escalated: true,
                            decided_at_rung: Some(2),
                            raised_fm: true,
                            raised_search: false,
                            prefiltered: false,
                        }),
                        Some(CheckRecord {
                            outcome: CheckOutcome::Undecided(UnprovenPath {
                                path: vec!["cls".into()],
                                reason: "model search exhausted its tries".into(),
                            }),
                            diag: CheckDiagnostics {
                                fm_budget_exhausted: false,
                                model_search_exhausted: true,
                            },
                            escalated: false,
                            decided_at_rung: None,
                            raised_fm: false,
                            raised_search: true,
                            prefiltered: false,
                        }),
                    ],
                    edges: vec![
                        Some(ShardEdge {
                            prefiltered: true,
                            pruned_call: false,
                            feasible: false,
                        }),
                        None,
                        Some(ShardEdge {
                            prefiltered: false,
                            pruned_call: true,
                            feasible: true,
                        }),
                    ],
                },
                ShardNodeRecord {
                    index: 5,
                    checks: vec![],
                    edges: vec![],
                },
            ],
            cancelled: true,
            remainder: Some((12, 40)),
            timings: vec![
                dataplane_verifier::ShardTiming {
                    index: 4,
                    units: 3,
                    ns: 812_500,
                },
                dataplane_verifier::ShardTiming {
                    index: 5,
                    units: 1,
                    ns: 91_000,
                },
            ],
        };
        let text = shard_result_to_json(&result).to_text();
        let back = shard_result_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, result);
        assert_eq!(
            shard_result_to_json(&back).to_text(),
            text,
            "decode → re-encode is byte-stable"
        );
    }

    #[test]
    fn fuzz_jobs_round_trip() {
        let scenario = preset_scenarios().remove(0);
        let job = JobSpec::Fuzz(FuzzJob {
            scenario: ScenarioSpec::from_scenario(&scenario).unwrap(),
            scenario_index: 3,
            shard_index: 17,
            seed: 0xFEED_5EED,
            packets: 4096,
            model_seeds: true,
        });
        let text = job_to_json(&job).to_text();
        let back = job_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, job);
        assert!(
            job_from_json(&Json::obj([("kind", Json::str("fuzzz"))])).is_err(),
            "unknown job kinds are rejected"
        );
    }
}

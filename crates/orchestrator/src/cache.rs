//! The content-addressed summary store: an in-memory tier shared by all
//! worker threads, backed by an optional JSON persistent tier on disk.
//!
//! Keys are [`Fingerprint`]s of the element's behaviour + engine
//! configuration, so the store never confuses summaries across element
//! edits: change one element and only its key changes — re-verifying a
//! pipeline then re-explores exactly that element, every other summary is a
//! hit. That is the paper's "embarrassingly cacheable" property made
//! operational.

use crate::fingerprint::Fingerprint;
use crate::json::Json;
use crate::persist::{summary_from_json, summary_to_json};
use dataplane_verifier::ElementSummary;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters describing how the store served lookups.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the in-memory tier.
    pub memory_hits: u64,
    /// Lookups served by decoding a persisted JSON summary.
    pub disk_hits: u64,
    /// Lookups that found nothing (the element must be explored).
    pub misses: u64,
    /// Summaries written to the persistent tier.
    pub persisted: u64,
    /// Persistent-tier files that failed to read or decode (treated as
    /// misses; the summary is recomputed and rewritten).
    pub disk_errors: u64,
}

impl CacheStats {
    /// Total hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }
}

/// A thread-safe, two-tier, content-addressed summary cache.
#[derive(Debug, Default)]
pub struct SummaryStore {
    memory: Mutex<HashMap<Fingerprint, Arc<ElementSummary>>>,
    persist_dir: Option<PathBuf>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    persisted: AtomicU64,
    disk_errors: AtomicU64,
}

impl SummaryStore {
    /// A store with only the in-memory tier.
    pub fn in_memory() -> Self {
        SummaryStore::default()
    }

    /// A store that additionally persists summaries as JSON files under
    /// `dir` (one file per fingerprint), creating the directory if needed.
    pub fn persistent(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SummaryStore {
            persist_dir: Some(dir),
            ..SummaryStore::default()
        })
    }

    /// The persistent directory, if the store has one.
    pub fn persist_dir(&self) -> Option<&Path> {
        self.persist_dir.as_deref()
    }

    fn file_for(&self, fingerprint: Fingerprint) -> Option<PathBuf> {
        self.persist_dir
            .as_ref()
            .map(|d| d.join(format!("{fingerprint}.json")))
    }

    /// Look up the summary for `fingerprint`, trying memory then disk.
    pub fn get(&self, fingerprint: Fingerprint) -> Option<Arc<ElementSummary>> {
        if let Some(summary) = self
            .memory
            .lock()
            .expect("summary store lock")
            .get(&fingerprint)
        {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            return Some(summary.clone());
        }
        if let Some(path) = self.file_for(fingerprint) {
            match std::fs::read_to_string(&path) {
                Ok(text) => match Json::parse(&text)
                    .map_err(|e| e.to_string())
                    .and_then(|j| summary_from_json(&j).map_err(|e| e.to_string()))
                {
                    Ok(summary) => {
                        let summary = Arc::new(summary);
                        self.memory
                            .lock()
                            .expect("summary store lock")
                            .insert(fingerprint, summary.clone());
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        return Some(summary);
                    }
                    Err(_) => {
                        // Corrupt file: drop it so the rewrite below is clean.
                        self.disk_errors.fetch_add(1, Ordering::Relaxed);
                        let _ = std::fs::remove_file(&path);
                    }
                },
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(_) => {
                    self.disk_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Install a freshly computed summary under `fingerprint`, writing the
    /// persistent tier when configured. The file is written to a unique
    /// temporary name and renamed into place, so concurrent readers (or a
    /// crash mid-write) never observe a torn document. Disk failures are
    /// counted but do not fail the insert — the in-memory tier is
    /// authoritative for this process.
    pub fn insert(&self, fingerprint: Fingerprint, summary: Arc<ElementSummary>) {
        if let (Some(path), Some(dir)) = (self.file_for(fingerprint), &self.persist_dir) {
            static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
            let temp = dir.join(format!(
                "{fingerprint}.tmp-{}-{}",
                std::process::id(),
                TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let text = summary_to_json(&summary).to_text();
            let written = std::fs::write(&temp, text).and_then(|()| std::fs::rename(&temp, &path));
            match written {
                Ok(()) => {
                    self.persisted.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    let _ = std::fs::remove_file(&temp);
                    self.disk_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.memory
            .lock()
            .expect("summary store lock")
            .insert(fingerprint, summary);
    }

    /// Number of summaries resident in memory.
    pub fn len(&self) -> usize {
        self.memory.lock().expect("summary store lock").len()
    }

    /// True if the in-memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop the in-memory tier (persisted files are kept); used by tests to
    /// force the disk path.
    pub fn clear_memory(&self) {
        self.memory.lock().expect("summary store lock").clear();
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            persisted: self.persisted.load(Ordering::Relaxed),
            disk_errors: self.disk_errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane_pipeline::elements::DecTTL;
    use dataplane_pipeline::Element;
    use dataplane_symbex::{explore, EngineConfig};
    use std::time::Duration;

    fn dec_ttl_summary() -> Arc<ElementSummary> {
        let element = DecTTL::new();
        let exploration = explore(&element.model(), &EngineConfig::decomposed()).unwrap();
        Arc::new(ElementSummary {
            type_name: element.type_name().to_string(),
            config_key: element.config_key(),
            exploration,
            explore_time: Duration::from_millis(1),
        })
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vericlick-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_tier_hits_and_misses() {
        let store = SummaryStore::in_memory();
        let fp = Fingerprint(1, 2);
        assert!(store.get(fp).is_none());
        store.insert(fp, dec_ttl_summary());
        let summary = store.get(fp).expect("hit");
        assert_eq!(summary.type_name, "DecTTL");
        let stats = store.stats();
        assert_eq!(stats.memory_hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.disk_hits, 0);
        assert_eq!(stats.persisted, 0);
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn persistent_tier_survives_memory_loss() {
        let dir = temp_dir("persist");
        let store = SummaryStore::persistent(&dir).unwrap();
        assert_eq!(store.persist_dir(), Some(dir.as_path()));
        let fp = Fingerprint(3, 4);
        store.insert(fp, dec_ttl_summary());
        assert_eq!(store.stats().persisted, 1);

        // Same store, memory dropped: served from disk.
        store.clear_memory();
        let summary = store.get(fp).expect("disk hit");
        assert!(summary.segment_count() >= 2);
        assert_eq!(store.stats().disk_hits, 1);

        // A brand-new store over the same directory also sees it.
        let fresh = SummaryStore::persistent(&dir).unwrap();
        assert!(fresh.get(fp).is_some());
        assert_eq!(fresh.stats().disk_hits, 1);
        assert_eq!(fresh.stats().misses, 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_dropped_and_recomputed() {
        let dir = temp_dir("corrupt");
        let store = SummaryStore::persistent(&dir).unwrap();
        let fp = Fingerprint(5, 6);
        std::fs::write(dir.join(format!("{fp}.json")), "{not json").unwrap();
        assert!(store.get(fp).is_none());
        let stats = store.stats();
        assert_eq!(stats.disk_errors, 1);
        assert_eq!(stats.misses, 1);
        // The corrupt file was removed; inserting rewrites it cleanly.
        store.insert(fp, dec_ttl_summary());
        store.clear_memory();
        assert!(store.get(fp).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The content-addressed summary store: an in-memory tier shared by all
//! worker threads, backed by an optional JSON persistent tier on disk.
//!
//! Keys are [`Fingerprint`]s of the element's behaviour + engine
//! configuration, so the store never confuses summaries across element
//! edits: change one element and only its key changes — re-verifying a
//! pipeline then re-explores exactly that element, every other summary is a
//! hit. That is the paper's "embarrassingly cacheable" property made
//! operational.

use crate::fingerprint::{fingerprint_bytes, Fingerprint};
use crate::json::Json;
use crate::persist::ManifestEntry;
use crate::persist::{manifest_from_json, manifest_to_json, summary_from_json, summary_to_json};
use dataplane_verifier::ElementSummary;
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default size bound for the persistent tier's directory (the JSON summary
/// files; the manifest itself is not counted). Summaries are a few KiB to a
/// few hundred KiB each, so this comfortably holds thousands of element
/// behaviours while bounding a long-lived cache directory.
pub const DEFAULT_PERSIST_BYTES: u64 = 64 * 1024 * 1024;

/// File name of the cache-directory manifest.
pub(crate) const MANIFEST_FILE: &str = "manifest.json";

/// File name of the persisted shard-cost calibration table.
pub(crate) const CALIBRATION_FILE: &str = "calibration.json";

/// Cumulative observed Step-2 solver cost of one element behaviour, fed
/// back from [`dataplane_verifier::ShardTiming`] records: how many shard
/// work units of this element's nodes were computed, and the wall-clock
/// nanoseconds they took. The ratio is the calibrated per-unit cost that
/// `--compose-shard auto` weighs outline nodes with. Operational data
/// only — it places shard cuts, never alters a deterministic report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnitCost {
    /// Shard work units observed.
    pub units: u64,
    /// Wall-clock nanoseconds those units took.
    pub ns: u64,
}

/// Counters describing how the store served lookups.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the in-memory tier.
    pub memory_hits: u64,
    /// Lookups served by decoding a persisted JSON summary.
    pub disk_hits: u64,
    /// Lookups that found nothing (the element must be explored).
    pub misses: u64,
    /// Summaries written to the persistent tier.
    pub persisted: u64,
    /// Persistent-tier files that failed to read or decode, or whose content
    /// hash did not match the manifest checksum (treated as misses; the
    /// summary is recomputed and rewritten).
    pub disk_errors: u64,
    /// Summary files evicted to keep the persistent directory under its size
    /// bound (least-recently-used first).
    pub evicted: u64,
}

impl CacheStats {
    /// Total hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }

    /// The activity between two snapshots of a store's counters
    /// (`after - before`, field-wise) — what one run contributed.
    pub fn delta(before: &CacheStats, after: &CacheStats) -> CacheStats {
        CacheStats {
            memory_hits: after.memory_hits - before.memory_hits,
            disk_hits: after.disk_hits - before.disk_hits,
            misses: after.misses - before.misses,
            persisted: after.persisted - before.persisted,
            disk_errors: after.disk_errors - before.disk_errors,
            evicted: after.evicted - before.evicted,
        }
    }
}

/// A thread-safe, two-tier, content-addressed summary cache.
#[derive(Debug, Default)]
pub struct SummaryStore {
    memory: Mutex<HashMap<Fingerprint, Arc<ElementSummary>>>,
    persist_dir: Option<PathBuf>,
    /// Size bound for the persistent directory's summary files.
    max_persist_bytes: u64,
    /// The persistent directory's manifest, least-recently-used first.
    /// Every summary file the tier trusts has an entry with the content
    /// hash it was written with; the on-disk copy (`manifest.json`) is
    /// rewritten atomically whenever the entries change.
    manifest: Mutex<Vec<ManifestEntry>>,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    persisted: AtomicU64,
    disk_errors: AtomicU64,
    evicted: AtomicU64,
    /// Observed shard cost per element behaviour (see [`UnitCost`]),
    /// keyed like the summaries themselves. Loaded from
    /// [`CALIBRATION_FILE`] when the store is persistent.
    costs: Mutex<BTreeMap<Fingerprint, UnitCost>>,
}

/// Read and decode `dir`'s manifest (empty on any failure — every file then
/// counts as unvouched and is recomputed rather than trusted).
fn read_manifest(dir: &Path) -> Vec<ManifestEntry> {
    std::fs::read_to_string(dir.join(MANIFEST_FILE))
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|json| manifest_from_json(&json).ok())
        .unwrap_or_default()
}

/// Read and decode `dir`'s shard-cost calibration table (empty on any
/// failure — calibration is a planning hint, so a corrupt file degrades
/// to uniform shard cuts, never to an error).
fn read_calibration(dir: &Path) -> BTreeMap<Fingerprint, UnitCost> {
    let Some(json) = std::fs::read_to_string(dir.join(CALIBRATION_FILE))
        .ok()
        .and_then(|text| Json::parse(&text).ok())
    else {
        return BTreeMap::new();
    };
    let Some(Json::Obj(entries)) = json.get("costs").cloned() else {
        return BTreeMap::new();
    };
    entries
        .iter()
        .filter_map(|(key, doc)| {
            let fp = Fingerprint::parse(key)?;
            let units = doc.get("units").and_then(Json::as_u64)?;
            let ns = doc.get("ns").and_then(Json::as_u64)?;
            Some((fp, UnitCost { units, ns }))
        })
        .collect()
}

/// Insert `disk` entries for files `manifest` does not track at the
/// least-recently-used end (their true recency is unknown, so they are the
/// first eviction candidates).
fn adopt_unknown_entries(manifest: &mut Vec<ManifestEntry>, disk: &[ManifestEntry]) {
    for entry in disk {
        if !manifest.iter().any(|e| e.file == entry.file) {
            manifest.insert(0, entry.clone());
        }
    }
}

impl SummaryStore {
    /// A store with only the in-memory tier.
    pub fn in_memory() -> Self {
        SummaryStore::default()
    }

    /// A store that additionally persists summaries as JSON files under
    /// `dir` (one file per fingerprint), creating the directory if needed.
    /// The directory is bounded at [`DEFAULT_PERSIST_BYTES`]; see
    /// [`SummaryStore::persistent_with_limit`].
    pub fn persistent(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        SummaryStore::persistent_with_limit(dir, DEFAULT_PERSIST_BYTES)
    }

    /// A persistent store whose summary files are bounded at `max_bytes`
    /// total: when an insert pushes the directory over the bound, the
    /// least-recently-used files are evicted (the manifest records use
    /// order across processes). An existing `manifest.json` under `dir` is
    /// loaded; files the manifest does not vouch for — or whose content
    /// hash no longer matches — are never trusted, so a corrupted or
    /// half-written cache directory degrades to recomputation, not to
    /// wrong summaries.
    pub fn persistent_with_limit(dir: impl Into<PathBuf>, max_bytes: u64) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let manifest = read_manifest(&dir);
        let costs = read_calibration(&dir);
        Ok(SummaryStore {
            persist_dir: Some(dir),
            max_persist_bytes: max_bytes,
            manifest: Mutex::new(manifest),
            costs: Mutex::new(costs),
            ..SummaryStore::default()
        })
    }

    /// Accumulate observed shard cost for one element behaviour — the
    /// calibration feedback from a [`dataplane_verifier::ShardTiming`].
    pub fn record_unit_cost(&self, fingerprint: Fingerprint, units: u64, ns: u64) {
        if units == 0 {
            return;
        }
        let mut costs = self.costs.lock().expect("calibration table");
        let entry = costs.entry(fingerprint).or_default();
        entry.units = entry.units.saturating_add(units);
        entry.ns = entry.ns.saturating_add(ns);
    }

    /// The calibrated per-unit cost (nanoseconds) of `fingerprint`'s
    /// nodes, if any shard visit has been observed for it.
    pub fn unit_cost_ns(&self, fingerprint: Fingerprint) -> Option<u64> {
        let costs = self.costs.lock().expect("calibration table");
        let entry = costs.get(&fingerprint)?;
        if entry.units == 0 {
            return None;
        }
        Some((entry.ns / entry.units).max(1))
    }

    /// Write the calibration table to the persistent tier (best-effort: a
    /// write failure loses nothing but warm-up on the next process). A
    /// memory-only store keeps the table for its own lifetime.
    pub fn flush_calibration(&self) {
        let Some(dir) = self.persist_dir.as_ref() else {
            return;
        };
        let doc = {
            let costs = self.costs.lock().expect("calibration table");
            Json::obj([
                ("schema", Json::int(1)),
                (
                    "costs",
                    Json::Obj(
                        costs
                            .iter()
                            .map(|(fp, c)| {
                                (
                                    fp.to_string(),
                                    Json::obj([
                                        ("units", Json::int(c.units)),
                                        ("ns", Json::int(c.ns)),
                                    ]),
                                )
                            })
                            .collect(),
                    ),
                ),
            ])
        };
        let path = dir.join(CALIBRATION_FILE);
        let tmp = dir.join(format!("{CALIBRATION_FILE}.tmp"));
        if std::fs::write(&tmp, doc.to_text()).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }

    /// The persistent directory, if the store has one.
    pub fn persist_dir(&self) -> Option<&Path> {
        self.persist_dir.as_deref()
    }

    fn file_for(&self, fingerprint: Fingerprint) -> Option<PathBuf> {
        self.persist_dir
            .as_ref()
            .map(|d| d.join(format!("{fingerprint}.json")))
    }

    /// Look up the summary for `fingerprint`, trying memory then disk.
    pub fn get(&self, fingerprint: Fingerprint) -> Option<Arc<ElementSummary>> {
        if let Some(summary) = self
            .memory
            .lock()
            .expect("summary store lock")
            .get(&fingerprint)
        {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            return Some(summary.clone());
        }
        if let Some(path) = self.file_for(fingerprint) {
            let file_name = format!("{fingerprint}.json");
            match std::fs::read_to_string(&path) {
                // The manifest vouches (by content hash) for every file the
                // tier trusts; a mismatching or unknown file is corrupt or
                // stale — drop it and recompute rather than decode blindly.
                Ok(text) if !self.manifest_vouches(&file_name, &text) => {
                    self.disk_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = std::fs::remove_file(&path);
                    self.forget_manifest_entry(&file_name);
                }
                Ok(text) => match Json::parse(&text)
                    .map_err(|e| e.to_string())
                    .and_then(|j| summary_from_json(&j).map_err(|e| e.to_string()))
                {
                    Ok(summary) => {
                        let summary = Arc::new(summary);
                        self.memory
                            .lock()
                            .expect("summary store lock")
                            .insert(fingerprint, summary.clone());
                        self.touch_manifest_entry(&file_name);
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        return Some(summary);
                    }
                    Err(_) => {
                        // Corrupt file: drop it so the rewrite below is clean.
                        self.disk_errors.fetch_add(1, Ordering::Relaxed);
                        let _ = std::fs::remove_file(&path);
                        self.forget_manifest_entry(&file_name);
                    }
                },
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(_) => {
                    self.disk_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// True if a manifest — this process's, or the one currently on disk —
    /// has an entry for `file_name` whose checksum matches `text`.
    ///
    /// Consulting the on-disk manifest handles concurrent orchestrators
    /// sharing a cache directory: a file written by another process after
    /// our snapshot is vouched for by *its* manifest write, and must not be
    /// destroyed as untrusted. (A process racing exactly between a peer's
    /// file rename and manifest write can still drop that one file — the
    /// peer recomputes it; cross-process locking is a ROADMAP item.)
    fn manifest_vouches(&self, file_name: &str, text: &str) -> bool {
        let checksum = fingerprint_bytes(text).to_string();
        let vouched = |entries: &[ManifestEntry]| {
            entries
                .iter()
                .any(|e| e.file == file_name && e.checksum == checksum)
        };
        let mut manifest = self.manifest.lock().expect("manifest lock");
        if vouched(&manifest) {
            return true;
        }
        let disk = self.read_disk_manifest();
        adopt_unknown_entries(&mut manifest, &disk);
        if vouched(&manifest) {
            return true;
        }
        if vouched(&disk) {
            // A peer rewrote a file we also track; its record describes the
            // bytes now on disk.
            if let Some(ours) = manifest.iter_mut().find(|e| e.file == file_name) {
                ours.checksum = checksum;
                ours.bytes = text.len() as u64;
            }
            return true;
        }
        false
    }

    /// The manifest currently on disk (empty on any read/parse failure).
    fn read_disk_manifest(&self) -> Vec<ManifestEntry> {
        self.persist_dir
            .as_deref()
            .map(read_manifest)
            .unwrap_or_default()
    }

    /// Move `file_name`'s entry to the most-recently-used end. In-memory
    /// only — use order is best-effort across crashes; the next insert
    /// persists it.
    fn touch_manifest_entry(&self, file_name: &str) {
        let mut manifest = self.manifest.lock().expect("manifest lock");
        if let Some(pos) = manifest.iter().position(|e| e.file == file_name) {
            let entry = manifest.remove(pos);
            manifest.push(entry);
        }
    }

    /// Drop `file_name`'s manifest entry (its file is gone or untrusted)
    /// and persist the change. Takes the directory's advisory lock: the
    /// manifest rewrite must not lose a peer's concurrent entry.
    fn forget_manifest_entry(&self, file_name: &str) {
        let _dir_lock = self
            .persist_dir
            .as_deref()
            .and_then(crate::persist::DirLock::acquire);
        self.forget_manifest_entry_locked(file_name);
    }

    /// [`SummaryStore::forget_manifest_entry`] for callers already holding
    /// the directory lock.
    fn forget_manifest_entry_locked(&self, file_name: &str) {
        let mut manifest = self.manifest.lock().expect("manifest lock");
        if let Some(pos) = manifest.iter().position(|e| e.file == file_name) {
            manifest.remove(pos);
            let disk = self.read_disk_manifest();
            adopt_unknown_entries(&mut manifest, &disk);
            manifest.retain(|e| e.file != file_name);
            self.write_manifest(&manifest);
        }
    }

    /// Atomically rewrite `manifest.json` (callers hold the manifest lock).
    fn write_manifest(&self, manifest: &[ManifestEntry]) {
        let Some(dir) = &self.persist_dir else {
            return;
        };
        let temp = dir.join(format!("manifest.tmp-{}", std::process::id()));
        let text = manifest_to_json(manifest).to_text();
        let ok = std::fs::write(&temp, text)
            .and_then(|()| std::fs::rename(&temp, dir.join(MANIFEST_FILE)));
        if ok.is_err() {
            let _ = std::fs::remove_file(&temp);
            self.disk_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Install a freshly computed summary under `fingerprint`, writing the
    /// persistent tier when configured. The file is written to a unique
    /// temporary name and renamed into place, so concurrent readers (or a
    /// crash mid-write) never observe a torn document. The rename +
    /// `manifest.json` write pair runs under the directory's advisory
    /// [`crate::persist::DirLock`], so a concurrent orchestrator can no
    /// longer sample the directory between a peer's two writes and drop the
    /// not-yet-vouched file (if the lock cannot be had, the old best-effort
    /// merge-on-demand path still applies). Disk failures are counted but
    /// do not fail the insert — the in-memory tier is authoritative for
    /// this process.
    pub fn insert(&self, fingerprint: Fingerprint, summary: Arc<ElementSummary>) {
        if let (Some(path), Some(dir)) = (self.file_for(fingerprint), &self.persist_dir) {
            let _dir_lock = crate::persist::DirLock::acquire(dir);
            static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
            let temp = dir.join(format!(
                "{fingerprint}.tmp-{}-{}",
                std::process::id(),
                TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let text = summary_to_json(&summary).to_text();
            let entry = ManifestEntry {
                file: format!("{fingerprint}.json"),
                bytes: text.len() as u64,
                checksum: fingerprint_bytes(&text).to_string(),
            };
            // Register the entry *before* the rename makes the file
            // visible: a concurrent `get` of the same fingerprint must
            // never observe a file the manifest does not vouch for (it
            // would delete it as untrusted). The reverse window — entry
            // without file — is a clean NotFound miss and merely recomputes.
            let file_name = entry.file.clone();
            self.record_and_evict(dir.clone(), entry);
            let written = std::fs::write(&temp, text).and_then(|()| std::fs::rename(&temp, &path));
            match written {
                Ok(()) => {
                    self.persisted.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    let _ = std::fs::remove_file(&temp);
                    self.disk_errors.fetch_add(1, Ordering::Relaxed);
                    // The insert path already holds the directory lock.
                    self.forget_manifest_entry_locked(&file_name);
                }
            }
        }
        self.memory
            .lock()
            .expect("summary store lock")
            .insert(fingerprint, summary);
    }

    /// Record a freshly written summary file in the manifest, evict
    /// least-recently-used files while the directory exceeds its size
    /// bound (the newest entry is never evicted), and persist the manifest.
    fn record_and_evict(&self, dir: PathBuf, entry: ManifestEntry) {
        let mut manifest = self.manifest.lock().expect("manifest lock");
        // Adopt entries a concurrent orchestrator added since our snapshot,
        // so the rewrite below does not drop its records.
        let disk = self.read_disk_manifest();
        adopt_unknown_entries(&mut manifest, &disk);
        if let Some(pos) = manifest.iter().position(|e| e.file == entry.file) {
            manifest.remove(pos);
        }
        manifest.push(entry);
        let mut total: u64 = manifest.iter().map(|e| e.bytes).sum();
        while total > self.max_persist_bytes && manifest.len() > 1 {
            let victim = manifest.remove(0);
            total -= victim.bytes;
            let _ = std::fs::remove_file(dir.join(&victim.file));
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        self.write_manifest(&manifest);
    }

    /// Number of summaries resident in memory.
    pub fn len(&self) -> usize {
        self.memory.lock().expect("summary store lock").len()
    }

    /// True if the in-memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop the in-memory tier (persisted files are kept); used by tests to
    /// force the disk path.
    pub fn clear_memory(&self) {
        self.memory.lock().expect("summary store lock").clear();
    }

    /// Total bytes of summary files the manifest currently tracks.
    pub fn persisted_bytes(&self) -> u64 {
        self.manifest
            .lock()
            .expect("manifest lock")
            .iter()
            .map(|e| e.bytes)
            .sum()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            persisted: self.persisted.load(Ordering::Relaxed),
            disk_errors: self.disk_errors.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane_pipeline::elements::DecTTL;
    use dataplane_pipeline::Element;
    use dataplane_symbex::{explore, EngineConfig};
    use std::time::Duration;

    fn dec_ttl_summary() -> Arc<ElementSummary> {
        let element = DecTTL::new();
        let exploration = explore(&element.model(), &EngineConfig::decomposed()).unwrap();
        Arc::new(ElementSummary {
            type_name: element.type_name().to_string(),
            config_key: element.config_key(),
            exploration,
            explore_time: Duration::from_millis(1),
        })
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vericlick-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_tier_hits_and_misses() {
        let store = SummaryStore::in_memory();
        let fp = Fingerprint(1, 2);
        assert!(store.get(fp).is_none());
        store.insert(fp, dec_ttl_summary());
        let summary = store.get(fp).expect("hit");
        assert_eq!(summary.type_name, "DecTTL");
        let stats = store.stats();
        assert_eq!(stats.memory_hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.disk_hits, 0);
        assert_eq!(stats.persisted, 0);
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn persistent_tier_survives_memory_loss() {
        let dir = temp_dir("persist");
        let store = SummaryStore::persistent(&dir).unwrap();
        assert_eq!(store.persist_dir(), Some(dir.as_path()));
        let fp = Fingerprint(3, 4);
        store.insert(fp, dec_ttl_summary());
        assert_eq!(store.stats().persisted, 1);

        // Same store, memory dropped: served from disk.
        store.clear_memory();
        let summary = store.get(fp).expect("disk hit");
        assert!(summary.segment_count() >= 2);
        assert_eq!(store.stats().disk_hits, 1);

        // A brand-new store over the same directory also sees it.
        let fresh = SummaryStore::persistent(&dir).unwrap();
        assert!(fresh.get(fp).is_some());
        assert_eq!(fresh.stats().disk_hits, 1);
        assert_eq!(fresh.stats().misses, 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_bounds_the_directory_size() {
        let dir = temp_dir("evict");
        // A limit that holds roughly two DecTTL summaries.
        let summary = dec_ttl_summary();
        let one_file = crate::persist::summary_to_json(&summary).to_text().len() as u64;
        let store = SummaryStore::persistent_with_limit(&dir, one_file * 2).unwrap();
        for i in 0..5 {
            store.insert(Fingerprint(100 + i, 1), summary.clone());
        }
        let stats = store.stats();
        assert_eq!(stats.persisted, 5);
        assert!(stats.evicted >= 3, "expected evictions, got {stats:?}");
        assert!(
            store.persisted_bytes() <= one_file * 2,
            "directory over its bound: {} > {}",
            store.persisted_bytes(),
            one_file * 2
        );
        // The newest entry survives, the oldest were evicted from disk.
        store.clear_memory();
        assert!(store.get(Fingerprint(104, 1)).is_some());
        assert!(store.get(Fingerprint(100, 1)).is_none());
        // Use order matters: a disk hit refreshes an entry's recency.
        let lru = SummaryStore::persistent_with_limit(&dir, one_file * 2).unwrap();
        lru.clear_memory();
        assert!(lru.get(Fingerprint(103, 1)).is_some()); // touch the older one
        lru.insert(Fingerprint(200, 1), summary.clone()); // evicts 104, not 103
        lru.clear_memory();
        assert!(lru.get(Fingerprint(103, 1)).is_some());
        assert!(lru.get(Fingerprint(104, 1)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_files_fail_the_manifest_checksum() {
        let dir = temp_dir("tamper");
        let store = SummaryStore::persistent(&dir).unwrap();
        let fp = Fingerprint(7, 8);
        store.insert(fp, dec_ttl_summary());
        // Tamper with the file in a way that still parses and decodes: a
        // trailing space changes no JSON semantics, so only the manifest
        // checksum can catch it.
        let path = dir.join(format!("{fp}.json"));
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push(' ');
        std::fs::write(&path, text).unwrap();
        store.clear_memory();
        assert!(store.get(fp).is_none(), "tampered file must not be trusted");
        let stats = store.stats();
        assert_eq!(stats.disk_errors, 1);
        assert!(!path.exists(), "tampered file must be dropped");
        // A file the manifest never vouched for is equally untrusted.
        let stray = Fingerprint(9, 9);
        std::fs::write(
            dir.join(format!("{stray}.json")),
            crate::persist::summary_to_json(&dec_ttl_summary()).to_text(),
        )
        .unwrap();
        assert!(store.get(stray).is_none());
        assert_eq!(store.stats().disk_errors, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_stores_do_not_destroy_each_others_files() {
        let dir = temp_dir("concurrent");
        // Both "processes" snapshot the (empty) manifest at startup.
        let a = SummaryStore::persistent(&dir).unwrap();
        let b = SummaryStore::persistent(&dir).unwrap();
        let fp_a = Fingerprint(21, 1);
        let fp_b = Fingerprint(22, 1);
        a.insert(fp_a, dec_ttl_summary());
        b.insert(fp_b, dec_ttl_summary());
        // B must trust A's file (vouched by the on-disk manifest A wrote),
        // not delete it as unknown — and vice versa.
        b.clear_memory();
        assert!(b.get(fp_a).is_some(), "B destroyed A's valid summary");
        a.clear_memory();
        assert!(a.get(fp_b).is_some(), "A destroyed B's valid summary");
        assert_eq!(a.stats().disk_errors, 0);
        assert_eq!(b.stats().disk_errors, 0);
        // Neither manifest rewrite dropped the other's entry.
        let fresh = SummaryStore::persistent(&dir).unwrap();
        assert!(fresh.get(fp_a).is_some());
        assert!(fresh.get(fp_b).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_survives_a_fresh_process() {
        let dir = temp_dir("manifest-restart");
        let store = SummaryStore::persistent(&dir).unwrap();
        let fp = Fingerprint(11, 12);
        store.insert(fp, dec_ttl_summary());
        drop(store);
        let fresh = SummaryStore::persistent(&dir).unwrap();
        assert!(fresh.persisted_bytes() > 0, "manifest entries reloaded");
        assert!(fresh.get(fp).is_some(), "checksum verifies after reload");
        assert_eq!(fresh.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_dropped_and_recomputed() {
        let dir = temp_dir("corrupt");
        let store = SummaryStore::persistent(&dir).unwrap();
        let fp = Fingerprint(5, 6);
        std::fs::write(dir.join(format!("{fp}.json")), "{not json").unwrap();
        assert!(store.get(fp).is_none());
        let stats = store.stats();
        assert_eq!(stats.disk_errors, 1);
        assert_eq!(stats.misses, 1);
        // The corrupt file was removed; inserting rewrites it cleanly.
        store.insert(fp, dec_ttl_summary());
        store.clear_memory();
        assert!(store.get(fp).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

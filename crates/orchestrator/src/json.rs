//! A minimal JSON codec for the persistent summary-cache tier and the
//! machine-readable matrix report.
//!
//! The real `serde`/`serde_json` stack is unavailable in this hermetic build
//! (the workspace's `serde` is an API stub), so the orchestrator carries its
//! own value model, writer, and parser. Numbers are kept as `i128` — wide
//! enough to round-trip every `u64` bit-vector constant and every signed
//! packet offset exactly, which `f64`-based JSON numbers would not.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (this codec never emits fractions or exponents).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps serialisation deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build an integer value from anything convertible to `i128`.
    pub fn int(v: impl Into<i128>) -> Json {
        Json::Int(v.into())
    }

    /// The integer value, if this is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The integer as `u64`, if this is an integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_int().and_then(|v| u64::try_from(v).ok())
    }

    /// The integer as `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_int().and_then(|v| i64::try_from(v).ok())
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Serialise to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }

    /// Parse JSON text.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(JsonError::at(parser.pos, "trailing characters"));
        }
        Ok(value)
    }
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(n) => out.push_str(&n.to_string()),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(
                self.pos,
                format!("expected '{}'", byte as char),
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(JsonError::at(self.pos, format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::at(self.pos, "expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(JsonError::at(
                self.pos,
                "fractional numbers are not part of this codec",
            ));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<i128>().ok())
            .map(Json::Int)
            .ok_or_else(|| JsonError::at(start, "invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| JsonError::at(self.pos, "bad \\u escape"))?;
                            // Surrogate pairs are not emitted by this codec's
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| JsonError::at(self.pos, "bad \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::at(self.pos, "bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::at(self.pos, "invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj([
            ("null", Json::Null),
            ("flag", Json::Bool(true)),
            ("max", Json::int(u64::MAX)),
            ("neg", Json::int(-42)),
            ("text", Json::str("line\n\"quoted\" \\slash\u{1f}")),
            (
                "arr",
                Json::Arr(vec![Json::int(1), Json::str("two"), Json::Bool(false)]),
            ),
        ]);
        let text = v.to_text();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn u64_constants_survive_exactly() {
        for v in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 53, (1 << 53) + 1] {
            let text = Json::int(v).to_text();
            assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(v));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("true false").is_err());
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = Json::parse("{\"a\": [1, -2], \"s\": \"x\", \"b\": false}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_i64(), Some(-2));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("s").unwrap().as_int(), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
    }
}

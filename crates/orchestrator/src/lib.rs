//! # dataplane-orchestrator — the verification service layer
//!
//! The compositional verifier (`dataplane-verifier`) proves pipeline
//! properties by exploring each element **in isolation** and composing the
//! per-element summaries. This crate turns that structure into a service
//! with **one front door**:
//!
//! * [`service`] — [`VerifyService`] serves typed, serialisable
//!   [`VerifyRequest`]s (`Single` / `Matrix` / `Diff` / `Watch`) and
//!   returns [`VerifyResponse`]s; it owns the summary store, the
//!   worker-thread budget, and the verifier options. The **plan/execute
//!   split** makes the job plan a first-class artifact:
//!   [`VerifyService::plan_request`] produces a [`wire::PlanSpec`] that
//!   round-trips through JSON, [`VerifyService::execute_plan`] runs one
//!   through any [`exec::Executor`].
//! * [`exec`] — the execution backends, layered for distribution: a
//!   line-JSON [`exec::transport::Transport`] abstraction (stdio, TCP,
//!   Unix sockets), the [`exec::WorkerRegistry`] (hello handshake with
//!   protocol/schema versions and capacity, liveness,
//!   drain-and-requeue), pull-based dispatch over one shared job queue,
//!   and the [`exec::WorkerFleet`] executor that runs Step-1
//!   explorations *and* Step-2 compositions on local or networked
//!   workers — byte-identical reports proven end to end.
//! * [`wire`] — the JSON codecs for requests, plans, options, jobs
//!   (explore *and* compose), and the deterministic report form, all
//!   schema-versioned.
//! * [`executor`] — the **shared scheduler**: one dynamic work-stealing
//!   pool ([`executor::Pool`]) plus a pool-wide thread ledger
//!   ([`executor::ThreadBudget`]) that scenario jobs and each
//!   composition's Step-2 walk workers draw from together, so peak live
//!   solver threads are bounded by the single pool size.
//! * [`diff`] — incremental re-verification: fingerprint two pipeline
//!   configs and re-verify only scenarios whose element set changed (a
//!   composition-only pass for wiring-only diffs).
//! * [`cache`] — the content-addressed [`SummaryStore`]: an in-memory tier
//!   shared across workers and an optional JSON persistent tier, keyed by
//!   [`Fingerprint`]s of element behaviour + engine configuration.
//! * [`matrix`] — the scenario matrix (every preset pipeline × crash
//!   freedom, bounded execution, reachability) and the aggregate
//!   machine-readable [`MatrixReport`].
//! * [`orchestrator`] — the job-planning vocabulary ([`plan`],
//!   [`Scenario`]) and the deprecated [`Orchestrator`] shim (kept one
//!   release; see its docs for the migration map).
//! * [`fingerprint`] / [`persist`] / [`json`] — content hashing and the
//!   hand-rolled JSON codec (the workspace's `serde` is an offline API
//!   stub, so serialisation is explicit here).
//!
//! Parallel runs reuse the sequential verifier for composition, seeded with
//! pre-computed summaries — verdicts are identical to `Verifier::verify`,
//! only the wall-clock differs. The same holds across *processes*: a plan
//! serialised by one process and executed by another yields byte-identical
//! deterministic reports.
//!
//! ## Example
//!
//! ```
//! use dataplane_orchestrator::{Scenario, VerifyRequest, VerifyService};
//! use dataplane_pipeline::presets::ip_router_pipeline;
//! use dataplane_verifier::Property;
//!
//! let service = VerifyService::new().with_threads(4);
//! let report = service.verify(ip_router_pipeline(), Property::CrashFreedom);
//! assert!(report.is_proven(), "{report}");
//!
//! // The same verification through the front door, as a typed request —
//! // and a second run plans zero element jobs: every summary is served
//! // from the warm store.
//! let response = service
//!     .serve(VerifyRequest::Matrix {
//!         scenarios: vec![Scenario::new(
//!             "router",
//!             ip_router_pipeline(),
//!             Property::CrashFreedom,
//!         )],
//!     })
//!     .unwrap();
//! assert_eq!(response.matrix().unwrap().explore_jobs, 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod conformance;
pub mod daemon;
pub mod diff;
pub mod exec;
pub mod executor;
pub mod fingerprint;
pub mod json;
pub mod matrix;
pub mod orchestrator;
pub mod persist;
pub mod service;
pub mod wire;

pub use cache::{CacheStats, SummaryStore, UnitCost};
pub use conformance::{
    ConformanceReport, Contradiction, FuzzScenarioReport, FuzzShardReport, ReplayOutcome,
};
pub use daemon::{join_fleet, ClientReply, Daemon, DaemonClient, DaemonConfig};
pub use diff::{config_scenarios, DiffEntry, DiffKind, DiffReport, NamedConfig};
pub use exec::{
    serve_listener, worker_serve, DispatchStats, ExecError, Executor, HeartbeatConfig,
    InProcessExecutor, WorkerAddr, WorkerFleet, WorkerRegistry,
};
pub use executor::ThreadBudget;
pub use fingerprint::{element_fingerprint, fingerprint_bytes, Fingerprint};
pub use matrix::{preset_pipelines, preset_properties, preset_scenarios, MatrixReport};
#[allow(deprecated)]
pub use orchestrator::Orchestrator;
pub use orchestrator::{
    parallel_composition, plan, verify_sequential, BudgetedComposition, CompositionMode,
    ExploreSpec, JobPlan, ProgressEvent, Scenario, ScenarioReport,
};
pub use service::{
    BoundOutcome, ComposeShardMode, PropertySelect, ServiceError, VerifyOutcome, VerifyRequest,
    VerifyResponse, VerifyService,
};
pub use wire::{
    ComposeJob, ComposeShardJob, ExploreJob, FuzzJob, JobSpec, PlanSpec, ScenarioSpec, WireError,
};

// The service moves pipelines, summaries, and progress observers across
// worker threads; keep those bounds a compile-time contract.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<Scenario>();
    assert_send::<VerifyRequest>();
    assert_send_sync::<VerifyService>();
    assert_send_sync::<SummaryStore>();
    assert_send_sync::<std::sync::Arc<dataplane_verifier::ElementSummary>>();
};

//! # dataplane-orchestrator — parallel, cached, matrix-scale verification
//!
//! The compositional verifier (`dataplane-verifier`) proves pipeline
//! properties by exploring each element **in isolation** and composing the
//! per-element summaries. That structure is what this crate exploits
//! operationally, turning one-shot verification into a service layer:
//!
//! * [`orchestrator`] — the job planner ([`plan`]) decomposes a batch of
//!   verification scenarios into per-element symbolic-exploration jobs plus
//!   one composition job per scenario, with dependency edges; the
//!   [`Orchestrator`] runs them and streams [`ProgressEvent`]s.
//! * [`executor`] — the **shared scheduler**: one dynamic work-stealing
//!   pool ([`executor::Pool`]) plus a pool-wide thread ledger
//!   ([`executor::ThreadBudget`]) that scenario jobs and each
//!   composition's Step-2 walk workers draw from together, so peak live
//!   solver threads are bounded by the single pool size.
//! * [`diff`] — incremental re-verification: fingerprint two pipeline
//!   configs and re-verify only scenarios whose element set changed (a
//!   composition-only pass for wiring-only diffs).
//! * [`cache`] — the content-addressed [`SummaryStore`]: an in-memory tier
//!   shared across workers and an optional JSON persistent tier, keyed by
//!   [`Fingerprint`]s of element behaviour + engine configuration. Editing
//!   one element invalidates exactly one key: re-verification re-explores
//!   that element only.
//! * [`matrix`] — the scenario matrix (every preset pipeline × crash
//!   freedom, bounded execution, reachability) and the aggregate
//!   machine-readable [`MatrixReport`].
//! * [`fingerprint`] / [`persist`] / [`json`] — content hashing and the
//!   hand-rolled JSON codec behind the persistent tier (the workspace's
//!   `serde` is an offline API stub, so serialisation is explicit here).
//!
//! Parallel runs reuse the sequential verifier for composition, seeded with
//! pre-computed summaries — verdicts are identical to `Verifier::verify`,
//! only the wall-clock differs.
//!
//! ## Example
//!
//! ```
//! use dataplane_orchestrator::{Orchestrator, Scenario};
//! use dataplane_pipeline::presets::ip_router_pipeline;
//! use dataplane_verifier::Property;
//!
//! let orchestrator = Orchestrator::new().with_threads(4);
//! let report = orchestrator.verify(ip_router_pipeline(), Property::CrashFreedom);
//! assert!(report.is_proven(), "{report}");
//!
//! // A second verification of the same pipeline plans zero element jobs:
//! // every summary is served from the warm store.
//! let matrix = orchestrator.run(vec![Scenario::new(
//!     "router",
//!     ip_router_pipeline(),
//!     Property::CrashFreedom,
//! )]);
//! assert_eq!(matrix.explore_jobs, 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod diff;
pub mod executor;
pub mod fingerprint;
pub mod json;
pub mod matrix;
pub mod orchestrator;
pub mod persist;

pub use cache::{CacheStats, SummaryStore};
pub use diff::{DiffEntry, DiffKind, DiffReport, NamedConfig};
pub use executor::ThreadBudget;
pub use fingerprint::{element_fingerprint, fingerprint_bytes, Fingerprint};
pub use matrix::{preset_pipelines, preset_properties, preset_scenarios, MatrixReport};
pub use orchestrator::{
    parallel_composition, plan, verify_sequential, BudgetedComposition, CompositionMode,
    ExploreSpec, JobPlan, Orchestrator, ProgressEvent, Scenario, ScenarioReport,
};

// The orchestrator moves pipelines, summaries, and progress observers across
// worker threads; keep those bounds a compile-time contract.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<Scenario>();
    assert_send_sync::<SummaryStore>();
    assert_send_sync::<std::sync::Arc<dataplane_verifier::ElementSummary>>();
};

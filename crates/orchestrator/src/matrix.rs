//! The scenario matrix: every preset pipeline × every property class, and
//! the aggregate machine-readable report a matrix run produces.

use crate::cache::CacheStats;
use crate::json::Json;
use crate::orchestrator::{Scenario, ScenarioReport};
use dataplane_pipeline::presets::{
    buggy_pipeline, firewall_pipeline, ip_router_pipeline, linear_router_pipeline,
    middlebox_pipeline,
};
use dataplane_pipeline::Pipeline;
use dataplane_temporal::LtlSpec;
use dataplane_verifier::{Property, Verdict};
use std::fmt;
use std::net::Ipv4Addr;
use std::time::Duration;

/// A named preset-pipeline constructor.
pub type PresetPipeline = (&'static str, fn() -> Pipeline);

/// The preset pipelines, by name. `buggy` is included deliberately: the
/// matrix must demonstrate violation-finding, not only proofs.
pub fn preset_pipelines() -> Vec<PresetPipeline> {
    vec![
        ("ip_router", ip_router_pipeline as fn() -> Pipeline),
        ("linear_router", linear_router_pipeline),
        ("middlebox", middlebox_pipeline),
        ("firewall", || firewall_pipeline(vec![])),
        ("buggy", buggy_pipeline),
    ]
}

/// Per-packet instruction budget used by the matrix's bounded-execution
/// property (comfortably above the ~3.6k instructions the paper reports for
/// the longest pipeline, so a verdict other than `Proven` signals a crash
/// path, not a tight constant).
pub const MATRIX_INSTRUCTION_BOUND: u64 = 1_000_000;

/// The bundled temporal (LTL) spec for `pipeline` — the matrix's fourth
/// property class. Three are liveness/fairness specs expected to prove
/// (`ip_router`, `linear_router`, `middlebox`); two are planted
/// violations (`firewall`'s header checker drops malformed frames, and
/// `buggy` crashes), expected to yield confirmed lassos. All five are
/// header-free so every verdict is decided without a solver `Unknown`.
pub fn preset_temporal_spec(pipeline: &str) -> &'static str {
    match pipeline {
        // Termination: every packet is eventually forwarded or dropped
        // (the crash terminal is the only way to violate this).
        "ip_router" => "F (forwarded | dropped)",
        // Fairness: a packet that clears the header checker is never
        // starved of a disposition.
        "linear_router" => "G (at(chk) -> F (forwarded | dropped))",
        // Liveness through the stateful core: reaching the NAT commits
        // the pipeline to a disposition.
        "middlebox" => "G (at(nat) -> F (forwarded | dropped))",
        // Planted violation: the firewall *does* drop (malformed frames
        // at `chk`), so "never drops" must produce a confirmed lasso.
        "firewall" => "G !dropped",
        // Planted violation: the unchecked options walker crashes, so
        // termination fails with a crash-terminal lasso.
        "buggy" => "F (forwarded | dropped)",
        other => panic!("unknown preset pipeline '{other}'"),
    }
}

/// The four property classes of the paper's evaluation plus the temporal
/// extension, instantiated for `pipeline`. Reachability needs
/// per-pipeline knowledge (who delivers, who may legitimately drop),
/// which is what this table encodes.
pub fn preset_properties(pipeline: &str) -> Vec<Property> {
    let reachability = |dst: Ipv4Addr, deliver_to: &[&str], may_drop: &[&str]| {
        Property::Reachability {
            dst,
            // Every preset ingests Ethernet frames: the IPv4 destination
            // sits at byte 30.
            dst_offset: 30,
            deliver_to: deliver_to.iter().map(|s| s.to_string()).collect(),
            may_drop: may_drop.iter().map(|s| s.to_string()).collect(),
        }
    };
    let reach = match pipeline {
        "ip_router" => reachability(
            Ipv4Addr::new(10, 1, 2, 3),
            &["out0", "out1"],
            &["cls", "strip", "chk", "opts", "ttl0", "ttl1"],
        ),
        "linear_router" => reachability(
            Ipv4Addr::new(10, 1, 2, 3),
            &["sink"],
            &["cls", "strip", "chk", "opts", "ttl"],
        ),
        "middlebox" => reachability(
            Ipv4Addr::new(8, 8, 8, 8),
            &["out"],
            &["strip", "chk", "flow", "nat"],
        ),
        "firewall" => reachability(
            Ipv4Addr::new(10, 1, 2, 3),
            &["out0", "out1"],
            &["strip", "chk", "ttl"],
        ),
        "buggy" => reachability(Ipv4Addr::new(10, 1, 2, 3), &["out"], &["cls", "strip"]),
        other => panic!("unknown preset pipeline '{other}'"),
    };
    let temporal = Property::Temporal(
        LtlSpec::parse(preset_temporal_spec(pipeline)).expect("bundled temporal specs parse"),
    );
    vec![
        Property::CrashFreedom,
        Property::BoundedInstructions {
            max_instructions: MATRIX_INSTRUCTION_BOUND,
        },
        reach,
        temporal,
    ]
}

/// The full verification matrix: every preset pipeline under every property
/// class (each scenario owns its own pipeline instance).
pub fn preset_scenarios() -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for (name, make) in preset_pipelines() {
        for property in preset_properties(name) {
            scenarios.push(Scenario::new(name, make(), property));
        }
    }
    scenarios
}

/// The aggregate result of a matrix run.
pub struct MatrixReport {
    /// Per-scenario reports, in the order the scenarios were submitted.
    pub scenarios: Vec<ScenarioReport>,
    /// Step-1 explore jobs that actually ran.
    pub explore_jobs: usize,
    /// Distinct element behaviours served by the warm store at plan time
    /// (jobs skipped).
    pub cached_jobs: usize,
    /// Worker threads used.
    pub threads: usize,
    /// High-water mark of simultaneously working threads on the shared
    /// scheduler during this run (never exceeds `threads` in
    /// [`crate::orchestrator::CompositionMode::SharedPool`] mode, however
    /// many compositions fanned out their checks).
    pub peak_live_threads: usize,
    /// Summary-store activity during this run.
    pub cache: CacheStats,
    /// Registry/queue statistics when the run executed on a worker fleet
    /// (`None` for purely in-process runs). Operational data — excluded
    /// from the deterministic report form.
    pub stats: Option<crate::exec::DispatchStats>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

impl MatrixReport {
    /// `(proven, violated, unknown)` counts.
    pub fn verdict_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for s in &self.scenarios {
            match s.report.verdict {
                Verdict::Proven => counts.0 += 1,
                Verdict::Violated => counts.1 += 1,
                Verdict::Unknown => counts.2 += 1,
            }
        }
        counts
    }

    /// The machine-readable (operational) form of the report: everything,
    /// including timings, thread counts, and cache statistics.
    /// Schema-versioned for forward compatibility of persisted reports.
    pub fn to_json(&self) -> Json {
        let scenarios: Vec<Json> = self
            .scenarios
            .iter()
            .map(|s| {
                let report = &s.report;
                Json::obj([
                    ("pipeline", Json::str(&s.pipeline_name)),
                    ("property", Json::str(report.property.name())),
                    (
                        "verdict",
                        Json::str(match report.verdict {
                            Verdict::Proven => "proven",
                            Verdict::Violated => "violated",
                            Verdict::Unknown => "unknown",
                        }),
                    ),
                    (
                        "counterexamples",
                        Json::int(report.counterexamples.len() as u64),
                    ),
                    (
                        "confirmed_counterexamples",
                        Json::int(
                            report
                                .counterexamples
                                .iter()
                                .filter(|c| c.confirmed)
                                .count() as u64,
                        ),
                    ),
                    ("unproven_paths", Json::int(report.unproven.len() as u64)),
                    ("elements", Json::int(report.stats.elements as u64)),
                    (
                        "summaries_reused",
                        Json::int(report.stats.summaries_reused as u64),
                    ),
                    ("suspects", Json::int(report.stats.suspects as u64)),
                    ("discharged", Json::int(report.stats.discharged as u64)),
                    (
                        "composed_paths",
                        Json::int(report.stats.composed_paths as u64),
                    ),
                    ("solver_calls", Json::int(report.stats.solver_calls as u64)),
                    (
                        "fm_budget_aborts",
                        Json::int(report.stats.fm_budget_aborts as u64),
                    ),
                    (
                        "model_search_aborts",
                        Json::int(report.stats.model_search_aborts as u64),
                    ),
                    (
                        "budget_escalations",
                        Json::int(report.stats.budget_escalations as u64),
                    ),
                    (
                        "escalations_decided",
                        Json::int(report.stats.escalations_decided as u64),
                    ),
                    (
                        "escalations_by_step",
                        Json::Arr(
                            report
                                .stats
                                .escalations_by_step
                                .iter()
                                .map(|&n| Json::int(n as u64))
                                .collect(),
                        ),
                    ),
                    (
                        "escalations_fm",
                        Json::Arr(
                            report
                                .stats
                                .escalations_fm
                                .iter()
                                .map(|&n| Json::int(n as u64))
                                .collect(),
                        ),
                    ),
                    (
                        "escalations_search",
                        Json::Arr(
                            report
                                .stats
                                .escalations_search
                                .iter()
                                .map(|&n| Json::int(n as u64))
                                .collect(),
                        ),
                    ),
                    (
                        "elapsed_micros",
                        Json::int(report.elapsed.as_micros().min(u128::from(u64::MAX)) as u64),
                    ),
                ])
            })
            .collect();
        let (proven, violated, unknown) = self.verdict_counts();
        Json::obj([
            ("schema", Json::int(crate::wire::REPORT_SCHEMA)),
            ("kind", Json::str("matrix")),
            ("scenarios", Json::Arr(scenarios)),
            ("proven", Json::int(proven as u64)),
            ("violated", Json::int(violated as u64)),
            ("unknown", Json::int(unknown as u64)),
            ("explore_jobs", Json::int(self.explore_jobs as u64)),
            ("cached_jobs", Json::int(self.cached_jobs as u64)),
            ("threads", Json::int(self.threads as u64)),
            (
                "peak_live_threads",
                Json::int(self.peak_live_threads as u64),
            ),
            (
                "cache",
                Json::obj([
                    ("memory_hits", Json::int(self.cache.memory_hits)),
                    ("disk_hits", Json::int(self.cache.disk_hits)),
                    ("misses", Json::int(self.cache.misses)),
                    ("persisted", Json::int(self.cache.persisted)),
                    ("disk_errors", Json::int(self.cache.disk_errors)),
                    ("evicted", Json::int(self.cache.evicted)),
                ]),
            ),
            (
                "dispatch",
                match &self.stats {
                    None => Json::Null,
                    Some(d) => Json::obj([
                        ("workers", Json::int(d.workers as u64)),
                        ("workers_lost", Json::int(d.workers_lost as u64)),
                        ("capacity", Json::int(d.capacity as u64)),
                        ("jobs_dispatched", Json::int(d.jobs_dispatched as u64)),
                        ("jobs_completed", Json::int(d.jobs_completed as u64)),
                        ("jobs_requeued", Json::int(d.jobs_requeued as u64)),
                        ("explore_jobs", Json::int(d.explore_jobs as u64)),
                        ("compose_jobs", Json::int(d.compose_jobs as u64)),
                        ("temporal_jobs", Json::int(d.temporal_jobs as u64)),
                        ("compose_shards", Json::int(d.compose_shards as u64)),
                        ("shards_cancelled", Json::int(d.shards_cancelled as u64)),
                        ("shards_split", Json::int(d.shards_split as u64)),
                        ("shards_stolen", Json::int(d.shards_stolen as u64)),
                        ("steal_wait_ns", Json::int(d.steal_wait_ns)),
                        ("fuzz_jobs", Json::int(d.fuzz_jobs as u64)),
                        ("workers_idle", Json::int(d.workers_idle as u64)),
                        ("summaries_shipped", Json::int(d.summaries_shipped as u64)),
                        ("summaries_deduped", Json::int(d.summaries_deduped as u64)),
                        ("summary_bytes_shipped", Json::int(d.summary_bytes_shipped)),
                        ("summary_bytes_deduped", Json::int(d.summary_bytes_deduped)),
                        ("workers_suspect", Json::int(d.workers_suspect as u64)),
                    ]),
                },
            ),
            (
                "elapsed_micros",
                Json::int(self.elapsed.as_micros().min(u128::from(u64::MAX)) as u64),
            ),
        ])
    }

    /// The deterministic form of the report: per-scenario verdicts, full
    /// counterexamples, unproven paths, and work statistics — but no
    /// wall-clock times, thread counts, or cache weather. Two runs of the
    /// same scenarios under the same options serialise to byte-identical
    /// text whatever process or executor produced them; this is the
    /// document the cross-process byte-identity tests compare.
    pub fn deterministic_json(&self) -> Json {
        let (proven, violated, unknown) = self.verdict_counts();
        Json::obj([
            ("schema", Json::int(crate::wire::REPORT_SCHEMA)),
            ("kind", Json::str("matrix")),
            (
                "scenarios",
                Json::Arr(
                    self.scenarios
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("pipeline", Json::str(&s.pipeline_name)),
                                ("report", crate::wire::report_to_json(&s.report)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("proven", Json::int(proven as u64)),
            ("violated", Json::int(violated as u64)),
            ("unknown", Json::int(unknown as u64)),
        ])
    }
}

impl fmt::Display for MatrixReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (proven, violated, unknown) = self.verdict_counts();
        writeln!(
            f,
            "verification matrix: {} scenarios ({} proven, {} violated, {} unknown) in {:.3}s on {} threads (peak live {})",
            self.scenarios.len(),
            proven,
            violated,
            unknown,
            self.elapsed.as_secs_f64(),
            self.threads,
            self.peak_live_threads
        )?;
        writeln!(
            f,
            "  element jobs: {} explored, {} served warm; cache: {} memory hits, {} disk hits, {} persisted",
            self.explore_jobs,
            self.cached_jobs,
            self.cache.memory_hits,
            self.cache.disk_hits,
            self.cache.persisted
        )?;
        if let Some(d) = &self.stats {
            writeln!(
                f,
                "  fleet: {} workers (capacity {}, {} lost, {} suspect, {} idle), {} dispatched / {} completed / {} requeued ({} explore + {} compose + {} temporal + {} fuzz jobs)",
                d.workers,
                d.capacity,
                d.workers_lost,
                d.workers_suspect,
                d.workers_idle,
                d.jobs_dispatched,
                d.jobs_completed,
                d.jobs_requeued,
                d.explore_jobs,
                d.compose_jobs,
                d.temporal_jobs,
                d.fuzz_jobs
            )?;
            if d.compose_shards > 0 {
                writeln!(
                    f,
                    "  shards: {} compose shards offered, {} cancelled early, {} split / {} stolen ({:.1}ms steal wait)",
                    d.compose_shards,
                    d.shards_cancelled,
                    d.shards_split,
                    d.shards_stolen,
                    d.steal_wait_ns as f64 / 1e6
                )?;
            }
            writeln!(
                f,
                "  wire: {} summaries shipped ({} bytes), {} deduped ({} bytes saved)",
                d.summaries_shipped,
                d.summary_bytes_shipped,
                d.summaries_deduped,
                d.summary_bytes_deduped
            )?;
        }
        for s in &self.scenarios {
            writeln!(
                f,
                "  {:<44} {:>9} in {:>8.3}s (suspects {}, discharged {}, counterexamples {})",
                s.label(),
                format!("{:?}", s.report.verdict),
                s.report.elapsed.as_secs_f64(),
                s.report.stats.suspects,
                s.report.stats.discharged,
                s.report.counterexamples.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_preset_and_property_class() {
        let scenarios = preset_scenarios();
        let pipelines = preset_pipelines();
        assert_eq!(scenarios.len(), pipelines.len() * 4);
        for (name, _) in pipelines {
            let for_pipeline: Vec<_> = scenarios
                .iter()
                .filter(|s| s.pipeline_name == name)
                .collect();
            assert_eq!(for_pipeline.len(), 4, "{name}");
            assert!(for_pipeline
                .iter()
                .any(|s| matches!(s.property, Property::CrashFreedom)));
            assert!(for_pipeline
                .iter()
                .any(|s| matches!(s.property, Property::BoundedInstructions { .. })));
            assert!(for_pipeline
                .iter()
                .any(|s| matches!(s.property, Property::Reachability { .. })));
            assert!(for_pipeline
                .iter()
                .any(|s| matches!(s.property, Property::Temporal(_))));
        }
    }

    #[test]
    fn temporal_at_atoms_name_real_elements() {
        use dataplane_temporal::Atom;
        for (name, make) in preset_pipelines() {
            let pipeline = make();
            let spec = LtlSpec::parse(preset_temporal_spec(name)).unwrap();
            for atom in spec.formula().atoms() {
                if let Atom::At(instance) = atom {
                    assert!(
                        pipeline.find(&instance).is_some(),
                        "{name}: temporal spec names unknown element '{instance}'"
                    );
                }
            }
        }
    }

    #[test]
    fn reachability_names_refer_to_real_elements() {
        for (name, make) in preset_pipelines() {
            let pipeline = make();
            for property in preset_properties(name) {
                if let Property::Reachability {
                    deliver_to,
                    may_drop,
                    ..
                } = property
                {
                    for instance in deliver_to.iter().chain(may_drop.iter()) {
                        assert!(
                            pipeline.find(instance).is_some(),
                            "{name}: reachability names unknown element '{instance}'"
                        );
                    }
                }
            }
        }
    }
}

//! A work-stealing executor for dependency graphs of verification jobs.
//!
//! Jobs are opaque closures arranged in a DAG (explore jobs feed compose
//! jobs). Each worker owns a deque: it pops its own work LIFO (fresh jobs
//! are cache-hot) and steals FIFO from its peers when idle (the oldest,
//! typically largest, work migrates). A job whose last dependency completes
//! is enqueued on the worker that completed it, so summary producers and the
//! composition that consumes them tend to share a core.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// One schedulable unit.
///
/// The lifetime `'env` lets jobs borrow from the caller's stack — [`execute`]
/// runs everything under a `std::thread::scope`, so non-`'static` closures
/// (e.g. a parallel Step-2 batch borrowing the verifier's composition
/// context) are sound.
struct TaskNode<'env> {
    /// The work; taken exactly once.
    run: Mutex<Option<Box<dyn FnOnce() + Send + 'env>>>,
    /// Number of incomplete dependencies.
    pending: AtomicUsize,
    /// Tasks to notify on completion.
    dependents: Vec<usize>,
}

/// A DAG of tasks, built once and executed by [`execute`].
#[derive(Default)]
pub struct TaskGraph<'env> {
    tasks: Vec<TaskNode<'env>>,
}

impl<'env> TaskGraph<'env> {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Add a task depending on the already-added tasks in `deps`; returns
    /// its id. Dependencies must be earlier ids, which makes cycles
    /// unrepresentable.
    pub fn add(&mut self, deps: &[usize], run: Box<dyn FnOnce() + Send + 'env>) -> usize {
        let id = self.tasks.len();
        for &d in deps {
            assert!(d < id, "dependency {d} of task {id} does not exist yet");
        }
        self.tasks.push(TaskNode {
            run: Mutex::new(Some(run)),
            pending: AtomicUsize::new(deps.len()),
            dependents: Vec::new(),
        });
        for &d in deps {
            self.tasks[d].dependents.push(id);
        }
        id
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if no tasks were added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

/// Run a batch of independent jobs (no dependency edges) across at most
/// `threads` workers (never more workers than jobs); returns when every job
/// has completed. This is the entry point the parallel Step-2 composition
/// uses: each job is one suspect × prefix feasibility check borrowing the
/// (shared, immutable) composition context.
pub fn run_batch<'env>(jobs: Vec<Box<dyn FnOnce() + Send + 'env>>, threads: usize) {
    let threads = threads.min(jobs.len());
    let mut graph = TaskGraph::new();
    for job in jobs {
        graph.add(&[], job);
    }
    execute(graph, threads);
}

/// Run every task of `graph` across `threads` workers, respecting
/// dependencies. Returns when all tasks have completed.
pub fn execute(graph: TaskGraph<'_>, threads: usize) {
    let threads = threads.max(1);
    let total = graph.len();
    if total == 0 {
        return;
    }
    let tasks = &graph.tasks;
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    let remaining = AtomicUsize::new(total);
    // Idle workers park on this condvar instead of spinning; the epoch
    // counter is bumped (under the lock) whenever new work may exist — on
    // every enqueue and when the last task finishes — so a worker that saw
    // no work re-checks exactly when something changed.
    let signal = (Mutex::new(0u64), Condvar::new());

    // Distribute the initially-ready tasks round-robin.
    {
        let mut worker = 0;
        for (id, task) in tasks.iter().enumerate() {
            if task.pending.load(Ordering::Relaxed) == 0 {
                queues[worker].lock().expect("queue lock").push_back(id);
                worker = (worker + 1) % threads;
            }
        }
    }

    let wake_all = |signal: &(Mutex<u64>, Condvar)| {
        let mut epoch = signal.0.lock().expect("signal lock");
        *epoch += 1;
        signal.1.notify_all();
    };

    std::thread::scope(|scope| {
        for me in 0..threads {
            let queues = &queues;
            let remaining = &remaining;
            let signal = &signal;
            scope.spawn(move || {
                loop {
                    // Snapshot the epoch *before* looking for work: any
                    // enqueue after this point bumps it, so the parked wait
                    // below cannot miss a wake-up.
                    let seen_epoch = *signal.0.lock().expect("signal lock");
                    // Own work first (LIFO), then steal (FIFO).
                    let next = {
                        let own = queues[me].lock().expect("queue lock").pop_back();
                        own.or_else(|| {
                            (1..queues.len()).find_map(|offset| {
                                let victim = (me + offset) % queues.len();
                                queues[victim].lock().expect("queue lock").pop_front()
                            })
                        })
                    };
                    match next {
                        Some(id) => {
                            let run = tasks[id]
                                .run
                                .lock()
                                .expect("task lock")
                                .take()
                                .expect("task runs exactly once");
                            run();
                            let mut unlocked = false;
                            for &dep in &tasks[id].dependents {
                                if tasks[dep].pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                                    queues[me].lock().expect("queue lock").push_back(dep);
                                    unlocked = true;
                                }
                            }
                            let last = remaining.fetch_sub(1, Ordering::AcqRel) == 1;
                            if unlocked || last {
                                wake_all(signal);
                            }
                        }
                        None => {
                            if remaining.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            let mut epoch = signal.0.lock().expect("signal lock");
                            while *epoch == seen_epoch && remaining.load(Ordering::Acquire) > 0 {
                                epoch = signal.1.wait(epoch).expect("signal lock");
                            }
                        }
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_every_task_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut graph = TaskGraph::new();
        for _ in 0..100 {
            let counter = counter.clone();
            graph.add(
                &[],
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        assert_eq!(graph.len(), 100);
        execute(graph, 4);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn dependencies_complete_before_dependents_start() {
        // A diamond: 2 roots -> 8 middles -> 1 sink; the sink must observe
        // every middle, each middle must observe both roots. Order is
        // witnessed with a monotone clock.
        let clock = Arc::new(AtomicU64::new(1));
        let stamps: Arc<Vec<AtomicU64>> = Arc::new((0..11).map(|_| AtomicU64::new(0)).collect());
        let mut graph = TaskGraph::new();
        let stamp = |i: usize| {
            let clock = clock.clone();
            let stamps = stamps.clone();
            Box::new(move || {
                stamps[i].store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
            }) as Box<dyn FnOnce() + Send>
        };
        let r0 = graph.add(&[], stamp(0));
        let r1 = graph.add(&[], stamp(1));
        let middles: Vec<usize> = (0..8).map(|i| graph.add(&[r0, r1], stamp(2 + i))).collect();
        graph.add(&middles, stamp(10));
        execute(graph, 4);
        let at = |i: usize| stamps[i].load(Ordering::SeqCst);
        for m in 2..10 {
            assert!(
                at(m) > at(0) && at(m) > at(1),
                "middle {m} ran before a root"
            );
            assert!(at(10) > at(m), "sink ran before middle {m}");
        }
    }

    #[test]
    fn single_thread_executes_in_topological_order() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut graph = TaskGraph::new();
        let push = |v: usize| {
            let order = order.clone();
            Box::new(move || order.lock().unwrap().push(v)) as Box<dyn FnOnce() + Send>
        };
        let a = graph.add(&[], push(0));
        let b = graph.add(&[a], push(1));
        graph.add(&[b], push(2));
        execute(graph, 1);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_dependencies_are_rejected() {
        let mut graph = TaskGraph::new();
        graph.add(&[3], Box::new(|| {}));
    }

    #[test]
    fn empty_graph_is_a_no_op() {
        execute(TaskGraph::new(), 4);
    }
}

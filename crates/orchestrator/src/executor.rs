//! The shared scheduler every kind of verification work runs on.
//!
//! Two pieces cooperate:
//!
//! * [`Pool`] — a work-stealing pool of worker threads fed by **dynamically
//!   spawned** tasks: any task may spawn further tasks while the pool runs
//!   (the orchestrator's explore jobs unlock composition jobs through
//!   [`Latch`]es rather than a pre-built DAG). Each worker owns a deque: it
//!   pops its own work LIFO (fresh jobs are cache-hot) and steals FIFO from
//!   its peers when idle.
//! * [`ThreadBudget`] — the pool-wide ledger of how many threads may do
//!   verification work at once. Pool workers hold a permit while running a
//!   task and release it while parked; Step-2 batch helpers (see
//!   `BudgetedComposition` in the orchestrator module) borrow the *free*
//!   permits. The invariant: live working threads never exceed the single
//!   pool size, however many compositions fan their checks out — the
//!   old per-composition scoped workers had a `scenarios × threads`
//!   ceiling instead.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A counting ledger of concurrently working threads, shared by the pool's
/// workers and the Step-2 batch helpers. Tracks the high-water mark so runs
/// can assert the bound they promise.
#[derive(Debug)]
pub struct ThreadBudget {
    total: usize,
    free: Mutex<usize>,
    freed: Condvar,
    in_use_peak: AtomicUsize,
}

impl ThreadBudget {
    /// A budget of `total` simultaneous working threads (at least 1).
    pub fn new(total: usize) -> Arc<Self> {
        let total = total.max(1);
        Arc::new(ThreadBudget {
            total,
            free: Mutex::new(total),
            freed: Condvar::new(),
            in_use_peak: AtomicUsize::new(0),
        })
    }

    /// The budget's size.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Block until a permit is free, then take it.
    pub fn acquire_one(&self) {
        let mut free = self.free.lock().expect("budget lock");
        while *free == 0 {
            free = self.freed.wait(free).expect("budget lock");
        }
        *free -= 1;
        self.note_in_use(self.total - *free);
    }

    /// Take up to `want` permits without blocking; returns how many were
    /// taken (possibly 0).
    pub fn try_acquire(&self, want: usize) -> usize {
        if want == 0 {
            return 0;
        }
        let mut free = self.free.lock().expect("budget lock");
        let got = want.min(*free);
        *free -= got;
        self.note_in_use(self.total - *free);
        got
    }

    /// Return `n` permits.
    pub fn release(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut free = self.free.lock().expect("budget lock");
        *free += n;
        assert!(*free <= self.total, "budget over-released");
        drop(free);
        self.freed.notify_all();
    }

    fn note_in_use(&self, in_use: usize) {
        self.in_use_peak.fetch_max(in_use, Ordering::Relaxed);
    }

    /// The most permits ever simultaneously in use — i.e. the peak number of
    /// live working (solver) threads this budget admitted.
    pub fn peak_in_use(&self) -> usize {
        self.in_use_peak.load(Ordering::Relaxed)
    }

    /// Reset the high-water mark (between runs that want per-run peaks).
    pub fn reset_peak(&self) {
        self.in_use_peak.store(0, Ordering::Relaxed);
    }
}

/// A task: receives the pool so it can spawn follow-up work.
pub type Job<'env> = Box<dyn FnOnce(&Pool<'env>) + Send + 'env>;

/// The dynamic work-stealing pool. Create-and-run with [`Pool::run`]; tasks
/// spawned at any point (from the seeder or from running tasks) are executed
/// before `run` returns.
pub struct Pool<'env> {
    queues: Vec<Mutex<VecDeque<Job<'env>>>>,
    /// Tasks spawned but not yet finished.
    pending: AtomicUsize,
    /// Round-robin cursor for queue placement.
    place: AtomicUsize,
    /// Parked-worker wakeup: the epoch bumps whenever new work may exist.
    signal: (Mutex<u64>, Condvar),
    budget: Arc<ThreadBudget>,
}

impl<'env> Pool<'env> {
    /// Run a pool of `threads` workers over `budget`. `seed` is called with
    /// the pool to spawn the initial tasks; `run` returns when every task
    /// (including all dynamically spawned ones) has completed.
    pub fn run(threads: usize, budget: Arc<ThreadBudget>, seed: impl FnOnce(&Pool<'env>)) {
        let threads = threads.max(1);
        let pool = Pool {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            place: AtomicUsize::new(0),
            signal: (Mutex::new(0), Condvar::new()),
            budget,
        };
        seed(&pool);
        if pool.pending.load(Ordering::Acquire) == 0 {
            return;
        }
        std::thread::scope(|scope| {
            for me in 0..threads {
                let pool = &pool;
                scope.spawn(move || pool.worker(me));
            }
        });
    }

    /// The budget this pool's workers draw from.
    pub fn budget(&self) -> &Arc<ThreadBudget> {
        &self.budget
    }

    /// Number of tasks spawned but not yet finished.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Spawn a task; it will run on some worker before [`Pool::run`]
    /// returns.
    pub fn spawn(&self, job: Job<'env>) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        let at = self.place.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[at].lock().expect("queue lock").push_back(job);
        self.wake();
    }

    fn wake(&self) {
        let mut epoch = self.signal.0.lock().expect("signal lock");
        *epoch += 1;
        self.signal.1.notify_all();
    }

    fn worker(&self, me: usize) {
        loop {
            // Snapshot the epoch before looking for work: any spawn after
            // this point bumps it, so the parked wait cannot miss a wake-up.
            let seen_epoch = *self.signal.0.lock().expect("signal lock");
            // Own work first (LIFO), then steal (FIFO).
            let job = {
                let own = self.queues[me].lock().expect("queue lock").pop_back();
                own.or_else(|| {
                    (1..self.queues.len()).find_map(|offset| {
                        let victim = (me + offset) % self.queues.len();
                        self.queues[victim].lock().expect("queue lock").pop_front()
                    })
                })
            };
            match job {
                Some(job) => {
                    // Hold a budget permit exactly while working; a parked
                    // worker's permit is what Step-2 batch helpers borrow.
                    self.budget.acquire_one();
                    job(self);
                    self.budget.release(1);
                    if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                        self.wake();
                    }
                }
                None => {
                    if self.pending.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    let mut epoch = self.signal.0.lock().expect("signal lock");
                    while *epoch == seen_epoch && self.pending.load(Ordering::Acquire) > 0 {
                        epoch = self.signal.1.wait(epoch).expect("signal lock");
                    }
                }
            }
        }
    }
}

/// A countdown gate: holds a job until `deps` prerequisite completions have
/// been signalled, then spawns it on the pool. This is how dependency edges
/// (explore jobs → composition jobs) are expressed on a dynamic pool.
pub struct Latch<'env> {
    remaining: AtomicUsize,
    job: Mutex<Option<Job<'env>>>,
}

impl<'env> Latch<'env> {
    /// A latch releasing `job` after `deps` completions. With `deps == 0`
    /// the caller should invoke [`Latch::ready`] once (or just spawn the job
    /// directly).
    pub fn new(deps: usize, job: Job<'env>) -> Arc<Self> {
        Arc::new(Latch {
            remaining: AtomicUsize::new(deps.max(1)),
            job: Mutex::new(Some(job)),
        })
    }

    /// Signal one completed dependency; the last signal spawns the job.
    pub fn ready(&self, pool: &Pool<'env>) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let job = self
                .job
                .lock()
                .expect("latch job")
                .take()
                .expect("latch released twice");
            pool.spawn(job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_every_seeded_task_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let budget = ThreadBudget::new(4);
        Pool::run(4, budget, |pool| {
            for _ in 0..100 {
                let counter = counter.clone();
                pool.spawn(Box::new(move |_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }));
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn tasks_spawned_from_tasks_run_before_the_pool_exits() {
        // A 3-level dynamic fan-out: 4 roots each spawn 4 children, each
        // child spawns 2 grandchildren — none of which exist when the pool
        // starts.
        let counter = Arc::new(AtomicUsize::new(0));
        let budget = ThreadBudget::new(4);
        Pool::run(4, budget, |pool| {
            for _ in 0..4 {
                let counter = counter.clone();
                pool.spawn(Box::new(move |pool| {
                    for _ in 0..4 {
                        let counter = counter.clone();
                        pool.spawn(Box::new(move |pool| {
                            for _ in 0..2 {
                                let counter = counter.clone();
                                pool.spawn(Box::new(move |_| {
                                    counter.fetch_add(1, Ordering::Relaxed);
                                }));
                            }
                        }));
                    }
                }));
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn latches_enforce_dependency_order() {
        // 2 roots -> 8 middles -> 1 sink, with order witnessed by a clock.
        let clock = Arc::new(AtomicUsize::new(1));
        let stamps: Arc<Vec<AtomicUsize>> =
            Arc::new((0..11).map(|_| AtomicUsize::new(0)).collect());
        let budget = ThreadBudget::new(4);
        Pool::run(4, budget, |pool| {
            let stamp = |i: usize| {
                let clock = clock.clone();
                let stamps = stamps.clone();
                move || stamps[i].store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst)
            };
            let sink = Latch::new(8, {
                let s = stamp(10);
                Box::new(move |_| s())
            });
            let middles: Vec<Arc<Latch>> = (0..8)
                .map(|i| {
                    let s = stamp(2 + i);
                    let sink = sink.clone();
                    Latch::new(
                        2,
                        Box::new(move |pool| {
                            s();
                            sink.ready(pool);
                        }),
                    )
                })
                .collect();
            for r in 0..2 {
                let s = stamp(r);
                let middles = middles.clone();
                pool.spawn(Box::new(move |pool| {
                    s();
                    for m in &middles {
                        m.ready(pool);
                    }
                }));
            }
        });
        let at = |i: usize| stamps[i].load(Ordering::SeqCst);
        for m in 2..10 {
            assert!(at(m) > at(0) && at(m) > at(1), "middle {m} ran early");
            assert!(at(10) > at(m), "sink ran before middle {m}");
        }
    }

    #[test]
    fn budget_bounds_concurrent_work_and_tracks_the_peak() {
        // 32 tasks on a 3-permit budget with 8 workers: no more than 3 may
        // ever be inside a task at once.
        let live = Arc::new(AtomicUsize::new(0));
        let observed_max = Arc::new(AtomicUsize::new(0));
        let budget = ThreadBudget::new(3);
        Pool::run(8, budget.clone(), |pool| {
            for _ in 0..32 {
                let live = live.clone();
                let observed_max = observed_max.clone();
                pool.spawn(Box::new(move |_| {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    observed_max.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    live.fetch_sub(1, Ordering::SeqCst);
                }));
            }
        });
        assert!(
            observed_max.load(Ordering::SeqCst) <= 3,
            "more than 3 tasks ran concurrently"
        );
        assert!(budget.peak_in_use() <= 3);
        assert!(budget.peak_in_use() >= 1);
        budget.reset_peak();
        assert_eq!(budget.peak_in_use(), 0);
    }

    #[test]
    fn helpers_can_borrow_only_parked_workers_permits() {
        let budget = ThreadBudget::new(4);
        assert_eq!(budget.try_acquire(10), 4, "all permits free initially");
        assert_eq!(budget.try_acquire(1), 0, "nothing left");
        budget.release(3);
        assert_eq!(budget.try_acquire(2), 2);
        budget.release(3);
        assert_eq!(budget.total(), 4);
    }

    #[test]
    fn empty_pool_is_a_no_op() {
        Pool::run(4, ThreadBudget::new(4), |_| {});
    }
}

//! Incremental re-verification on configuration diffs — the `vericlick
//! diff` entry point.
//!
//! Given the *old* and *new* versions of a set of named pipeline configs,
//! [`crate::service::VerifyService::verify_diff`] (or serving a
//! [`crate::service::VerifyRequest::Diff`]) fingerprints both sides
//! ([`dataplane_pipeline::diff`]) and re-verifies **only** the scenarios
//! whose pipeline actually changed:
//!
//! * identical configs are skipped outright,
//! * wiring-only diffs get a composition-only pass — with a store warm from
//!   the old run the planner schedules **zero** element-exploration jobs,
//! * behaviour diffs re-explore exactly the changed element behaviours (the
//!   content-addressed store serves every unchanged one).
//!
//! The scenarios of changed configs run on the service's shared
//! scheduler exactly like a full run, so verdicts are identical to
//! verifying the new configs from scratch — only the work is smaller.

use crate::json::Json;
use crate::matrix::{MatrixReport, MATRIX_INSTRUCTION_BOUND};
use crate::orchestrator::Scenario;
use dataplane_pipeline::{parse_config, ConfigError};
use dataplane_verifier::Property;
use std::fmt;

/// One named pipeline configuration (Click-like text).
#[derive(Clone, Debug)]
pub struct NamedConfig {
    /// The pipeline's name (used as the scenario label).
    pub name: String,
    /// The configuration text ([`dataplane_pipeline::parse_config`] syntax).
    pub config: String,
}

impl NamedConfig {
    /// Build a named config.
    pub fn new(name: impl Into<String>, config: impl Into<String>) -> Self {
        NamedConfig {
            name: name.into(),
            config: config.into(),
        }
    }
}

/// How one named config changed between the old and new sets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffKind {
    /// Nothing verification-relevant changed; no scenario re-verified.
    Identical,
    /// Only the wiring changed: scenarios re-verified composition-only
    /// (zero element jobs against a store warm from the old configs).
    WiringOnly,
    /// Element behaviour changed (edits, additions, or removals): scenarios
    /// re-verified, re-exploring only the changed behaviours.
    ElementsChanged,
    /// The config is new; all its scenarios are verified.
    Added,
}

/// The diff verdict for one named config.
#[derive(Clone, Debug)]
pub struct DiffEntry {
    /// The config's name.
    pub name: String,
    /// What kind of change this config saw.
    pub kind: DiffKind,
    /// Instances whose behaviour changed (including added/removed ones).
    pub changed_elements: Vec<String>,
    /// Scenarios planned for re-verification (0 for identical configs).
    pub scenarios_planned: usize,
}

/// The result of an incremental re-verification.
pub struct DiffReport {
    /// Per-config diff verdicts, in new-set order.
    pub entries: Vec<DiffEntry>,
    /// Old config names absent from the new set (nothing to verify).
    pub removed_configs: Vec<String>,
    /// Scenarios skipped because their config was identical.
    pub skipped_scenarios: usize,
    /// The verification of the re-planned scenarios only.
    pub matrix: MatrixReport,
}

impl DiffReport {
    /// Scenarios that were re-verified.
    pub fn reverified_scenarios(&self) -> usize {
        self.matrix.scenarios.len()
    }

    fn entries_json(&self) -> Json {
        Json::Arr(
            self.entries
                .iter()
                .map(crate::wire::diff_entry_to_json)
                .collect(),
        )
    }

    /// The machine-readable (operational) form of the report,
    /// schema-versioned for forward compatibility.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::int(crate::wire::REPORT_SCHEMA)),
            ("kind", Json::str("diff")),
            ("entries", self.entries_json()),
            (
                "removed_configs",
                Json::Arr(self.removed_configs.iter().map(Json::str).collect()),
            ),
            (
                "skipped_scenarios",
                Json::int(self.skipped_scenarios as u64),
            ),
            ("matrix", self.matrix.to_json()),
        ])
    }

    /// The deterministic form: the diff decision plus the matrix's
    /// deterministic content — byte-identical across runs and processes.
    pub fn deterministic_json(&self) -> Json {
        Json::obj([
            ("schema", Json::int(crate::wire::REPORT_SCHEMA)),
            ("kind", Json::str("diff")),
            ("entries", self.entries_json()),
            (
                "removed_configs",
                Json::Arr(self.removed_configs.iter().map(Json::str).collect()),
            ),
            (
                "skipped_scenarios",
                Json::int(self.skipped_scenarios as u64),
            ),
            ("matrix", self.matrix.deterministic_json()),
        ])
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "config diff: {} re-verified, {} skipped (identical), {} removed",
            self.reverified_scenarios(),
            self.skipped_scenarios,
            self.removed_configs.len()
        )?;
        for entry in &self.entries {
            write!(f, "  {:<20} {:?}", entry.name, entry.kind)?;
            if entry.changed_elements.is_empty() {
                writeln!(f, " ({} scenarios)", entry.scenarios_planned)?;
            } else {
                writeln!(
                    f,
                    " ({} scenarios; elements: {})",
                    entry.scenarios_planned,
                    entry.changed_elements.join(", ")
                )?;
            }
        }
        write!(f, "{}", self.matrix)
    }
}

/// The property classes verifiable for an arbitrary config without
/// per-pipeline knowledge: crash freedom and bounded per-packet execution
/// (reachability needs the delivery/drop sets, which only the preset matrix
/// encodes).
pub fn default_properties(_pipeline: &str) -> Vec<Property> {
    vec![
        Property::CrashFreedom,
        Property::BoundedInstructions {
            max_instructions: MATRIX_INSTRUCTION_BOUND,
        },
    ]
}

/// Parse each named config and instantiate `properties(name)` scenarios for
/// it (the baseline the diff is later taken against).
pub fn config_scenarios(
    configs: &[NamedConfig],
    properties: &dyn Fn(&str) -> Vec<Property>,
) -> Result<Vec<Scenario>, ConfigError> {
    let mut scenarios = Vec::new();
    for config in configs {
        for property in properties(&config.name) {
            scenarios.push(Scenario::new(
                config.name.clone(),
                parse_config(&config.config)?,
                property,
            ));
        }
    }
    Ok(scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_properties_cover_crash_and_bounds() {
        let properties = default_properties("any");
        assert_eq!(properties.len(), 2);
        assert!(properties
            .iter()
            .any(|p| matches!(p, Property::CrashFreedom)));
        assert!(properties
            .iter()
            .any(|p| matches!(p, Property::BoundedInstructions { .. })));
    }

    #[test]
    fn config_scenarios_propagates_parse_errors() {
        let bad = [NamedConfig::new("x", "not a config")];
        assert!(config_scenarios(&bad, &default_properties).is_err());
    }
}

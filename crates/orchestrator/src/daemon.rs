//! `vericlick serve` — a persistent verification daemon.
//!
//! A [`Daemon`] owns one warm core — a shared [`SummaryStore`] and a set
//! of default [`VerifierOptions`] — and serves line-JSON
//! [`VerifyRequest`]s over TCP or Unix-domain sockets. Because the store
//! outlives any one request, a client re-submitting a matrix it (or
//! anyone else) already verified plans **zero** element-exploration jobs:
//! Step 1 is entirely served from memory, and only the cheap Step-2
//! compositions re-run. Deterministic report content is byte-identical
//! to a cold in-process run either way.
//!
//! ## The client protocol
//!
//! One connection is one session, framed as line-delimited JSON (the
//! same framing the worker protocol uses — see [`crate::exec`]):
//!
//! 1. client → `{schema, kind: "hello", proto, options?}` — an optional
//!    full options document pins this session's [`VerifierOptions`];
//!    omitted, the session runs under the daemon's defaults.
//! 2. daemon → `{schema, kind: "hello", proto, sessions, workers}` on
//!    admission. When `max_sessions` verify sessions are already in
//!    flight the hello is held in a bounded line instead: the client
//!    gets `{kind: "queued", position}` at once and the normal `hello`
//!    reply when a slot frees. Past `max_queue` pending hellos the
//!    daemon refuses outright with `{kind: "error", message: "busy:
//!    ...", retry_after_ms}`.
//! 3. client → `{kind: "verify", request}` — any serialised
//!    [`VerifyRequest`], repeatable; a watch session's rolling baseline
//!    lives exactly as long as the connection.
//! 4. daemon → `{kind: "response", request, proven, violated, unknown,
//!    ok, display, report, det_report, dispatch}` — the server-rendered
//!    human text plus both report documents, or `{kind: "error",
//!    message}` for a request that failed (the session survives).
//!
//! A *worker* can also dial the daemon: `{kind: "join", addr}` appends
//! `addr` to the daemon's socket-worker pool (deduplicated) and is
//! answered with `{kind: "joined", workers}`; the connection then
//! closes. Joins bypass admission — fleet growth is never queued behind
//! verify traffic — and take effect on the next dispatch: every request
//! re-plans capacity against the pool as it is *now*, so a worker joined
//! mid-session picks up work on the very next phase.
//!
//! When the pool is non-empty, requests execute on a
//! [`WorkerFleet`] with the daemon's [`HeartbeatConfig`], so a wedged
//! worker is marked suspect and its jobs requeue to survivors (see
//! [`crate::exec::dispatch`]); summary dedup (worker protocol v4) means
//! a warm worker receives `"held"` markers instead of re-shipped
//! summary documents.

use crate::cache::SummaryStore;
use crate::exec::transport::{read_frame, write_frame, Connector, SocketConnector, WorkerAddr};
use crate::exec::{DispatchStats, ExecError, HeartbeatConfig, Transport, WorkerFleet};
use crate::json::Json;
use crate::service::{
    ComposeShardMode, VerifyOutcome, VerifyRequest, VerifyResponse, VerifyService,
};
use crate::wire::{options_from_json, options_to_json};
use dataplane_verifier::VerifierOptions;
use std::io::{BufRead, BufReader, Write};
use std::sync::{Arc, Condvar, Mutex};

/// Client protocol name, sent in every hello/join frame.
pub const CLIENT_PROTO: &str = "vericlick-client";

/// Client protocol schema version. Version 1 speaks hello (with optional
/// session options), verify, join, queued, response, and error frames.
pub const CLIENT_SCHEMA: u64 = 1;

/// The per-queue-slot component of the `retry_after_ms` hint a full
/// daemon puts in its busy error frame: a refused client is told to come
/// back after roughly this long per session it would have waited behind.
pub const BUSY_RETRY_HINT_MS: u64 = 250;

/// How a [`Daemon`] is built: the warm core plus admission and fleet
/// tuning.
pub struct DaemonConfig {
    /// Default verifier options for sessions that pin none of their own.
    pub options: VerifierOptions,
    /// Worker threads per session service (0 = one per available core).
    pub threads: usize,
    /// The shared summary store — the daemon's warmth. `None` builds a
    /// fresh in-memory store; pass a persistent store to keep summaries
    /// across daemon restarts too.
    pub store: Option<Arc<SummaryStore>>,
    /// Verify sessions admitted concurrently; further hellos queue (up to
    /// `max_queue`) or are refused with a `busy` error frame
    /// (0 = unlimited).
    pub max_sessions: usize,
    /// Hellos held in line when all `max_sessions` slots are taken. A
    /// queued client gets a `queued` frame (with its position) at once
    /// and the normal `hello` reply when a slot frees; past this depth
    /// the busy error frame carries a `retry_after_ms` hint instead
    /// (0 = never queue, refuse immediately).
    pub max_queue: usize,
    /// The initial socket-worker pool (workers can also [`Daemon::join`]
    /// at runtime).
    pub workers: Vec<WorkerAddr>,
    /// How fleet-dispatched requests shard Step-2 work (see
    /// [`VerifyService::with_compose_shard_mode`]; the default is
    /// [`ComposeShardMode::Auto`]).
    pub compose_shard: ComposeShardMode,
    /// Heartbeat tuning for the fleets built per request.
    pub heartbeat: HeartbeatConfig,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            options: VerifierOptions::default(),
            threads: 0,
            store: None,
            max_sessions: 4,
            max_queue: 4,
            workers: Vec::new(),
            compose_shard: ComposeShardMode::default(),
            heartbeat: HeartbeatConfig::default(),
        }
    }
}

struct DaemonInner {
    store: Arc<SummaryStore>,
    options: VerifierOptions,
    threads: usize,
    max_sessions: usize,
    max_queue: usize,
    heartbeat: HeartbeatConfig,
    compose_shard: ComposeShardMode,
    workers: Mutex<Vec<WorkerAddr>>,
    admission: Mutex<Admission>,
    freed: Condvar,
}

/// The admission ledger: sessions holding a slot plus hellos in line.
#[derive(Default)]
struct Admission {
    active: usize,
    queued: usize,
}

/// What the admission gate decided for one hello.
enum Admit {
    /// A slot was free; the session runs now.
    Admitted(SessionGuard),
    /// All slots taken, queue has room: the 1-based position in line.
    Queued(usize),
    /// Slots and queue both full — refuse with a retry hint.
    Busy,
}

/// The daemon: cheap to clone (sessions share one inner state), so the
/// accept loop hands one clone to each session thread.
#[derive(Clone)]
pub struct Daemon {
    inner: Arc<DaemonInner>,
}

/// Decrements the in-flight session count on drop, however the session
/// ends.
struct SessionGuard(Arc<DaemonInner>);

impl SessionGuard {
    /// Admit a session, queue it, or refuse it.
    fn admit(inner: &Arc<DaemonInner>) -> Admit {
        let mut admission = inner.admission.lock().expect("daemon sessions");
        if inner.max_sessions == 0 || admission.active < inner.max_sessions {
            admission.active += 1;
            return Admit::Admitted(SessionGuard(inner.clone()));
        }
        if admission.queued < inner.max_queue {
            admission.queued += 1;
            return Admit::Queued(admission.queued);
        }
        Admit::Busy
    }

    /// Block a queued hello until a slot frees, then take it. The caller
    /// must have incremented `queued` via [`SessionGuard::admit`].
    fn wait_from_queue(inner: &Arc<DaemonInner>) -> SessionGuard {
        let mut admission = inner.admission.lock().expect("daemon sessions");
        loop {
            if admission.active < inner.max_sessions {
                admission.queued -= 1;
                admission.active += 1;
                return SessionGuard(inner.clone());
            }
            admission = inner.freed.wait(admission).expect("daemon sessions");
        }
    }
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        let mut admission = self.0.admission.lock().expect("daemon sessions");
        admission.active -= 1;
        drop(admission);
        self.0.freed.notify_all();
    }
}

fn error_frame(message: &str) -> Json {
    Json::obj([
        ("schema", Json::int(CLIENT_SCHEMA)),
        ("kind", Json::str("error")),
        ("message", Json::str(message)),
    ])
}

/// The `dispatch` object of a response frame — same keys as the matrix
/// report's operational document.
fn dispatch_json(d: &DispatchStats) -> Json {
    Json::obj([
        ("workers", Json::int(d.workers as u64)),
        ("workers_lost", Json::int(d.workers_lost as u64)),
        ("capacity", Json::int(d.capacity as u64)),
        ("jobs_dispatched", Json::int(d.jobs_dispatched as u64)),
        ("jobs_completed", Json::int(d.jobs_completed as u64)),
        ("jobs_requeued", Json::int(d.jobs_requeued as u64)),
        ("explore_jobs", Json::int(d.explore_jobs as u64)),
        ("compose_jobs", Json::int(d.compose_jobs as u64)),
        ("temporal_jobs", Json::int(d.temporal_jobs as u64)),
        ("compose_shards", Json::int(d.compose_shards as u64)),
        ("shards_cancelled", Json::int(d.shards_cancelled as u64)),
        ("shards_split", Json::int(d.shards_split as u64)),
        ("shards_stolen", Json::int(d.shards_stolen as u64)),
        ("steal_wait_ns", Json::int(d.steal_wait_ns)),
        ("fuzz_jobs", Json::int(d.fuzz_jobs as u64)),
        ("workers_idle", Json::int(d.workers_idle as u64)),
        ("summaries_shipped", Json::int(d.summaries_shipped as u64)),
        ("summaries_deduped", Json::int(d.summaries_deduped as u64)),
        ("summary_bytes_shipped", Json::int(d.summary_bytes_shipped)),
        ("summary_bytes_deduped", Json::int(d.summary_bytes_deduped)),
        ("workers_suspect", Json::int(d.workers_suspect as u64)),
    ])
}

fn response_frame(response: &VerifyResponse, dispatch: Option<&DispatchStats>) -> Json {
    let (proven, violated, unknown) = response.verdict_counts();
    let ok = match &response.outcome {
        VerifyOutcome::Conformance(c) => c.ok(),
        VerifyOutcome::Bound(_) => true,
        _ => violated == 0 && unknown == 0,
    };
    Json::obj([
        ("schema", Json::int(CLIENT_SCHEMA)),
        ("kind", Json::str("response")),
        ("request", Json::str(response.request)),
        ("proven", Json::int(proven as u64)),
        ("violated", Json::int(violated as u64)),
        ("unknown", Json::int(unknown as u64)),
        ("ok", Json::Bool(ok)),
        ("display", Json::str(format!("{response}"))),
        ("report", response.to_json()),
        ("det_report", response.deterministic_json()),
        (
            "dispatch",
            dispatch.map(dispatch_json).unwrap_or(Json::Null),
        ),
    ])
}

impl Daemon {
    /// Build a daemon from `config`. No socket is bound yet — call
    /// [`Daemon::serve`], or drive sessions directly with
    /// [`Daemon::serve_connection`].
    pub fn new(config: DaemonConfig) -> Daemon {
        Daemon {
            inner: Arc::new(DaemonInner {
                store: config
                    .store
                    .unwrap_or_else(|| Arc::new(SummaryStore::in_memory())),
                options: config.options,
                threads: config.threads,
                max_sessions: config.max_sessions,
                max_queue: config.max_queue,
                heartbeat: config.heartbeat,
                compose_shard: config.compose_shard,
                workers: Mutex::new(config.workers),
                admission: Mutex::new(Admission::default()),
                freed: Condvar::new(),
            }),
        }
    }

    /// The daemon's shared summary store (the warmth clients benefit
    /// from).
    pub fn store(&self) -> &Arc<SummaryStore> {
        &self.inner.store
    }

    /// The current socket-worker pool.
    pub fn workers(&self) -> Vec<WorkerAddr> {
        self.inner.workers.lock().expect("daemon workers").clone()
    }

    /// Append `addr` to the worker pool (deduplicated); returns the pool
    /// size afterwards. Takes effect on the next dispatched request —
    /// the daemon re-plans fleet capacity per request.
    pub fn join(&self, addr: WorkerAddr) -> usize {
        let mut workers = self.inner.workers.lock().expect("daemon workers");
        if !workers.contains(&addr) {
            workers.push(addr);
        }
        workers.len()
    }

    /// Serve one client request on a per-session `service`, returning
    /// the reply frame or an error message (which the session survives).
    fn serve_request(&self, service: &VerifyService, frame: &Json) -> Result<Json, String> {
        let doc = frame
            .get("request")
            .ok_or("verify frame without a request")?;
        let request = VerifyRequest::from_json(doc).map_err(|e| e.to_string())?;
        let workers = self.workers();
        if workers.is_empty() {
            let response = service.serve(request).map_err(|e| e.to_string())?;
            Ok(response_frame(&response, None))
        } else {
            let fleet = WorkerFleet::sockets(workers).with_heartbeat(self.inner.heartbeat);
            let response = service
                .serve_with(request, Some(&fleet))
                .map_err(|e| e.to_string())?;
            let stats = fleet.registry().stats();
            Ok(response_frame(&response, Some(&stats)))
        }
    }

    /// Serve one connection: the hello/join handshake, then verify
    /// frames until the peer closes the stream. Generic over the stream
    /// pair so tests can drive a session over in-memory buffers exactly
    /// as the socket listener drives it.
    pub fn serve_connection<R, W>(&self, mut input: R, mut output: W) -> Result<(), ExecError>
    where
        R: BufRead,
        W: Write,
    {
        let inner = &self.inner;
        let Some(hello) = read_frame(&mut input)? else {
            return Ok(());
        };
        let kind = hello.get("kind").and_then(Json::as_str);
        let schema = hello.get("schema").and_then(Json::as_u64);
        let proto = hello.get("proto").and_then(Json::as_str);
        if schema != Some(CLIENT_SCHEMA) || proto != Some(CLIENT_PROTO) {
            let message = format!(
                "version mismatch: peer sent kind {kind:?} proto {proto:?} schema {schema:?}; \
                 this daemon speaks {CLIENT_PROTO} schema {CLIENT_SCHEMA}"
            );
            let _ = write_frame(&mut output, &error_frame(&message));
            return Err(ExecError::Protocol(message));
        }
        match kind {
            // A worker announcing itself: grow the pool, ack, done.
            // Joins bypass admission so fleet growth is never queued
            // behind verify traffic.
            Some("join") => {
                let addr = hello
                    .get("addr")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ExecError::Protocol("join frame without an addr".into()))?;
                let workers = self.join(WorkerAddr::parse(addr));
                return write_frame(
                    &mut output,
                    &Json::obj([
                        ("schema", Json::int(CLIENT_SCHEMA)),
                        ("kind", Json::str("joined")),
                        ("workers", Json::int(workers as u64)),
                    ]),
                );
            }
            Some("hello") => {}
            other => {
                let message = format!("expected a hello or join frame, got kind {other:?}");
                let _ = write_frame(&mut output, &error_frame(&message));
                return Err(ExecError::Protocol(message));
            }
        }

        // Admission: hold a bounded line of pending hellos (each told its
        // position at once, served as slots free), and past that refuse
        // with a retry hint — an *unbounded* backlog would make a daemon
        // wedged behind deep queues look exactly like a wedged daemon.
        let guard = match SessionGuard::admit(inner) {
            Admit::Admitted(guard) => guard,
            Admit::Queued(position) => {
                write_frame(
                    &mut output,
                    &Json::obj([
                        ("schema", Json::int(CLIENT_SCHEMA)),
                        ("kind", Json::str("queued")),
                        ("position", Json::int(position as u64)),
                    ]),
                )?;
                SessionGuard::wait_from_queue(inner)
            }
            Admit::Busy => {
                let retry_after_ms = BUSY_RETRY_HINT_MS * (inner.max_queue as u64 + 1);
                let mut frame = error_frame(&format!(
                    "busy: {} sessions in flight (max {}) and the queue of {} is full; \
                     retry in ~{retry_after_ms}ms",
                    inner.max_sessions, inner.max_sessions, inner.max_queue
                ));
                if let Json::Obj(map) = &mut frame {
                    map.insert("retry_after_ms".into(), Json::int(retry_after_ms));
                }
                return write_frame(&mut output, &frame);
            }
        };

        // Session options: a full document in the hello pins them for
        // every request on this connection; otherwise the daemon's
        // defaults apply.
        let options = match hello.get("options") {
            Some(doc) => match options_from_json(doc) {
                Ok(options) => options,
                Err(e) => {
                    let message = format!("undecodable session options: {e}");
                    let _ = write_frame(&mut output, &error_frame(&message));
                    return Err(ExecError::Protocol(message));
                }
            },
            None => inner.options.clone(),
        };
        write_frame(
            &mut output,
            &Json::obj([
                ("schema", Json::int(CLIENT_SCHEMA)),
                ("kind", Json::str("hello")),
                ("proto", Json::str(CLIENT_PROTO)),
                (
                    "sessions",
                    Json::int(inner.admission.lock().expect("daemon sessions").active as u64),
                ),
                ("workers", Json::int(self.workers().len() as u64)),
            ]),
        )?;

        // The per-session service: fresh options and watch baseline,
        // shared (warm) store.
        let service = VerifyService::new()
            .with_threads(inner.threads)
            .with_options(options)
            .with_compose_shard_mode(inner.compose_shard)
            .with_store(inner.store.clone());
        while let Some(frame) = read_frame(&mut input)? {
            let reply = match frame.get("kind").and_then(Json::as_str) {
                Some("verify") => match self.serve_request(&service, &frame) {
                    Ok(reply) => reply,
                    Err(message) => error_frame(&message),
                },
                other => error_frame(&format!("unsupported frame kind {other:?}")),
            };
            write_frame(&mut output, &reply)?;
        }
        drop(guard);
        Ok(())
    }

    /// Bind `addr` and serve clients until killed (or, with `once`,
    /// exactly one connection — used by tests). Each connection runs on
    /// its own thread so admission and warm-store sharing are real.
    ///
    /// `log` receives one line per lifecycle event; the first is always
    /// `listening on <addr>` with the *actual* bound address (so `:0`
    /// TCP listeners report their chosen port).
    pub fn serve(
        &self,
        addr: &WorkerAddr,
        once: bool,
        log: Arc<dyn Fn(&str) + Send + Sync>,
    ) -> Result<(), ExecError> {
        match addr {
            WorkerAddr::Tcp(spec) => {
                let listener = std::net::TcpListener::bind(spec)
                    .map_err(|e| ExecError::Connect(format!("bind {spec}: {e}")))?;
                let local = listener
                    .local_addr()
                    .map_err(|e| ExecError::Connect(format!("bind {spec}: {e}")))?;
                log(&format!("listening on {local}"));
                loop {
                    let (stream, peer) = listener
                        .accept()
                        .map_err(|e| ExecError::Connect(format!("accept: {e}")))?;
                    log(&format!("session from {peer}"));
                    let reader = stream
                        .try_clone()
                        .map_err(|e| ExecError::Connect(format!("clone stream: {e}")))?;
                    if once {
                        match self.serve_connection(BufReader::new(reader), stream) {
                            Ok(()) => log(&format!("session from {peer} done")),
                            Err(e) => log(&format!("session from {peer} failed: {e}")),
                        }
                        return Ok(());
                    }
                    let daemon = self.clone();
                    let log = log.clone();
                    std::thread::spawn(move || {
                        match daemon.serve_connection(BufReader::new(reader), stream) {
                            Ok(()) => log(&format!("session from {peer} done")),
                            Err(e) => log(&format!("session from {peer} failed: {e}")),
                        }
                    });
                }
            }
            WorkerAddr::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path).map_err(|e| {
                        ExecError::Connect(format!("remove stale {}: {e}", path.display()))
                    })?;
                }
                let listener = std::os::unix::net::UnixListener::bind(path)
                    .map_err(|e| ExecError::Connect(format!("bind {}: {e}", path.display())))?;
                log(&format!("listening on {}", path.display()));
                let mut session = 0usize;
                loop {
                    let (stream, _) = listener
                        .accept()
                        .map_err(|e| ExecError::Connect(format!("accept: {e}")))?;
                    session += 1;
                    log(&format!("session #{session}"));
                    let reader = stream
                        .try_clone()
                        .map_err(|e| ExecError::Connect(format!("clone stream: {e}")))?;
                    if once {
                        match self.serve_connection(BufReader::new(reader), stream) {
                            Ok(()) => log(&format!("session #{session} done")),
                            Err(e) => log(&format!("session #{session} failed: {e}")),
                        }
                        return Ok(());
                    }
                    let daemon = self.clone();
                    let log = log.clone();
                    std::thread::spawn(move || {
                        match daemon.serve_connection(BufReader::new(reader), stream) {
                            Ok(()) => log(&format!("session #{session} done")),
                            Err(e) => log(&format!("session #{session} failed: {e}")),
                        }
                    });
                }
            }
        }
    }
}

/// One served request as the client sees it: verdict counts, the
/// server-rendered display text, and both report documents.
pub struct ClientReply {
    /// The request kind the daemon served (`"matrix"`, `"diff"`, ...).
    pub request: String,
    /// Scenarios proven.
    pub proven: usize,
    /// Scenarios violated.
    pub violated: usize,
    /// Scenarios that ended Unknown.
    pub unknown: usize,
    /// The one-bit outcome: conformance passed, or no scenario violated
    /// or Unknown.
    pub ok: bool,
    /// The server-rendered human-readable report.
    pub display: String,
    /// The operational report document (timings, cache stats, dispatch).
    pub report: Json,
    /// The deterministic report document — byte-identical to the same
    /// request served in-process.
    pub det_report: Json,
    /// The fleet's dispatch stats for this request, when the daemon
    /// executed on socket workers (`Json::Null` otherwise).
    pub dispatch: Json,
}

impl ClientReply {
    fn from_frame(frame: &Json) -> Result<ClientReply, ExecError> {
        match frame.get("kind").and_then(Json::as_str) {
            Some("response") => {}
            Some("error") => {
                let message = frame
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified daemon error");
                return Err(ExecError::Protocol(format!("daemon: {message}")));
            }
            other => {
                return Err(ExecError::Protocol(format!(
                    "expected a response frame, got kind {other:?}"
                )))
            }
        }
        let count = |key: &str| {
            frame
                .get(key)
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| ExecError::Protocol(format!("response frame without {key}")))
        };
        Ok(ClientReply {
            request: frame
                .get("request")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            proven: count("proven")?,
            violated: count("violated")?,
            unknown: count("unknown")?,
            ok: frame
                .get("ok")
                .and_then(Json::as_bool)
                .ok_or_else(|| ExecError::Protocol("response frame without ok".into()))?,
            display: frame
                .get("display")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            report: frame.get("report").cloned().unwrap_or(Json::Null),
            det_report: frame.get("det_report").cloned().unwrap_or(Json::Null),
            dispatch: frame.get("dispatch").cloned().unwrap_or(Json::Null),
        })
    }

    /// One dispatch-stats counter (`summaries_deduped`, ...), when the
    /// daemon dispatched this request to socket workers.
    pub fn dispatch_stat(&self, key: &str) -> Option<u64> {
        self.dispatch.get(key).and_then(Json::as_u64)
    }
}

/// A connected client session: hello exchanged, options pinned; each
/// [`DaemonClient::verify`] call is one request/response round trip.
pub struct DaemonClient {
    transport: Box<dyn Transport>,
}

impl DaemonClient {
    /// Dial `addr` and complete the hello handshake. `options` pins the
    /// session's verifier options; `None` accepts the daemon's defaults.
    pub fn connect(
        addr: &WorkerAddr,
        options: Option<&VerifierOptions>,
    ) -> Result<DaemonClient, ExecError> {
        let mut transport = SocketConnector { addr: addr.clone() }.connect()?;
        let mut hello = vec![
            ("schema", Json::int(CLIENT_SCHEMA)),
            ("kind", Json::str("hello")),
            ("proto", Json::str(CLIENT_PROTO)),
        ];
        if let Some(options) = options {
            hello.push(("options", options_to_json(options)));
        }
        transport.send(&Json::obj(hello))?;
        // A busy daemon may park us in its admission queue first: a
        // `queued` frame names our position, and the real hello follows
        // once a slot frees. Keep waiting through it.
        loop {
            let reply = transport.recv()?.ok_or_else(|| {
                ExecError::Protocol("daemon closed the stream before a hello reply".into())
            })?;
            match reply.get("kind").and_then(Json::as_str) {
                Some("hello") => return Ok(DaemonClient { transport }),
                Some("queued") => continue,
                Some("error") => {
                    let message = reply
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("unspecified daemon error");
                    let hint = reply
                        .get("retry_after_ms")
                        .and_then(Json::as_u64)
                        .map(|ms| format!(" (retry_after_ms {ms})"))
                        .unwrap_or_default();
                    return Err(ExecError::Protocol(format!("daemon: {message}{hint}")));
                }
                other => {
                    return Err(ExecError::Protocol(format!(
                        "expected a hello reply, got kind {other:?}"
                    )))
                }
            }
        }
    }

    /// Submit one request and wait for its reply.
    pub fn verify(&mut self, request: &VerifyRequest) -> Result<ClientReply, ExecError> {
        let doc = request
            .to_json()
            .map_err(|e| ExecError::Protocol(format!("unserialisable request: {e}")))?;
        self.transport.send(&Json::obj([
            ("schema", Json::int(CLIENT_SCHEMA)),
            ("kind", Json::str("verify")),
            ("request", doc),
        ]))?;
        let reply = self.transport.recv()?.ok_or_else(|| {
            ExecError::Protocol("daemon closed the stream before a response".into())
        })?;
        ClientReply::from_frame(&reply)
    }
}

/// Announce `worker` (a listening socket worker's address) to the daemon
/// at `daemon`; returns the pool size after joining. This is one
/// connection, closed after the ack — `vericlick worker --join` calls it
/// once its own listener is bound.
pub fn join_fleet(daemon: &WorkerAddr, worker: &WorkerAddr) -> Result<usize, ExecError> {
    let mut transport = SocketConnector {
        addr: daemon.clone(),
    }
    .connect()?;
    transport.send(&Json::obj([
        ("schema", Json::int(CLIENT_SCHEMA)),
        ("kind", Json::str("join")),
        ("proto", Json::str(CLIENT_PROTO)),
        ("addr", Json::str(worker.to_string())),
    ]))?;
    let reply = transport
        .recv()?
        .ok_or_else(|| ExecError::Protocol("daemon closed the stream before a join ack".into()))?;
    match reply.get("kind").and_then(Json::as_str) {
        Some("joined") => reply
            .get("workers")
            .and_then(Json::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| ExecError::Protocol("joined ack without a worker count".into())),
        Some("error") => Err(ExecError::Protocol(format!(
            "daemon: {}",
            reply
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("unspecified daemon error")
        ))),
        other => Err(ExecError::Protocol(format!(
            "expected a joined ack, got kind {other:?}"
        ))),
    }
}

//! The parallel verification orchestrator.
//!
//! A verification request (pipeline × property) is decomposed exactly along
//! the paper's seam: Step 1 — one symbolic-exploration job per **distinct
//! element behaviour**, embarrassingly parallel and content-addressed-
//! cacheable; Step 2 — one composition job per scenario, depending on the
//! explorations of the elements its pipeline contains. The jobs run on the
//! work-stealing [`crate::executor`]; summaries flow through the shared
//! [`SummaryStore`], so a warm store (same process or the persistent tier)
//! skips every unchanged element job and re-verification touches only what
//! changed.
//!
//! Composition itself reuses `dataplane_verifier::Verifier` seeded with the
//! pre-computed summaries, so a parallel run performs exactly the
//! computation a sequential run performs — the verdicts, counterexamples,
//! and unproven paths are identical (asserted by the equivalence tests in
//! `tests/orchestrator.rs`).

use crate::cache::{CacheStats, SummaryStore};
use crate::executor::{Latch, Pool, ThreadBudget};
use crate::fingerprint::{element_fingerprint, Fingerprint};
use dataplane_ir::Program;
use dataplane_pipeline::Pipeline;
use dataplane_symbex::{explore_with_cancel, CancelToken};
use dataplane_verifier::{
    ComposeExecutor, ElementSummary, ParallelComposition, Property, Report, Verdict, Verifier,
    VerifierOptions,
};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The verifier-facing handle onto the shared scheduler: a composition's
/// Step-2 walk workers draw threads from a [`ThreadBudget`] instead of
/// spawning a scoped pool of their own. When the budget is the
/// orchestrator's, the *free* permits are exactly the parked scenario
/// workers — so Step-2 parallelism expands onto idle cores and contracts to
/// inline execution when every core is already composing, and the peak
/// number of live solver threads never exceeds the one pool size.
#[derive(Debug)]
pub struct BudgetedComposition {
    budget: Arc<ThreadBudget>,
    /// True when the calling thread does not already hold a permit (callers
    /// outside the orchestrator pool, e.g. a bare `Verifier`): the caller's
    /// own work then also draws from the budget.
    caller_needs_permit: bool,
}

impl BudgetedComposition {
    /// A composition executor over the orchestrator's shared budget (the
    /// caller is a pool worker that already holds a permit).
    pub fn shared(budget: Arc<ThreadBudget>) -> Self {
        BudgetedComposition {
            budget,
            caller_needs_permit: false,
        }
    }

    /// A composition executor over its own budget of `threads` (for callers
    /// outside any pool — each such verifier caps its Step-2 work at
    /// `threads` live threads including the caller).
    pub fn standalone(threads: usize) -> Self {
        BudgetedComposition {
            budget: ThreadBudget::new(threads),
            caller_needs_permit: true,
        }
    }
}

impl ComposeExecutor for BudgetedComposition {
    fn run_batch<'a>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'a>>) {
        let mut jobs = jobs;
        let caller_permits = if self.caller_needs_permit {
            self.budget.try_acquire(1)
        } else {
            0
        };
        // Helpers borrow only *free* permits — parked pool workers — and
        // never block waiting for one: with none free the batch simply runs
        // on the caller alone.
        let helpers = self.budget.try_acquire(jobs.len().saturating_sub(1));
        let helper_jobs: Vec<_> = (0..helpers).filter_map(|_| jobs.pop()).collect();
        std::thread::scope(|scope| {
            for job in helper_jobs {
                scope.spawn(job);
            }
            for job in jobs {
                job();
            }
        });
        self.budget.release(helpers + caller_permits);
    }

    fn parallelism(&self) -> usize {
        self.budget.total()
    }
}

/// A [`ParallelComposition`] config that fans Step-2 work out over a
/// standalone budget of `threads` live threads (0 = one per available
/// core). Each verifier configured this way schedules independently — use
/// [`Orchestrator`]'s default shared scheduler when verifying many
/// scenarios at once.
pub fn parallel_composition(threads: usize) -> ParallelComposition {
    let threads = if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    ParallelComposition::over(Arc::new(BudgetedComposition::standalone(threads)))
}

/// How the orchestrator dispatches each composition's Step-2 work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompositionMode {
    /// Step-2 walk workers borrow idle capacity from the orchestrator's own
    /// scenario pool (the default): one scheduler, one thread bound.
    SharedPool,
    /// Each composition gets its own standalone budget of this many threads
    /// (the pre-shared-scheduler behaviour; ceiling `scenarios × threads`
    /// live threads — kept for comparison benches).
    Scoped(usize),
    /// Step-2 checks run inline on the composition's thread.
    Sequential,
}

/// One cell of a verification matrix: a pipeline to verify and the property
/// to verify it against.
pub struct Scenario {
    /// Label of the pipeline (e.g. `"ip_router"`).
    pub pipeline_name: String,
    /// The pipeline itself (consumed by the run).
    pub pipeline: Pipeline,
    /// The property to check.
    pub property: Property,
}

impl Scenario {
    /// Build a scenario.
    pub fn new(pipeline_name: impl Into<String>, pipeline: Pipeline, property: Property) -> Self {
        Scenario {
            pipeline_name: pipeline_name.into(),
            pipeline,
            property,
        }
    }

    /// `pipeline/property` label used in reports and progress events.
    pub fn label(&self) -> String {
        format!("{}/{}", self.pipeline_name, self.property.name())
    }
}

/// An element-exploration job of a [`JobPlan`].
pub struct ExploreSpec {
    /// Content-addressed identity of the summary this job produces.
    pub fingerprint: Fingerprint,
    /// Element type name (the summary-cache key half).
    pub type_name: String,
    /// Element configuration key (the other half).
    pub config_key: String,
    /// The IR program to explore.
    pub program: Program,
}

/// The decomposition of a batch of scenarios into jobs with dependency
/// edges: `explore[i]` are the Step-1 jobs (no dependencies, one per
/// distinct uncached element behaviour across the whole batch);
/// `scenario_deps[s]` lists the explore jobs scenario `s`'s composition job
/// depends on.
pub struct JobPlan {
    /// Step-1 jobs for behaviours missing from the store.
    pub explore: Vec<ExploreSpec>,
    /// Distinct behaviours that were already in the store (no job planned).
    pub cached: usize,
    /// Per scenario: indexes into `explore` its composition depends on.
    pub scenario_deps: Vec<Vec<usize>>,
    /// Per scenario, per pipeline element: the summary fingerprint the
    /// composition job will fetch.
    pub element_fingerprints: Vec<Vec<Fingerprint>>,
}

/// Build the job plan for `scenarios` against the current contents of
/// `store`: distinct element behaviours are deduplicated across every
/// scenario, and behaviours the store already holds produce no job.
pub fn plan(scenarios: &[Scenario], options: &VerifierOptions, store: &SummaryStore) -> JobPlan {
    let mut explore: Vec<ExploreSpec> = Vec::new();
    let mut job_of: std::collections::HashMap<Fingerprint, Option<usize>> =
        std::collections::HashMap::new();
    let mut cached = 0usize;
    let mut scenario_deps = Vec::with_capacity(scenarios.len());
    let mut element_fingerprints = Vec::with_capacity(scenarios.len());
    for scenario in scenarios {
        let mut deps = Vec::new();
        let mut fps = Vec::with_capacity(scenario.pipeline.len());
        for (_, node) in scenario.pipeline.iter() {
            let element = node.element.as_ref();
            let fp = element_fingerprint(element, &options.engine);
            fps.push(fp);
            let entry = job_of.entry(fp).or_insert_with(|| {
                if store.get(fp).is_some() {
                    cached += 1;
                    None
                } else {
                    explore.push(ExploreSpec {
                        fingerprint: fp,
                        type_name: element.type_name().to_string(),
                        config_key: element.config_key(),
                        program: element.model(),
                    });
                    Some(explore.len() - 1)
                }
            });
            if let Some(job) = *entry {
                if !deps.contains(&job) {
                    deps.push(job);
                }
            }
        }
        scenario_deps.push(deps);
        element_fingerprints.push(fps);
    }
    JobPlan {
        explore,
        cached,
        scenario_deps,
        element_fingerprints,
    }
}

/// What the orchestrator is doing, streamed to an observer as jobs run.
#[derive(Clone, Debug)]
pub enum ProgressEvent {
    /// The plan is built: how much Step-1 work there is and how much the
    /// cache already covers.
    Planned {
        /// Explore jobs to run.
        explore_jobs: usize,
        /// Distinct behaviours served by the warm store.
        cached: usize,
        /// Composition jobs (one per scenario).
        scenarios: usize,
    },
    /// An element exploration started.
    ExploreStarted {
        /// Element type name.
        type_name: String,
    },
    /// An element exploration finished.
    ExploreFinished {
        /// Element type name.
        type_name: String,
        /// Wall-clock exploration time.
        elapsed: Duration,
        /// False if the exploration exceeded its budget (the composition
        /// job will surface this exactly as a sequential run would).
        ok: bool,
    },
    /// A scenario's composition started.
    ComposeStarted {
        /// `pipeline/property` label.
        scenario: String,
    },
    /// A scenario's composition finished.
    ComposeFinished {
        /// `pipeline/property` label.
        scenario: String,
        /// The verdict reached.
        verdict: Verdict,
        /// Wall-clock composition time.
        elapsed: Duration,
    },
}

type ProgressFn = Arc<dyn Fn(&ProgressEvent) + Send + Sync>;

/// The result of one scenario within a matrix run.
pub struct ScenarioReport {
    /// `pipeline` label.
    pub pipeline_name: String,
    /// The full verification report (verdict, counterexamples, stats).
    pub report: Report,
}

impl ScenarioReport {
    /// `pipeline/property` label.
    pub fn label(&self) -> String {
        format!("{}/{}", self.pipeline_name, self.report.property.name())
    }
}

/// Orchestrates parallel verification over a shared summary store.
pub struct Orchestrator {
    options: VerifierOptions,
    threads: usize,
    store: Arc<SummaryStore>,
    progress: Option<ProgressFn>,
    budget: Arc<ThreadBudget>,
    compose_mode: CompositionMode,
}

impl Default for Orchestrator {
    fn default() -> Self {
        Orchestrator::new()
    }
}

impl Orchestrator {
    /// An orchestrator with default verifier options, an in-memory store,
    /// one worker per available core, and the shared scheduler dispatching
    /// both scenario- and check-level work.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Orchestrator {
            options: VerifierOptions::default(),
            threads,
            store: Arc::new(SummaryStore::in_memory()),
            progress: None,
            budget: ThreadBudget::new(threads),
            compose_mode: CompositionMode::SharedPool,
        }
    }

    /// Replace the summary store (e.g. with a persistent one).
    pub fn with_store(mut self, store: Arc<SummaryStore>) -> Self {
        self.store = store;
        self
    }

    /// Set the worker-thread count — which is also the pool-wide bound on
    /// live solver threads (0 keeps the auto-detected value).
    pub fn with_threads(mut self, threads: usize) -> Self {
        if threads > 0 {
            self.threads = threads;
            self.budget = ThreadBudget::new(threads);
        }
        self
    }

    /// Replace the verifier options (engine budgets, composition budgets).
    /// An explicit `options.parallel` executor takes precedence over the
    /// orchestrator's composition mode.
    pub fn with_options(mut self, options: VerifierOptions) -> Self {
        self.options = options;
        self
    }

    /// Choose how each composition's Step-2 work is dispatched (the default
    /// is [`CompositionMode::SharedPool`]).
    pub fn with_composition_mode(mut self, mode: CompositionMode) -> Self {
        self.compose_mode = mode;
        self
    }

    /// Compatibility knob: `threads == 0` selects the shared scheduler
    /// (the default); a positive count selects the legacy per-composition
    /// scoped budget of that many threads (ceiling `scenarios × threads`
    /// live solver threads — useful only for comparison benches).
    pub fn with_parallel_composition(self, threads: usize) -> Self {
        self.with_composition_mode(if threads == 0 {
            CompositionMode::SharedPool
        } else {
            CompositionMode::Scoped(threads)
        })
    }

    /// The shared thread budget (exposes the live-thread high-water mark).
    pub fn thread_budget(&self) -> &Arc<ThreadBudget> {
        &self.budget
    }

    /// Stream progress events to `observer`.
    pub fn with_progress(
        mut self,
        observer: impl Fn(&ProgressEvent) + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(Arc::new(observer));
        self
    }

    /// The shared summary store.
    pub fn store(&self) -> &Arc<SummaryStore> {
        &self.store
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured verifier options.
    pub fn options(&self) -> &VerifierOptions {
        &self.options
    }

    fn emit(&self, event: ProgressEvent) {
        if let Some(observer) = &self.progress {
            observer(&event);
        }
    }

    /// Verify one pipeline against one property, running its element
    /// explorations in parallel. Equivalent to (and verdict-identical with)
    /// `Verifier::verify`.
    pub fn verify(&self, pipeline: Pipeline, property: Property) -> Report {
        let name = format!("pipeline[{}]", pipeline.len());
        let mut matrix = self.run(vec![Scenario::new(name, pipeline, property)]);
        matrix.scenarios.remove(0).report
    }

    /// The verifier options a composition job of this orchestrator runs
    /// with: the configured options, with Step-2 dispatch wired per the
    /// composition mode unless the caller installed an explicit executor.
    fn composition_options(&self) -> VerifierOptions {
        let mut options = self.options.clone();
        if !options.parallel.is_parallel() {
            options.parallel = match self.compose_mode {
                CompositionMode::SharedPool => ParallelComposition::over(Arc::new(
                    BudgetedComposition::shared(self.budget.clone()),
                )),
                CompositionMode::Scoped(threads) => parallel_composition(threads),
                CompositionMode::Sequential => ParallelComposition::sequential(),
            };
        }
        options
    }

    /// Run a batch of scenarios on the shared scheduler: plan, spawn Step-1
    /// explore tasks, and let each completed dependency set dynamically
    /// spawn its composition task onto the *same* pool — whose idle workers
    /// in turn serve as Step-2 walk helpers, so every kind of work competes
    /// for one thread budget.
    pub fn run(&self, scenarios: Vec<Scenario>) -> MatrixReport {
        let started = Instant::now();
        let stats_before = self.store.stats();
        self.budget.reset_peak();
        let job_plan = plan(&scenarios, &self.options, &self.store);
        self.emit(ProgressEvent::Planned {
            explore_jobs: job_plan.explore.len(),
            cached: job_plan.cached,
            scenarios: scenarios.len(),
        });

        let explore_jobs = job_plan.explore.len();
        let cached_jobs = job_plan.cached;
        let options = self.composition_options();
        let cancel = CancelToken::new();
        let mut slots: Vec<Arc<Mutex<Option<ScenarioReport>>>> = Vec::new();

        Pool::run(self.threads, self.budget.clone(), |pool| {
            // Composition tasks, latched on their element explorations.
            // `dependents[j]` collects the latches explore job `j` must
            // signal when it completes.
            let mut dependents: Vec<Vec<Arc<Latch<'_>>>> = vec![Vec::new(); explore_jobs];
            for (scenario, (deps, fingerprints)) in scenarios.into_iter().zip(
                job_plan
                    .scenario_deps
                    .into_iter()
                    .zip(job_plan.element_fingerprints),
            ) {
                let slot = Arc::new(Mutex::new(None));
                slots.push(slot.clone());
                let store = self.store.clone();
                let progress = self.progress.clone();
                let options = options.clone();
                let job = Box::new(move |_: &Pool<'_>| {
                    let label = scenario.label();
                    if let Some(observer) = &progress {
                        observer(&ProgressEvent::ComposeStarted {
                            scenario: label.clone(),
                        });
                    }
                    let start = Instant::now();
                    let mut verifier = Verifier::with_options(options);
                    verifier.seed_summaries(fingerprints.iter().filter_map(|fp| store.get(*fp)));
                    let report = verifier.verify(&scenario.pipeline, &scenario.property);
                    if let Some(observer) = &progress {
                        observer(&ProgressEvent::ComposeFinished {
                            scenario: label,
                            verdict: report.verdict.clone(),
                            elapsed: start.elapsed(),
                        });
                    }
                    *slot.lock().expect("report slot") = Some(ScenarioReport {
                        pipeline_name: scenario.pipeline_name,
                        report,
                    });
                });
                if deps.is_empty() {
                    pool.spawn(job);
                } else {
                    let latch = Latch::new(deps.len(), job);
                    for dep in deps {
                        dependents[dep].push(latch.clone());
                    }
                }
            }

            // Step-1 tasks: explore one element behaviour each, publish to
            // the shared store, then release whatever compositions were
            // waiting on it.
            for (idx, spec) in job_plan.explore.into_iter().enumerate() {
                let store = self.store.clone();
                let progress = self.progress.clone();
                let engine = self.options.engine.clone();
                let cancel = cancel.clone();
                let latches = std::mem::take(&mut dependents[idx]);
                pool.spawn(Box::new(move |pool| {
                    if let Some(observer) = &progress {
                        observer(&ProgressEvent::ExploreStarted {
                            type_name: spec.type_name.clone(),
                        });
                    }
                    let start = Instant::now();
                    let result = explore_with_cancel(&spec.program, &engine, &cancel);
                    let elapsed = start.elapsed();
                    let ok = result.is_ok();
                    if let Ok(exploration) = result {
                        store.insert(
                            spec.fingerprint,
                            Arc::new(ElementSummary {
                                type_name: spec.type_name.clone(),
                                config_key: spec.config_key.clone(),
                                exploration,
                                explore_time: elapsed,
                            }),
                        );
                    }
                    // A budget-exceeded exploration publishes nothing; the
                    // composition job then explores inline and reports the
                    // failure exactly as the sequential verifier does.
                    if let Some(observer) = &progress {
                        observer(&ProgressEvent::ExploreFinished {
                            type_name: spec.type_name.clone(),
                            elapsed,
                            ok,
                        });
                    }
                    for latch in &latches {
                        latch.ready(pool);
                    }
                }));
            }
        });

        let scenario_reports: Vec<ScenarioReport> = slots
            .into_iter()
            .map(|slot| {
                slot.lock()
                    .expect("report slot")
                    .take()
                    .expect("every composition job ran")
            })
            .collect();
        let stats_after = self.store.stats();
        MatrixReport {
            scenarios: scenario_reports,
            explore_jobs,
            cached_jobs,
            threads: self.threads,
            peak_live_threads: self.budget.peak_in_use(),
            cache: CacheStats {
                memory_hits: stats_after.memory_hits - stats_before.memory_hits,
                disk_hits: stats_after.disk_hits - stats_before.disk_hits,
                misses: stats_after.misses - stats_before.misses,
                persisted: stats_after.persisted - stats_before.persisted,
                disk_errors: stats_after.disk_errors - stats_before.disk_errors,
                evicted: stats_after.evicted - stats_before.evicted,
            },
            elapsed: started.elapsed(),
        }
    }
}

/// Verify with a fresh sequential `Verifier` — the baseline the parallel
/// path is compared against in tests and the `e7_parallel_verification`
/// bench.
pub fn verify_sequential(
    pipeline: &Pipeline,
    property: &Property,
    options: &VerifierOptions,
) -> Report {
    Verifier::with_options(options.clone()).verify(pipeline, property)
}

pub use crate::matrix::MatrixReport;

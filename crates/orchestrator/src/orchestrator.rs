//! The job-planning vocabulary and the deprecated `Orchestrator` shim.
//!
//! A verification request (pipeline × property) is decomposed exactly along
//! the paper's seam: Step 1 — one symbolic-exploration job per **distinct
//! element behaviour**, embarrassingly parallel and content-addressed-
//! cacheable; Step 2 — one composition job per scenario, depending on the
//! explorations of the elements its pipeline contains. The planning
//! primitives live here ([`plan`], [`JobPlan`], [`Scenario`]); the engine
//! that runs them is [`crate::service::VerifyService`], today's front door.
//!
//! [`Orchestrator`] — the pre-`VerifyService` builder API — remains as a
//! thin deprecated shim for one release so downstream code migrates without
//! breaking: every method delegates to an owned `VerifyService`.

use crate::cache::SummaryStore;
use crate::diff::{DiffReport, NamedConfig};
use crate::executor::ThreadBudget;
use crate::fingerprint::{element_fingerprint, Fingerprint};
use crate::service::VerifyService;
use dataplane_ir::Program;
use dataplane_pipeline::{ConfigError, Pipeline};
use dataplane_verifier::{
    ComposeExecutor, ParallelComposition, Property, Report, Verdict, Verifier, VerifierOptions,
};
use std::sync::Arc;
use std::time::Duration;

/// The verifier-facing handle onto the shared scheduler: a composition's
/// Step-2 walk workers draw threads from a [`ThreadBudget`] instead of
/// spawning a scoped pool of their own. When the budget is the
/// service's, the *free* permits are exactly the parked scenario
/// workers — so Step-2 parallelism expands onto idle cores and contracts to
/// inline execution when every core is already composing, and the peak
/// number of live solver threads never exceeds the one pool size.
#[derive(Debug)]
pub struct BudgetedComposition {
    budget: Arc<ThreadBudget>,
    /// True when the calling thread does not already hold a permit (callers
    /// outside the service pool, e.g. a bare `Verifier`): the caller's
    /// own work then also draws from the budget.
    caller_needs_permit: bool,
}

impl BudgetedComposition {
    /// A composition executor over the service's shared budget (the
    /// caller is a pool worker that already holds a permit).
    pub fn shared(budget: Arc<ThreadBudget>) -> Self {
        BudgetedComposition {
            budget,
            caller_needs_permit: false,
        }
    }

    /// A composition executor over its own budget of `threads` (for callers
    /// outside any pool — each such verifier caps its Step-2 work at
    /// `threads` live threads including the caller).
    pub fn standalone(threads: usize) -> Self {
        BudgetedComposition {
            budget: ThreadBudget::new(threads),
            caller_needs_permit: true,
        }
    }
}

impl ComposeExecutor for BudgetedComposition {
    fn run_batch<'a>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'a>>) {
        let mut jobs = jobs;
        let caller_permits = if self.caller_needs_permit {
            self.budget.try_acquire(1)
        } else {
            0
        };
        // Helpers borrow only *free* permits — parked pool workers — and
        // never block waiting for one: with none free the batch simply runs
        // on the caller alone.
        let helpers = self.budget.try_acquire(jobs.len().saturating_sub(1));
        let helper_jobs: Vec<_> = (0..helpers).filter_map(|_| jobs.pop()).collect();
        std::thread::scope(|scope| {
            for job in helper_jobs {
                scope.spawn(job);
            }
            for job in jobs {
                job();
            }
        });
        self.budget.release(helpers + caller_permits);
    }

    fn parallelism(&self) -> usize {
        self.budget.total()
    }
}

/// A [`ParallelComposition`] config that fans Step-2 work out over a
/// standalone budget of `threads` live threads (0 = one per available
/// core). Each verifier configured this way schedules independently — use
/// [`VerifyService`]'s default shared scheduler when verifying many
/// scenarios at once.
pub fn parallel_composition(threads: usize) -> ParallelComposition {
    let threads = if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    ParallelComposition::over(Arc::new(BudgetedComposition::standalone(threads)))
}

/// How the service dispatches each composition's Step-2 work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompositionMode {
    /// Step-2 walk workers borrow idle capacity from the service's own
    /// scenario pool (the default): one scheduler, one thread bound.
    SharedPool,
    /// Each composition gets its own standalone budget of this many threads
    /// (the pre-shared-scheduler behaviour; ceiling `scenarios × threads`
    /// live threads — kept for comparison benches).
    Scoped(usize),
    /// Step-2 checks run inline on the composition's thread.
    Sequential,
}

/// One cell of a verification matrix: a pipeline to verify and the property
/// to verify it against.
pub struct Scenario {
    /// Label of the pipeline (e.g. `"ip_router"`).
    pub pipeline_name: String,
    /// The pipeline itself (consumed by the run).
    pub pipeline: Pipeline,
    /// The property to check.
    pub property: Property,
}

impl Scenario {
    /// Build a scenario.
    pub fn new(pipeline_name: impl Into<String>, pipeline: Pipeline, property: Property) -> Self {
        Scenario {
            pipeline_name: pipeline_name.into(),
            pipeline,
            property,
        }
    }

    /// `pipeline/property` label used in reports and progress events.
    pub fn label(&self) -> String {
        format!("{}/{}", self.pipeline_name, self.property.name())
    }
}

/// An element-exploration job of a [`JobPlan`].
pub struct ExploreSpec {
    /// Content-addressed identity of the summary this job produces.
    pub fingerprint: Fingerprint,
    /// Element type name (the summary-cache key half).
    pub type_name: String,
    /// Element configuration key (the other half).
    pub config_key: String,
    /// The IR program to explore.
    pub program: Program,
}

/// The decomposition of a batch of scenarios into jobs with dependency
/// edges: `explore[i]` are the Step-1 jobs (no dependencies, one per
/// distinct uncached element behaviour across the whole batch);
/// `scenario_deps[s]` lists the explore jobs scenario `s`'s composition job
/// depends on.
pub struct JobPlan {
    /// Step-1 jobs for behaviours missing from the store.
    pub explore: Vec<ExploreSpec>,
    /// Distinct behaviours that were already in the store (no job planned).
    pub cached: usize,
    /// Per scenario: indexes into `explore` its composition depends on.
    pub scenario_deps: Vec<Vec<usize>>,
    /// Per scenario, per pipeline element: the summary fingerprint the
    /// composition job will fetch.
    pub element_fingerprints: Vec<Vec<Fingerprint>>,
}

/// Build the job plan for `scenarios` against the current contents of
/// `store`: distinct element behaviours are deduplicated across every
/// scenario, and behaviours the store already holds produce no job.
///
/// (For the *serialisable* plan artifact that crosses process boundaries,
/// see [`VerifyService::plan_request`] and [`crate::wire::PlanSpec`].)
pub fn plan(scenarios: &[Scenario], options: &VerifierOptions, store: &SummaryStore) -> JobPlan {
    let mut explore: Vec<ExploreSpec> = Vec::new();
    let mut job_of: std::collections::HashMap<Fingerprint, Option<usize>> =
        std::collections::HashMap::new();
    let mut cached = 0usize;
    let mut scenario_deps = Vec::with_capacity(scenarios.len());
    let mut element_fingerprints = Vec::with_capacity(scenarios.len());
    for scenario in scenarios {
        let mut deps = Vec::new();
        let mut fps = Vec::with_capacity(scenario.pipeline.len());
        for (_, node) in scenario.pipeline.iter() {
            let element = node.element.as_ref();
            let fp = element_fingerprint(element, &options.engine);
            fps.push(fp);
            let entry = job_of.entry(fp).or_insert_with(|| {
                if store.get(fp).is_some() {
                    cached += 1;
                    None
                } else {
                    explore.push(ExploreSpec {
                        fingerprint: fp,
                        type_name: element.type_name().to_string(),
                        config_key: element.config_key(),
                        program: element.model(),
                    });
                    Some(explore.len() - 1)
                }
            });
            if let Some(job) = *entry {
                if !deps.contains(&job) {
                    deps.push(job);
                }
            }
        }
        scenario_deps.push(deps);
        element_fingerprints.push(fps);
    }
    JobPlan {
        explore,
        cached,
        scenario_deps,
        element_fingerprints,
    }
}

/// What the service is doing, streamed to an observer as jobs run.
#[derive(Clone, Debug)]
pub enum ProgressEvent {
    /// The plan is built: how much Step-1 work there is and how much the
    /// cache already covers.
    Planned {
        /// Explore jobs to run.
        explore_jobs: usize,
        /// Distinct behaviours served by the warm store.
        cached: usize,
        /// Composition jobs (one per scenario).
        scenarios: usize,
    },
    /// An element exploration started.
    ExploreStarted {
        /// Element type name.
        type_name: String,
    },
    /// An element exploration finished.
    ExploreFinished {
        /// Element type name.
        type_name: String,
        /// Wall-clock exploration time.
        elapsed: Duration,
        /// False if the exploration exceeded its budget (the composition
        /// job will surface this exactly as a sequential run would).
        ok: bool,
    },
    /// A scenario's composition started.
    ComposeStarted {
        /// `pipeline/property` label.
        scenario: String,
    },
    /// A scenario's composition finished.
    ComposeFinished {
        /// `pipeline/property` label.
        scenario: String,
        /// The verdict reached.
        verdict: Verdict,
        /// Wall-clock composition time.
        elapsed: Duration,
    },
}

/// The result of one scenario within a matrix run.
pub struct ScenarioReport {
    /// `pipeline` label.
    pub pipeline_name: String,
    /// The full verification report (verdict, counterexamples, stats).
    pub report: Report,
}

impl ScenarioReport {
    /// `pipeline/property` label.
    pub fn label(&self) -> String {
        format!("{}/{}", self.pipeline_name, self.report.property.name())
    }
}

/// The pre-`VerifyService` builder API, kept as a thin shim for one
/// release: every method delegates to an owned [`VerifyService`].
///
/// Migration map:
///
/// | old                              | new                                   |
/// |----------------------------------|---------------------------------------|
/// | `Orchestrator::new()…`           | `VerifyService::new()…` (same builder) |
/// | `orchestrator.verify(p, prop)`   | `service.verify(p, prop)` or `serve(VerifyRequest::Single{…})` |
/// | `orchestrator.run(scenarios)`    | `service.run_matrix(scenarios)` or `serve(VerifyRequest::Matrix{…})` |
/// | `orchestrator.verify_diff(…)`    | `service.verify_diff(…)` or `serve(VerifyRequest::Diff{…})` |
#[deprecated(
    since = "0.1.0",
    note = "use VerifyService — the typed front door (serve / plan_request / execute_plan)"
)]
pub struct Orchestrator {
    service: VerifyService,
}

#[allow(deprecated)]
impl Default for Orchestrator {
    fn default() -> Self {
        Orchestrator::new()
    }
}

#[allow(deprecated)]
impl Orchestrator {
    /// An orchestrator with default verifier options, an in-memory store,
    /// one worker per available core, and the shared scheduler dispatching
    /// both scenario- and check-level work.
    pub fn new() -> Self {
        Orchestrator {
            service: VerifyService::new(),
        }
    }

    /// Replace the summary store (e.g. with a persistent one).
    pub fn with_store(mut self, store: Arc<SummaryStore>) -> Self {
        self.service = self.service.with_store(store);
        self
    }

    /// Set the worker-thread count (0 keeps the auto-detected value).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.service = self.service.with_threads(threads);
        self
    }

    /// Replace the verifier options.
    pub fn with_options(mut self, options: VerifierOptions) -> Self {
        self.service = self.service.with_options(options);
        self
    }

    /// Choose how each composition's Step-2 work is dispatched.
    pub fn with_composition_mode(mut self, mode: CompositionMode) -> Self {
        self.service = self.service.with_composition_mode(mode);
        self
    }

    /// Compatibility knob: `threads == 0` selects the shared scheduler
    /// (the default); a positive count selects the legacy per-composition
    /// scoped budget of that many threads.
    pub fn with_parallel_composition(self, threads: usize) -> Self {
        self.with_composition_mode(if threads == 0 {
            CompositionMode::SharedPool
        } else {
            CompositionMode::Scoped(threads)
        })
    }

    /// Stream progress events to `observer`.
    pub fn with_progress(
        mut self,
        observer: impl Fn(&ProgressEvent) + Send + Sync + 'static,
    ) -> Self {
        self.service = self.service.with_progress(observer);
        self
    }

    /// The shared thread budget (exposes the live-thread high-water mark).
    pub fn thread_budget(&self) -> &Arc<ThreadBudget> {
        self.service.thread_budget()
    }

    /// The shared summary store.
    pub fn store(&self) -> &Arc<SummaryStore> {
        self.service.store()
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.service.threads()
    }

    /// The configured verifier options.
    pub fn options(&self) -> &VerifierOptions {
        self.service.options()
    }

    /// The owned [`VerifyService`] — the permanent API this shim fronts.
    pub fn service(&self) -> &VerifyService {
        &self.service
    }

    /// Verify one pipeline against one property.
    pub fn verify(&self, pipeline: Pipeline, property: Property) -> Report {
        self.service.verify(pipeline, property)
    }

    /// Run a batch of scenarios on the shared scheduler.
    pub fn run(&self, scenarios: Vec<Scenario>) -> MatrixReport {
        self.service.run_matrix(scenarios)
    }

    /// Incrementally re-verify `new` against `old`.
    pub fn verify_diff(
        &self,
        old: &[NamedConfig],
        new: &[NamedConfig],
        properties: &dyn Fn(&str) -> Vec<Property>,
    ) -> Result<DiffReport, ConfigError> {
        self.service.verify_diff(old, new, properties)
    }
}

/// Verify with a fresh sequential `Verifier` — the baseline the parallel
/// path is compared against in tests and the `e7_parallel_verification`
/// bench.
pub fn verify_sequential(
    pipeline: &Pipeline,
    property: &Property,
    options: &VerifierOptions,
) -> Report {
    Verifier::with_options(options.clone()).verify(pipeline, property)
}

pub use crate::matrix::MatrixReport;

//! Plan execution backends: the [`Executor`] trait and its two
//! implementations.
//!
//! A [`crate::wire::PlanSpec`]'s explore jobs are pure functions of their
//! [`crate::wire::JobSpec`] (element factory spec + engine configuration),
//! so *where* they run is a deployment decision:
//!
//! * [`InProcessExecutor`] — today's behaviour: jobs run on the shared
//!   work-stealing [`crate::executor::Pool`] of the calling process.
//! * [`SubprocessWorker`] — the remote-worker path proven end to end: jobs
//!   are partitioned across worker *processes*, shipped as one JSON line
//!   over each worker's stdin, and the summaries come back as one JSON line
//!   on its stdout (the same framing works over a socket). Results are
//!   folded back **by job index**, so the report is byte-identical to the
//!   in-process run no matter which worker finished first.
//!
//! Workers re-instantiate each element from the config factory and verify
//! the job's content fingerprint before exploring, so a worker built from
//! different element code fails loudly instead of poisoning the cache.

use crate::executor::{Pool, ThreadBudget};
use crate::fingerprint::element_fingerprint;
use crate::json::Json;
use crate::persist::{summary_from_json, summary_to_json};
use crate::wire::{engine_from_json, engine_to_json, job_from_json, job_to_json, JobSpec};
use dataplane_pipeline::config::instantiate;
use dataplane_symbex::{explore, EngineConfig};
use dataplane_verifier::ElementSummary;
use std::fmt;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// Schema version of the worker-protocol frames.
pub const WORKER_SCHEMA: u64 = 1;

/// A plan-execution failure.
#[derive(Clone, Debug)]
pub enum ExecError {
    /// A worker process could not be spawned or waited on.
    Spawn(String),
    /// A protocol frame did not parse or had the wrong shape.
    Protocol(String),
    /// A job failed inside a worker (unknown element type, fingerprint
    /// mismatch, ...).
    Job(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Spawn(m) => write!(f, "executor: cannot run worker: {m}"),
            ExecError::Protocol(m) => write!(f, "executor: protocol error: {m}"),
            ExecError::Job(m) => write!(f, "executor: job failed: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// How a plan's element-exploration jobs are computed.
///
/// `explore_jobs` must return one slot per input job, **in input order**
/// (`None` where the exploration exceeded its engine budget — the
/// composition then explores inline and reports the failure exactly as a
/// sequential run would). Implementations may compute the slots in any
/// order or place; the order of the returned vector is the determinism
/// contract.
pub trait Executor: Send + Sync {
    /// A human-readable name for logs and reports.
    fn describe(&self) -> String;

    /// Compute the summaries of `jobs` under `engine`.
    fn explore_jobs(
        &self,
        jobs: &[JobSpec],
        engine: &EngineConfig,
    ) -> Result<Vec<Option<ElementSummary>>, ExecError>;
}

/// Run one job: factory-instantiate, fingerprint-check, explore.
fn run_job(job: &JobSpec, engine: &EngineConfig) -> Result<Option<ElementSummary>, ExecError> {
    let element = instantiate(&job.type_name, &job.config_args).map_err(|e| {
        ExecError::Job(format!(
            "{}({}) does not instantiate: {e}",
            job.type_name, job.config_args
        ))
    })?;
    let actual = element_fingerprint(element.as_ref(), engine);
    if actual != job.fingerprint {
        return Err(ExecError::Job(format!(
            "{}({}) fingerprint mismatch: plan says {}, this build computes {} \
             (worker built from different element code?)",
            job.type_name, job.config_args, job.fingerprint, actual
        )));
    }
    let start = Instant::now();
    match explore(&element.model(), engine) {
        Ok(exploration) => Ok(Some(ElementSummary {
            type_name: element.type_name().to_string(),
            config_key: element.config_key(),
            exploration,
            explore_time: start.elapsed(),
        })),
        // Budget exceeded: publish nothing; composition handles it inline.
        Err(_) => Ok(None),
    }
}

/// The in-process executor: explore jobs fan out over a work-stealing pool
/// in this process (the pre-plan behaviour of the orchestrator).
#[derive(Clone, Debug)]
pub struct InProcessExecutor {
    threads: usize,
}

impl InProcessExecutor {
    /// An executor over `threads` pool workers (0 = one per available
    /// core).
    pub fn new(threads: usize) -> Self {
        let threads = if threads > 0 {
            threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        InProcessExecutor { threads }
    }
}

impl Executor for InProcessExecutor {
    fn describe(&self) -> String {
        format!("in-process pool ({} threads)", self.threads)
    }

    fn explore_jobs(
        &self,
        jobs: &[JobSpec],
        engine: &EngineConfig,
    ) -> Result<Vec<Option<ElementSummary>>, ExecError> {
        type JobSlot = Mutex<Option<Result<Option<ElementSummary>, ExecError>>>;
        let slots: Vec<JobSlot> = jobs.iter().map(|_| Mutex::new(None)).collect();
        Pool::run(self.threads, ThreadBudget::new(self.threads), |pool| {
            for (job, slot) in jobs.iter().zip(&slots) {
                pool.spawn(Box::new(move |_| {
                    *slot.lock().expect("job slot") = Some(run_job(job, engine));
                }));
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("job slot")
                    .expect("every job slot filled")
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The stdio worker protocol
// ---------------------------------------------------------------------------

fn batch_to_json(jobs: &[JobSpec], engine: &EngineConfig) -> Json {
    Json::obj([
        ("schema", Json::int(WORKER_SCHEMA)),
        ("engine", engine_to_json(engine)),
        ("jobs", Json::Arr(jobs.iter().map(job_to_json).collect())),
    ])
}

/// Serve the worker side of the subprocess protocol: read one JSON batch
/// frame per line from `input`, explore every job, and write one JSON
/// response frame per batch to `output`. Returns when `input` reaches EOF.
///
/// This is what `vericlick worker` runs over stdin/stdout; the framing is
/// line-delimited JSON, so the same function serves a socket.
pub fn worker_serve(input: &mut dyn BufRead, output: &mut dyn Write) -> Result<(), ExecError> {
    let mut line = String::new();
    loop {
        line.clear();
        let n = input
            .read_line(&mut line)
            .map_err(|e| ExecError::Protocol(format!("reading batch frame: {e}")))?;
        if n == 0 {
            return Ok(());
        }
        if line.trim().is_empty() {
            continue;
        }
        let frame = Json::parse(line.trim())
            .map_err(|e| ExecError::Protocol(format!("bad batch frame: {e}")))?;
        let schema = frame.get("schema").and_then(Json::as_u64);
        if schema != Some(WORKER_SCHEMA) {
            return Err(ExecError::Protocol(format!(
                "unsupported worker schema {schema:?}"
            )));
        }
        let engine = engine_from_json(
            frame
                .get("engine")
                .ok_or_else(|| ExecError::Protocol("batch frame has no engine".into()))?,
        )
        .map_err(|e| ExecError::Protocol(e.to_string()))?;
        let jobs = frame
            .get("jobs")
            .and_then(Json::as_arr)
            .ok_or_else(|| ExecError::Protocol("batch frame has no jobs".into()))?
            .iter()
            .map(|j| job_from_json(j).map_err(|e| ExecError::Protocol(e.to_string())))
            .collect::<Result<Vec<_>, _>>()?;

        let mut summaries = Vec::with_capacity(jobs.len());
        for job in &jobs {
            let summary = run_job(job, &engine)?;
            summaries.push(match summary {
                Some(s) => summary_to_json(&s),
                None => Json::Null,
            });
        }
        let response = Json::obj([
            ("schema", Json::int(WORKER_SCHEMA)),
            ("summaries", Json::Arr(summaries)),
        ]);
        writeln!(output, "{}", response.to_text())
            .map_err(|e| ExecError::Protocol(format!("writing response frame: {e}")))?;
        output
            .flush()
            .map_err(|e| ExecError::Protocol(format!("flushing response frame: {e}")))?;
    }
}

fn decode_response(text: &str, expected: usize) -> Result<Vec<Option<ElementSummary>>, ExecError> {
    let frame =
        Json::parse(text.trim()).map_err(|e| ExecError::Protocol(format!("bad response: {e}")))?;
    if frame.get("schema").and_then(Json::as_u64) != Some(WORKER_SCHEMA) {
        return Err(ExecError::Protocol("unsupported response schema".into()));
    }
    let summaries = frame
        .get("summaries")
        .and_then(Json::as_arr)
        .ok_or_else(|| ExecError::Protocol("response has no summaries".into()))?;
    if summaries.len() != expected {
        return Err(ExecError::Protocol(format!(
            "worker returned {} summaries for {} jobs",
            summaries.len(),
            expected
        )));
    }
    summaries
        .iter()
        .map(|s| match s {
            Json::Null => Ok(None),
            doc => summary_from_json(doc)
                .map(Some)
                .map_err(|e| ExecError::Protocol(format!("undecodable summary: {e}"))),
        })
        .collect()
}

/// The subprocess worker transport: explore jobs are shipped to `workers`
/// child processes over stdio and their summaries folded back in job order.
///
/// The command is typically the `vericlick` binary itself with the `worker`
/// argument — any program that speaks the [`worker_serve`] protocol on
/// stdin/stdout works, which is precisely the contract a remote (socket)
/// worker would implement.
#[derive(Clone, Debug)]
pub struct SubprocessWorker {
    program: PathBuf,
    args: Vec<String>,
    workers: usize,
}

impl SubprocessWorker {
    /// A transport spawning `workers` copies of `program args...` (0
    /// workers = one per available core).
    pub fn new(program: impl Into<PathBuf>, args: Vec<String>, workers: usize) -> Self {
        let workers = if workers > 0 {
            workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        SubprocessWorker {
            program: program.into(),
            args,
            workers,
        }
    }

    /// The transport that spawns the current executable with the `worker`
    /// argument — how `vericlick exec-plan --workers N` reaches its own
    /// worker mode.
    pub fn current_exe(workers: usize) -> Result<Self, ExecError> {
        let exe = std::env::current_exe()
            .map_err(|e| ExecError::Spawn(format!("cannot locate current executable: {e}")))?;
        Ok(SubprocessWorker::new(
            exe,
            vec!["worker".to_string()],
            workers,
        ))
    }

    /// The number of worker processes this transport spawns.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Executor for SubprocessWorker {
    fn describe(&self) -> String {
        format!(
            "subprocess workers ({} × {})",
            self.workers,
            self.program.display()
        )
    }

    fn explore_jobs(
        &self,
        jobs: &[JobSpec],
        engine: &EngineConfig,
    ) -> Result<Vec<Option<ElementSummary>>, ExecError> {
        use std::process::{Command, Stdio};
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let workers = self.workers.min(jobs.len());
        // Round-robin partition: worker w owns jobs w, w+workers, ...
        let batches: Vec<Vec<JobSpec>> = (0..workers)
            .map(|w| jobs.iter().skip(w).step_by(workers).cloned().collect())
            .collect();

        // Spawn every worker and hand each its batch, then collect. The
        // children all compute concurrently; reading them in spawn order is
        // fine because the fold is by index, not completion order.
        let mut children = Vec::with_capacity(workers);
        for batch in &batches {
            let mut child = Command::new(&self.program)
                .args(&self.args)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| ExecError::Spawn(format!("{}: {e}", self.program.display())))?;
            let mut stdin = child
                .stdin
                .take()
                .ok_or_else(|| ExecError::Spawn("worker stdin not piped".into()))?;
            let frame = batch_to_json(batch, engine).to_text();
            writeln!(stdin, "{frame}")
                .map_err(|e| ExecError::Protocol(format!("writing batch: {e}")))?;
            // Dropping stdin closes it; the worker answers and exits at EOF.
            drop(stdin);
            children.push(child);
        }

        let mut slots: Vec<Option<Option<ElementSummary>>> = vec![None; jobs.len()];
        for (w, mut child) in children.into_iter().enumerate() {
            let mut text = String::new();
            use std::io::Read;
            child
                .stdout
                .take()
                .ok_or_else(|| ExecError::Spawn("worker stdout not piped".into()))?
                .read_to_string(&mut text)
                .map_err(|e| ExecError::Protocol(format!("reading response: {e}")))?;
            let status = child
                .wait()
                .map_err(|e| ExecError::Spawn(format!("waiting for worker: {e}")))?;
            if !status.success() {
                return Err(ExecError::Job(format!("worker {w} exited with {status}")));
            }
            let summaries = decode_response(&text, batches[w].len())?;
            for (i, summary) in summaries.into_iter().enumerate() {
                // Undo the round-robin: batch item i of worker w is job
                // w + i*workers.
                slots[w + i * workers] = Some(summary);
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every job assigned to exactly one worker"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane_pipeline::presets::ip_router_pipeline;

    fn router_jobs(engine: &EngineConfig) -> Vec<JobSpec> {
        let pipeline = ip_router_pipeline();
        let mut seen = std::collections::HashSet::new();
        let mut jobs = Vec::new();
        for (_, node) in pipeline.iter() {
            let element = node.element.as_ref();
            let fp = element_fingerprint(element, engine);
            if seen.insert(fp) {
                jobs.push(JobSpec {
                    fingerprint: fp,
                    type_name: element.type_name().to_string(),
                    config_args: element.config_args().expect("preset elements serialise"),
                });
            }
        }
        jobs
    }

    #[test]
    fn in_process_executor_computes_every_job_in_order() {
        let engine = EngineConfig::decomposed();
        let jobs = router_jobs(&engine);
        let summaries = InProcessExecutor::new(4)
            .explore_jobs(&jobs, &engine)
            .unwrap();
        assert_eq!(summaries.len(), jobs.len());
        for (job, summary) in jobs.iter().zip(&summaries) {
            let summary = summary.as_ref().expect("preset exploration succeeds");
            assert_eq!(summary.type_name, job.type_name);
        }
    }

    #[test]
    fn worker_protocol_round_trips_through_buffers() {
        // Drive the exact stdio protocol through in-memory buffers: what
        // the parent writes is what `worker_serve` reads, and vice versa.
        let engine = EngineConfig::decomposed();
        let jobs = router_jobs(&engine);
        let batch = batch_to_json(&jobs, &engine).to_text();
        let mut input = std::io::Cursor::new(format!("{batch}\n"));
        let mut output = Vec::new();
        worker_serve(&mut input, &mut output).unwrap();
        let response = String::from_utf8(output).unwrap();
        let summaries = decode_response(&response, jobs.len()).unwrap();
        // Same jobs computed in-process must match the protocol's results
        // byte for byte (the persist encoding is canonical).
        let local = InProcessExecutor::new(2)
            .explore_jobs(&jobs, &engine)
            .unwrap();
        for (a, b) in summaries.iter().zip(local.iter()) {
            // Wall-clock exploration time legitimately differs; everything
            // else must be byte-identical.
            let mut a = a.clone().unwrap();
            let mut b = b.clone().unwrap();
            a.explore_time = std::time::Duration::ZERO;
            b.explore_time = std::time::Duration::ZERO;
            assert_eq!(summary_to_json(&a).to_text(), summary_to_json(&b).to_text());
        }
    }

    #[test]
    fn fingerprint_mismatch_fails_loudly() {
        let engine = EngineConfig::decomposed();
        let mut jobs = router_jobs(&engine);
        jobs[0].fingerprint = crate::fingerprint::fingerprint_bytes("not this element");
        let result = InProcessExecutor::new(1).explore_jobs(&jobs, &engine);
        assert!(matches!(result, Err(ExecError::Job(_))), "{result:?}");
    }

    #[test]
    fn worker_rejects_malformed_frames() {
        let mut output = Vec::new();
        let mut input = std::io::Cursor::new("{\"schema\":99}\n".to_string());
        assert!(worker_serve(&mut input, &mut output).is_err());
        let mut input = std::io::Cursor::new("not json\n".to_string());
        assert!(worker_serve(&mut input, &mut output).is_err());
        // EOF without a frame is a clean exit.
        let mut input = std::io::Cursor::new(String::new());
        assert!(worker_serve(&mut input, &mut output).is_ok());
    }
}
